"""Timestamped tracing for simulations.

The paper presents its pipeline as a schedule table (Table I) and overlap
diagrams (Figs. 4, 7).  The :class:`Tracer` records ``(time, actor, phase)``
interval events during a simulation so tests and benchmarks can reconstruct
exactly those schedules and assert on them (e.g. "T1's input overlaps T0's
EO stage").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One point event: *actor* entered *phase* (or hit a marker) at *time*."""

    time: float
    actor: str
    phase: str
    kind: str  # "begin" | "end" | "mark"
    data: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Interval:
    """A closed span during which *actor* was in *phase*."""

    actor: str
    phase: str
    start: float
    end: float
    data: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """True if the two spans share a positive-length overlap."""
        return min(self.end, other.end) > max(self.start, other.start)


class Tracer:
    """Collects :class:`TraceRecord` streams and pairs them into intervals.

    When a :class:`repro.obs.TelemetrySink` is attached (``sink=`` or
    :meth:`attach_sink`), every record is mirrored into it as a span/instant
    on track ``"<group>/<actor>"``, so existing Tracer call sites feed the
    unified telemetry layer (and its Chrome-trace export) unchanged.
    """

    def __init__(self, sim: Simulator, sink=None, group: str = "sim") -> None:
        self.sim = sim
        self.records: list[TraceRecord] = []
        self._open: dict[tuple[str, str], TraceRecord] = {}
        self.sink = sink
        self.group = group

    def attach_sink(self, sink, group: Optional[str] = None) -> None:
        """Mirror subsequent records into *sink* (replays nothing)."""
        self.sink = sink
        if group is not None:
            self.group = group

    def _track(self, actor: str) -> str:
        return f"{self.group}/{actor}"

    def begin(self, actor: str, phase: str, **data: Any) -> None:
        """Mark that *actor* entered *phase* now."""
        key = (actor, phase)
        if key in self._open:
            raise ValueError(f"{actor!r} already in phase {phase!r}")
        record = TraceRecord(self.sim.now, actor, phase, "begin", dict(data))
        self._open[key] = record
        self.records.append(record)
        if self.sink is not None:
            self.sink.begin(self._track(actor), phase, record.time, **data)

    def end(self, actor: str, phase: str, **data: Any) -> None:
        """Mark that *actor* left *phase* now."""
        key = (actor, phase)
        if key not in self._open:
            raise ValueError(f"{actor!r} is not in phase {phase!r}")
        del self._open[key]
        self.records.append(TraceRecord(self.sim.now, actor, phase, "end", dict(data)))
        if self.sink is not None:
            self.sink.end(self._track(actor), phase, self.sim.now, **data)

    def mark(self, actor: str, phase: str, **data: Any) -> None:
        """Record an instantaneous marker."""
        self.records.append(TraceRecord(self.sim.now, actor, phase, "mark", dict(data)))
        if self.sink is not None:
            self.sink.instant(self._track(actor), phase, self.sim.now, **data)

    def intervals(
        self, actor: Optional[str] = None, phase: Optional[str] = None
    ) -> list[Interval]:
        """Pair begin/end records into :class:`Interval` spans, optionally filtered."""
        spans: list[Interval] = []
        open_spans: dict[tuple[str, str], TraceRecord] = {}
        for record in self.records:
            key = (record.actor, record.phase)
            if record.kind == "begin":
                open_spans[key] = record
            elif record.kind == "end":
                start = open_spans.pop(key, None)
                if start is None:  # pragma: no cover - guarded by begin/end API
                    continue
                data = dict(start.data)
                data.update(record.data)
                spans.append(Interval(record.actor, record.phase, start.time, record.time, data))
        spans.sort(key=lambda s: (s.start, s.end, s.actor, s.phase))
        if actor is not None:
            spans = [s for s in spans if s.actor == actor]
        if phase is not None:
            spans = [s for s in spans if s.phase == phase]
        return spans

    def actors(self) -> list[str]:
        """All actor names seen, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.actor, None)
        return list(seen)

    def marks(self, actor: Optional[str] = None, phase: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate instantaneous markers, optionally filtered."""
        for record in self.records:
            if record.kind != "mark":
                continue
            if actor is not None and record.actor != actor:
                continue
            if phase is not None and record.phase != phase:
                continue
            yield record

    def schedule_table(self, time_step: float, phases: list[str]) -> list[dict[str, str]]:
        """Quantise intervals onto a fixed grid — the shape of the paper's Table I.

        Returns one dict per time step mapping each phase name to the actor(s)
        occupying it during that step (empty string if idle).
        """
        spans = self.intervals()
        if not spans:
            return []
        horizon = max(s.end for s in spans)
        # Ceiling, not round: a trailing partial step still occupies a row
        # (horizon 1.05 s at 0.5 s steps is 3 rows, not 2).  The epsilon
        # keeps an exact multiple (e.g. 2.0/0.5) from gaining a phantom row
        # to float noise.
        steps = int(math.ceil(horizon / time_step - 1e-9))
        table: list[dict[str, str]] = []
        for i in range(steps):
            lo, hi = i * time_step, (i + 1) * time_step
            row = {phase: "" for phase in phases}
            for span in spans:
                if span.phase in row and min(span.end, hi) - max(span.start, lo) > 1e-12:
                    row[span.phase] = (
                        span.actor if not row[span.phase] else row[span.phase] + "," + span.actor
                    )
            table.append(row)
        return table

    def chrome_trace(self) -> list[dict[str, Any]]:
        """This tracer's intervals/marks as Chrome trace-event dicts.

        Convenience for inspecting a single traced simulation without wiring
        a full :class:`repro.obs.Telemetry`; one ``pid`` for the tracer's
        group, one ``tid`` per actor.
        """
        from repro.obs.export import chrome_trace_events
        from repro.obs.telemetry import InstantRecord, SpanRecord

        spans = [
            SpanRecord(self._track(s.actor), s.phase, s.start, s.end, dict(s.data))
            for s in self.intervals()
        ]
        instants = [
            InstantRecord(self._track(r.actor), r.phase, r.time, dict(r.data))
            for r in self.marks()
        ]
        return chrome_trace_events(spans, instants)
