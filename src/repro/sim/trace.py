"""Timestamped tracing for simulations.

The paper presents its pipeline as a schedule table (Table I) and overlap
diagrams (Figs. 4, 7).  The :class:`Tracer` records ``(time, actor, phase)``
interval events during a simulation so tests and benchmarks can reconstruct
exactly those schedules and assert on them (e.g. "T1's input overlaps T0's
EO stage").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One point event: *actor* entered *phase* (or hit a marker) at *time*."""

    time: float
    actor: str
    phase: str
    kind: str  # "begin" | "end" | "mark"
    data: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Interval:
    """A closed span during which *actor* was in *phase*."""

    actor: str
    phase: str
    start: float
    end: float
    data: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """True if the two spans share a positive-length overlap."""
        return min(self.end, other.end) > max(self.start, other.start)


class Tracer:
    """Collects :class:`TraceRecord` streams and pairs them into intervals."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.records: list[TraceRecord] = []
        self._open: dict[tuple[str, str], TraceRecord] = {}

    def begin(self, actor: str, phase: str, **data: Any) -> None:
        """Mark that *actor* entered *phase* now."""
        key = (actor, phase)
        if key in self._open:
            raise ValueError(f"{actor!r} already in phase {phase!r}")
        record = TraceRecord(self.sim.now, actor, phase, "begin", dict(data))
        self._open[key] = record
        self.records.append(record)

    def end(self, actor: str, phase: str, **data: Any) -> None:
        """Mark that *actor* left *phase* now."""
        key = (actor, phase)
        if key not in self._open:
            raise ValueError(f"{actor!r} is not in phase {phase!r}")
        del self._open[key]
        self.records.append(TraceRecord(self.sim.now, actor, phase, "end", dict(data)))

    def mark(self, actor: str, phase: str, **data: Any) -> None:
        """Record an instantaneous marker."""
        self.records.append(TraceRecord(self.sim.now, actor, phase, "mark", dict(data)))

    def intervals(
        self, actor: Optional[str] = None, phase: Optional[str] = None
    ) -> list[Interval]:
        """Pair begin/end records into :class:`Interval` spans, optionally filtered."""
        spans: list[Interval] = []
        open_spans: dict[tuple[str, str], TraceRecord] = {}
        for record in self.records:
            key = (record.actor, record.phase)
            if record.kind == "begin":
                open_spans[key] = record
            elif record.kind == "end":
                start = open_spans.pop(key, None)
                if start is None:  # pragma: no cover - guarded by begin/end API
                    continue
                data = dict(start.data)
                data.update(record.data)
                spans.append(Interval(record.actor, record.phase, start.time, record.time, data))
        spans.sort(key=lambda s: (s.start, s.end, s.actor, s.phase))
        if actor is not None:
            spans = [s for s in spans if s.actor == actor]
        if phase is not None:
            spans = [s for s in spans if s.phase == phase]
        return spans

    def actors(self) -> list[str]:
        """All actor names seen, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.actor, None)
        return list(seen)

    def marks(self, actor: Optional[str] = None, phase: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate instantaneous markers, optionally filtered."""
        for record in self.records:
            if record.kind != "mark":
                continue
            if actor is not None and record.actor != actor:
                continue
            if phase is not None and record.phase != phase:
                continue
            yield record

    def schedule_table(self, time_step: float, phases: list[str]) -> list[dict[str, str]]:
        """Quantise intervals onto a fixed grid — the shape of the paper's Table I.

        Returns one dict per time step mapping each phase name to the actor(s)
        occupying it during that step (empty string if idle).
        """
        spans = self.intervals()
        if not spans:
            return []
        horizon = max(s.end for s in spans)
        steps = int(round(horizon / time_step))
        table: list[dict[str, str]] = []
        for i in range(steps):
            lo, hi = i * time_step, (i + 1) * time_step
            row = {phase: "" for phase in phases}
            for span in spans:
                if span.phase in row and min(span.end, hi) - max(span.start, lo) > 1e-12:
                    row[span.phase] = (
                        span.actor if not row[span.phase] else row[span.phase] + "," + span.actor
                    )
            table.append(row)
        return table
