"""Discrete-event simulation kernel: clock, events, processes, combinators.

The design follows the classic event-calendar architecture: a calendar of
``(time, sequence)``-ordered events; processing an event runs its callbacks,
which typically resume generator processes, which schedule further events.
Two events at the same virtual time are processed in scheduling order, making
every simulation fully deterministic.

The calendar is a **calendar queue** (R. Brown, CACM 1988): events are
binned into fixed-width time buckets held in a dict keyed by the bucket
index, with a small heap of bucket keys.  Enqueue is an O(1) amortized
append; only the *front* bucket is heap-ordered, so pops cost
``O(log bucket_size)`` instead of ``O(log calendar_size)``.  The bucket
width adapts to the observed event density (see :meth:`Simulator._advance`),
and because the bucket index is a monotone function of the timestamp, the
pop order is always exactly the ``(when, sequence)`` total order the old
single-heap calendar produced — golden traces are byte-identical across the
two implementations.

Same-timestamp *device-completion* events can additionally be coalesced
through :meth:`Simulator.schedule_batch`: all completions sharing a
timestamp become one :class:`BatchTimeout` calendar entry carrying a numpy
payload, so a million-completion epoch costs one dispatch instead of a
million generator resumes.  :meth:`Simulator.step_batch` drains a whole
same-time epoch in one call.
"""

from __future__ import annotations

import time
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional, Sequence

import numpy as np


class SimulationError(RuntimeError):
    """Raised for misuse of the DES kernel (not for modeled failures)."""


class SimStats:
    """Kernel bookkeeping at one instant (see :meth:`Simulator.stats`)."""

    __slots__ = (
        "now",
        "events_scheduled",
        "events_processed",
        "queue_depth",
        "max_queue_depth",
        "wall_seconds",
    )

    def __init__(
        self,
        now: float,
        events_scheduled: int,
        events_processed: int,
        queue_depth: int,
        max_queue_depth: int,
        wall_seconds: float,
    ) -> None:
        self.now = now
        self.events_scheduled = events_scheduled
        self.events_processed = events_processed
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth
        self.wall_seconds = wall_seconds

    @property
    def sim_per_wall(self) -> float:
        """Virtual seconds simulated per wall-clock second inside run()."""
        return self.now / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimStats(now={self.now!r}, events_scheduled={self.events_scheduled!r}, "
            f"events_processed={self.events_processed!r}, queue_depth={self.queue_depth!r}, "
            f"max_queue_depth={self.max_queue_depth!r}, wall_seconds={self.wall_seconds!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimStats):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in SimStats.__slots__
        )


class Event:
    """A one-shot occurrence that processes can wait on.

    An event goes through three states: *pending* (created), *triggered*
    (``succeed``/``fail`` called, sitting in the calendar) and *processed*
    (callbacks have run).  ``value`` carries the payload on success or the
    exception on failure.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "_poolable")

    _PENDING = object()

    #: How many logical events this calendar entry stands for.  Plain events
    #: are singletons; :class:`BatchTimeout` overrides this per instance.
    _nevents = 1

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        # Kernel-internal events (process init/relay) are recycled through the
        # simulator's pool once processed; user-created events never are.
        self._poolable = False

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The success payload, or the failure exception."""
        if self._value is Event._PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering ----------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed, carrying *exception*.

        Unless some waiter handles (defuses) the failure, the simulator
        re-raises the exception when the event is processed — silent failures
        are bugs in a performance model.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay=0.0)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so the simulator does not re-raise it."""
        self._defused = True

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register *callback* to run when the event is processed."""
        if self.processed:
            raise SimulationError("cannot add a callback to a processed event")
        assert self.callbacks is not None
        self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        sim._enqueue(self, delay=self.delay)


class BatchTimeout(Event):
    """One calendar entry standing for *count* same-timestamp completions.

    Created by :meth:`Simulator.schedule_batch`.  ``value`` is the numpy
    array of the coalesced completions' values (input order preserved
    within the batch); ``count`` is how many logical events this entry
    represents — the kernel's ``events_processed``/queue-depth accounting
    weights the entry accordingly, so throughput numbers stay comparable
    with the one-Event-per-completion encoding.
    """

    __slots__ = ("delay", "count", "_nevents")

    def __init__(
        self, sim: "Simulator", delay: float, values: np.ndarray, count: int
    ) -> None:
        if delay < 0:
            raise ValueError(f"batch delay must be >= 0, got {delay}")
        if count < 1:
            raise ValueError(f"batch count must be >= 1, got {count}")
        super().__init__(sim)
        self.delay = float(delay)
        self.count = int(count)
        self._nevents = self.count
        self._ok = True
        self._value = values
        sim._batch_extra += self.count - 1
        sim._enqueue(self, delay=self.delay, weight=self.count)


class Process(Event):
    """A running generator; also an event others can wait on.

    The generator ``yield``\\ s :class:`Event` instances; each resume sends the
    event's value back in (or throws its exception).  When the generator
    returns, the process event succeeds with the return value.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process needs a generator, got {type(generator).__name__}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick the process off via an immediately-scheduled init event so that
        # process bodies never run re-entrantly inside the caller.
        init = sim._internal_event()
        init.succeed(None)
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        try:
            if trigger._ok:
                target = self.generator.send(trigger._value)
            else:
                trigger.defuse()
                target = self.generator.throw(trigger._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event instances"
            )
            self.generator.close()
            self.fail(exc)
            return
        if target.sim is not self.sim:
            self.generator.close()
            self.fail(SimulationError("yielded an event from a different Simulator"))
            return
        self._waiting_on = target
        if target.processed:
            # The event already fired; resume on a fresh immediate event so
            # ordering stays queue-driven.
            relay = self.sim._internal_event()
            if target._ok:
                relay.succeed(target._value)
            else:
                relay.fail(target._value)  # pragma: no cover - late-join on failure
            relay.add_callback(self._resume)
        else:
            target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'done' if self.triggered else 'alive'}>"


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on a set of events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        # _check decrements this toward zero (each constituent exactly once),
        # so AllOf completion is an O(1) counter test, not an O(n) rescan.
        self._pending_count = len(self.events)
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.add_callback(self._check)
        if not self.events and not self.triggered:
            self.succeed(self._collect())

    def _collect(self) -> list[Any]:
        return [e._value for e in self.events if e.triggered and e._ok]

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when *all* events have succeeded; value is their value list.

    Fails fast (with defusing) if any constituent fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds when the *first* event succeeds; value is that event's value."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)


#: Bucket index used for non-finite timestamps (run-until-inf style events);
#: far beyond any finite calendar position.
_FAR_BUCKET = 1 << 120

#: Calendar-queue tuning constants.  A bucket whose activation finds more
#: than _SHRINK_ENTRIES entries spanning more than _SHRINK_DISTINCT distinct
#: timestamps narrows the width toward _TARGET_DISTINCT timestamps/bucket;
#: _GROW_STREAK consecutive near-empty activations with a long key heap
#: widen it.  Resizes redistribute all buffered entries (O(n), rare) and
#: depend only on the event stream, never on wall time — determinism holds.
_SHRINK_ENTRIES = 512
_SHRINK_DISTINCT = 64
_TARGET_DISTINCT = 16
_GROW_STREAK = 64
_GROW_FACTOR = 8.0
_MIN_WIDTH = 1e-18
_MAX_WIDTH = 1e18


class Simulator:
    """The event loop and virtual clock."""

    __slots__ = (
        "_now",
        "_sequence",
        "_running",
        "events_processed",
        "max_queue_depth",
        "_wall_seconds",
        "_event_pool",
        "_batch_extra",
        # calendar queue
        "_front",
        "_front_hi",
        "_buckets",
        "_bucket_keys",
        "_count",
        "_width",
        "_inv_width",
        "_sparse_streak",
        "calendar_resizes",
    )

    def __init__(self, bucket_width: float = 1.0) -> None:
        if not (bucket_width > 0.0):
            raise ValueError(f"bucket_width must be > 0, got {bucket_width}")
        self._now = 0.0
        self._sequence = 0
        self._running = False
        # Always-on integer bookkeeping (a few adds per event — cheap, and
        # deterministic since nothing here feeds back into the model).
        self.events_processed = 0
        self.max_queue_depth = 0
        self._wall_seconds = 0.0
        # Recycled kernel-internal events (process init/relay).  Every resume
        # of an already-fired target otherwise allocates a fresh Event; at
        # millions of events per run that allocation is the kernel's hottest
        # line after the calendar itself.
        self._event_pool: list[Event] = []
        # Extra logical events carried by BatchTimeout entries (stats only).
        self._batch_extra = 0
        # -- calendar queue ---------------------------------------------------
        # _front is the heap-ordered head segment of the calendar: every
        # buffered entry whose bucket index is <= _front_hi.  All later
        # entries sit in unsorted per-bucket lists in _buckets, with the
        # pending bucket indices in the _bucket_keys min-heap.  _count is the
        # total number of buffered *logical* events (batch entries weighted).
        self._front: list[tuple[float, int, Event]] = []
        self._front_hi = 0
        self._buckets: dict[int, list[tuple[float, int, Event]]] = {}
        self._bucket_keys: list[int] = []
        self._count = 0
        self._width = float(bucket_width)
        self._inv_width = 1.0 / self._width
        self._sparse_streak = 0
        #: Lifetime count of adaptive bucket-width changes (observability).
        self.calendar_resizes = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def bucket_width(self) -> float:
        """Current calendar-queue bucket width in virtual seconds."""
        return self._width

    # -- factory helpers ------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a generator as a process; returns the process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Barrier over *events*."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Race over *events*."""
        return AnyOf(self, events)

    def schedule_batch(
        self,
        delays: "np.ndarray | Sequence[float]",
        values: Optional["np.ndarray | Sequence[Any]"] = None,
        on_complete: Optional[Callable[[Event], None]] = None,
    ) -> list[BatchTimeout]:
        """Schedule many completion events at once, coalesced by timestamp.

        All completions sharing a delay become **one** :class:`BatchTimeout`
        calendar entry whose value is the numpy array of their *values*
        (input order preserved within each batch); with ``values=None`` the
        value is simply the shared delay, skipping the per-event regroup
        entirely.  ``events_processed`` and the queue-depth counters weight
        each entry by its batch size, so kernel accounting is identical to
        scheduling one :class:`Timeout` per completion — only the dispatch
        cost collapses from O(events) to O(distinct timestamps).

        This is the numpy fast path for same-time *device-completion* storms
        (a wave of DMA transfers finishing on the same tick, a bucket of
        ranks leaving a barrier): payloads that are plain numbers vectorize;
        payloads needing per-event callbacks should stay on :meth:`timeout`.
        Returns the batch entries in increasing-timestamp order.
        """
        delay_array = np.asarray(delays, dtype=np.float64).ravel()
        if delay_array.size == 0:
            return []
        if np.any(delay_array < 0) or not np.all(np.isfinite(delay_array)):
            raise ValueError("batch delays must be finite and >= 0")
        events: list[BatchTimeout] = []
        if values is None:
            uniq, counts = np.unique(delay_array, return_counts=True)
            for d, n in zip(uniq.tolist(), counts.tolist()):
                events.append(BatchTimeout(self, d, d, n))
        else:
            value_array = np.asarray(values)
            if value_array.shape[0] != delay_array.shape[0]:
                raise ValueError(
                    f"values length {value_array.shape[0]} != delays length "
                    f"{delay_array.shape[0]}"
                )
            uniq, counts = np.unique(delay_array, return_counts=True)
            # Stable grouping: within a timestamp, values keep input order.
            order = np.argsort(delay_array, kind="stable")
            grouped = value_array[order]
            start = 0
            for d, n in zip(uniq.tolist(), counts.tolist()):
                events.append(BatchTimeout(self, d, grouped[start : start + n], n))
                start += n
        if on_complete is not None:
            for event in events:
                event.add_callback(on_complete)
        return events

    def _internal_event(self) -> Event:
        """A pooled kernel-internal event (recycled by :meth:`step`)."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.callbacks = []
            event._value = Event._PENDING
            event._ok = None
            event._defused = False
            return event
        event = Event(self)
        event._poolable = True
        return event

    # -- calendar --------------------------------------------------------------
    def _enqueue(self, event: Event, delay: float, weight: int = 1) -> None:
        when = self._now + delay
        seq = self._sequence
        self._sequence = seq + 1
        entry = (when, seq, event)
        try:
            idx = int(when * self._inv_width)
        except (OverflowError, ValueError):  # pragma: no cover - inf/nan delay
            idx = _FAR_BUCKET
        front = self._front
        if front:
            if idx <= self._front_hi:
                heappush(front, entry)
            else:
                bucket = self._buckets.get(idx)
                if bucket is None:
                    self._buckets[idx] = [entry]
                    heappush(self._bucket_keys, idx)
                else:
                    bucket.append(entry)
        elif self._bucket_keys and idx >= self._bucket_keys[0]:
            # The front drained and this entry belongs at-or-behind the next
            # pending bucket: keep it bucketed so _advance stays in charge.
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
                heappush(self._bucket_keys, idx)
            else:
                bucket.append(entry)
        else:
            # Empty calendar front, and nothing pending earlier: this entry
            # *is* the new front.
            front.append(entry)
            self._front_hi = idx
        count = self._count + weight
        self._count = count
        if count > self.max_queue_depth:
            self.max_queue_depth = count

    def _advance(self) -> None:
        """Activate the earliest pending bucket as the new calendar front.

        Also the adaptive-resize hook: activation is the one moment a whole
        bucket is visible at once, so density statistics are free here.
        """
        keys = self._bucket_keys
        if not keys:
            return
        idx = heappop(keys)
        bucket = self._buckets.pop(idx)
        n = len(bucket)
        if n > _SHRINK_ENTRIES:
            distinct = len({entry[0] for entry in bucket})
            if distinct > _SHRINK_DISTINCT and self._width > _MIN_WIDTH:
                # Overfull bucket with genuinely spread timestamps (not one
                # big same-time batch): narrow toward the target density.
                lo = min(entry[0] for entry in bucket)
                hi = max(entry[0] for entry in bucket)
                span = hi - lo
                if span > 0.0:
                    new_width = max(
                        span * _TARGET_DISTINCT / distinct, _MIN_WIDTH
                    )
                    self._front_hi = idx  # make the bucket the front first
                    heapify(bucket)
                    self._front[:] = bucket
                    self._set_width(new_width)
                    return
            self._sparse_streak = 0
        elif n <= 1:
            self._sparse_streak += 1
            if (
                self._sparse_streak >= _GROW_STREAK
                and len(keys) > _GROW_STREAK
                and self._width < _MAX_WIDTH
            ):
                self._sparse_streak = 0
                self._front_hi = idx
                self._front[:] = bucket
                self._set_width(min(self._width * _GROW_FACTOR, _MAX_WIDTH))
                return
        else:
            self._sparse_streak = 0
        heapify(bucket)
        self._front[:] = bucket
        self._front_hi = idx

    def _set_width(self, width: float) -> None:
        """Rebuild the calendar with a new bucket width (order-preserving)."""
        entries = list(self._front)
        for bucket in self._buckets.values():
            entries.extend(bucket)
        self.calendar_resizes += 1
        self._width = float(width)
        self._inv_width = 1.0 / self._width
        self._buckets.clear()
        self._bucket_keys.clear()
        self._front[:] = []
        if not entries:
            self._front_hi = 0
            return
        inv = self._inv_width
        min_when = min(entry[0] for entry in entries)
        try:
            hi = int(min_when * inv)
        except (OverflowError, ValueError):  # pragma: no cover - inf front
            hi = _FAR_BUCKET
        front = self._front
        buckets = self._buckets
        for entry in entries:
            try:
                idx = int(entry[0] * inv)
            except (OverflowError, ValueError):  # pragma: no cover
                idx = _FAR_BUCKET
            if idx <= hi:
                front.append(entry)
            else:
                bucket = buckets.get(idx)
                if bucket is None:
                    buckets[idx] = [entry]
                else:
                    bucket.append(entry)
        heapify(front)
        self._front_hi = hi
        self._bucket_keys[:] = buckets.keys()
        heapify(self._bucket_keys)

    def step(self) -> None:
        """Process exactly one calendar entry (a batch entry counts as many)."""
        front = self._front
        if not front:
            self._advance()
            if not front:
                raise SimulationError("step() on an empty event calendar")
        when, _, event = heappop(front)
        if when < self._now:  # pragma: no cover - internal invariant
            raise SimulationError("event calendar went backwards in time")
        self._now = when
        nevents = event._nevents
        self.events_processed += nevents
        self._count -= nevents
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # Nobody handled this failure: surface it, pointing at the model bug.
            raise event._value
        if event._poolable:
            # Recycled only *after* the failure check above read _ok, and only
            # here — internal events have exactly one callback (the process
            # resume) and no outside references survive processing.
            self._event_pool.append(event)

    def step_batch(self) -> int:
        """Drain the entire next same-timestamp epoch; returns events processed.

        Processes every calendar entry scheduled at the next pending
        timestamp, *including* entries scheduled at that same timestamp by
        the callbacks it runs (zero-delay follow-ons stay inside the epoch).
        One :class:`BatchTimeout` dispatch counts all its coalesced
        completions.
        """
        epoch = self.peek()
        if epoch == float("inf"):
            raise SimulationError("step_batch() on an empty event calendar")
        before = self.events_processed
        step = self.step
        while self._count and self.peek() == epoch:
            step()
        return self.events_processed - before

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the calendar is empty."""
        front = self._front
        if not front:
            self._advance()
            if not front:
                return float("inf")
        return front[0][0]

    def stats(self) -> SimStats:
        """Kernel counters: event totals, queue depths, sim-vs-wall time.

        ``events_scheduled`` counts every logical event ever enqueued
        (batch entries weighted by their size); ``queue_depth`` and
        ``max_queue_depth`` count *buffered* logical events across the
        whole calendar — the heap-ordered front segment plus every pending
        bucket, weighted the same way; ``wall_seconds`` accumulates real
        time spent inside :meth:`run`, so ``stats().sim_per_wall`` is the
        simulator's speed ratio.
        """
        return SimStats(
            now=self._now,
            events_scheduled=self._sequence + self._batch_extra,
            events_processed=self.events_processed,
            queue_depth=self._count,
            max_queue_depth=self.max_queue_depth,
            wall_seconds=self._wall_seconds,
        )

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until the calendar drains.
        * ``until=<float>`` — run until virtual time reaches that instant.
        * ``until=<Event>`` — run until the event is processed; returns its
          value (raising if it failed).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        wall_start = time.perf_counter()
        try:
            # Local bindings: these loops are the kernel's hottest lines.
            step = self.step
            if until is None:
                while self._count:
                    step()
                return None
            if isinstance(until, Event):
                target = until
                while not target.processed:
                    if not self._count:
                        raise SimulationError(
                            "calendar drained before the awaited event triggered (deadlock)"
                        )
                    step()
                if not target._ok:
                    target.defuse()
                    raise target._value
                return target._value
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"cannot run until {horizon} (< now={self._now})")
            peek = self.peek
            while self._count and peek() <= horizon:
                step()
            self._now = max(self._now, horizon)
            return None
        finally:
            self._running = False
            self._wall_seconds += time.perf_counter() - wall_start
