"""Discrete-event simulation kernel: clock, events, processes, combinators.

The design follows the classic event-calendar architecture: a priority queue
of ``(time, sequence)``-ordered events; processing an event runs its callbacks,
which typically resume generator processes, which schedule further events.
Two events at the same virtual time are processed in scheduling order, making
every simulation fully deterministic.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the DES kernel (not for modeled failures)."""


@dataclass(frozen=True)
class SimStats:
    """Kernel bookkeeping at one instant (see :meth:`Simulator.stats`)."""

    now: float
    events_scheduled: int
    events_processed: int
    queue_depth: int
    max_queue_depth: int
    wall_seconds: float

    @property
    def sim_per_wall(self) -> float:
        """Virtual seconds simulated per wall-clock second inside run()."""
        return self.now / self.wall_seconds if self.wall_seconds > 0 else 0.0


class Event:
    """A one-shot occurrence that processes can wait on.

    An event goes through three states: *pending* (created), *triggered*
    (``succeed``/``fail`` called, sitting in the calendar) and *processed*
    (callbacks have run).  ``value`` carries the payload on success or the
    exception on failure.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "_poolable")

    _PENDING = object()

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        # Kernel-internal events (process init/relay) are recycled through the
        # simulator's pool once processed; user-created events never are.
        self._poolable = False

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The success payload, or the failure exception."""
        if self._value is Event._PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering ----------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed, carrying *exception*.

        Unless some waiter handles (defuses) the failure, the simulator
        re-raises the exception when the event is processed — silent failures
        are bugs in a performance model.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay=0.0)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so the simulator does not re-raise it."""
        self._defused = True

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register *callback* to run when the event is processed."""
        if self.processed:
            raise SimulationError("cannot add a callback to a processed event")
        assert self.callbacks is not None
        self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        sim._enqueue(self, delay=self.delay)


class Process(Event):
    """A running generator; also an event others can wait on.

    The generator ``yield``\\ s :class:`Event` instances; each resume sends the
    event's value back in (or throws its exception).  When the generator
    returns, the process event succeeds with the return value.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process needs a generator, got {type(generator).__name__}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick the process off via an immediately-scheduled init event so that
        # process bodies never run re-entrantly inside the caller.
        init = sim._internal_event()
        init.succeed(None)
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        try:
            if trigger._ok:
                target = self.generator.send(trigger._value)
            else:
                trigger.defuse()
                target = self.generator.throw(trigger._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event instances"
            )
            self.generator.close()
            self.fail(exc)
            return
        if target.sim is not self.sim:
            self.generator.close()
            self.fail(SimulationError("yielded an event from a different Simulator"))
            return
        self._waiting_on = target
        if target.processed:
            # The event already fired; resume on a fresh immediate event so
            # ordering stays queue-driven.
            relay = self.sim._internal_event()
            if target._ok:
                relay.succeed(target._value)
            else:
                relay.fail(target._value)  # pragma: no cover - late-join on failure
            relay.add_callback(self._resume)
        else:
            target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'done' if self.triggered else 'alive'}>"


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on a set of events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        # _check decrements this toward zero (each constituent exactly once),
        # so AllOf completion is an O(1) counter test, not an O(n) rescan.
        self._pending_count = len(self.events)
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.add_callback(self._check)
        if not self.events and not self.triggered:
            self.succeed(self._collect())

    def _collect(self) -> list[Any]:
        return [e._value for e in self.events if e.triggered and e._ok]

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when *all* events have succeeded; value is their value list.

    Fails fast (with defusing) if any constituent fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds when the *first* event succeeds; value is that event's value."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)


class Simulator:
    """The event loop and virtual clock."""

    __slots__ = (
        "_now",
        "_queue",
        "_sequence",
        "_running",
        "events_processed",
        "max_queue_depth",
        "_wall_seconds",
        "_event_pool",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._running = False
        # Always-on integer bookkeeping (a few adds per event — cheap, and
        # deterministic since nothing here feeds back into the model).
        self.events_processed = 0
        self.max_queue_depth = 0
        self._wall_seconds = 0.0
        # Recycled kernel-internal events (process init/relay).  Every resume
        # of an already-fired target otherwise allocates a fresh Event; at
        # millions of events per run that allocation is the kernel's hottest
        # line after the heap itself.
        self._event_pool: list[Event] = []

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- factory helpers ------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a generator as a process; returns the process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Barrier over *events*."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Race over *events*."""
        return AnyOf(self, events)

    def _internal_event(self) -> Event:
        """A pooled kernel-internal event (recycled by :meth:`step`)."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.callbacks = []
            event._value = Event._PENDING
            event._ok = None
            event._defused = False
            return event
        event = Event(self)
        event._poolable = True
        return event

    # -- calendar --------------------------------------------------------------
    def _enqueue(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1
        if len(self._queue) > self.max_queue_depth:
            self.max_queue_depth = len(self._queue)

    def step(self) -> None:
        """Process exactly one event from the calendar."""
        if not self._queue:
            raise SimulationError("step() on an empty event calendar")
        when, _, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - internal invariant
            raise SimulationError("event calendar went backwards in time")
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # Nobody handled this failure: surface it, pointing at the model bug.
            raise event._value
        if event._poolable:
            # Recycled only *after* the failure check above read _ok, and only
            # here — internal events have exactly one callback (the process
            # resume) and no outside references survive processing.
            self._event_pool.append(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the calendar is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def stats(self) -> SimStats:
        """Kernel counters: event totals, queue depths, sim-vs-wall time.

        ``events_scheduled`` is the lifetime enqueue count (``_sequence``);
        ``wall_seconds`` accumulates real time spent inside :meth:`run`, so
        ``stats().sim_per_wall`` is the simulator's speed ratio.
        """
        return SimStats(
            now=self._now,
            events_scheduled=self._sequence,
            events_processed=self.events_processed,
            queue_depth=len(self._queue),
            max_queue_depth=self.max_queue_depth,
            wall_seconds=self._wall_seconds,
        )

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until the calendar drains.
        * ``until=<float>`` — run until virtual time reaches that instant.
        * ``until=<Event>`` — run until the event is processed; returns its
          value (raising if it failed).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        wall_start = time.perf_counter()
        try:
            # Local bindings: these loops are the kernel's hottest lines.
            queue = self._queue
            step = self.step
            if until is None:
                while queue:
                    step()
                return None
            if isinstance(until, Event):
                target = until
                while not target.processed:
                    if not queue:
                        raise SimulationError(
                            "calendar drained before the awaited event triggered (deadlock)"
                        )
                    step()
                if not target._ok:
                    target.defuse()
                    raise target._value
                return target._value
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"cannot run until {horizon} (< now={self._now})")
            while queue and queue[0][0] <= horizon:
                step()
            self._now = max(self._now, horizon)
            return None
        finally:
            self._running = False
            self._wall_seconds += time.perf_counter() - wall_start
