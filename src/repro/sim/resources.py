"""Shared resources for the DES kernel: counted resources, stores, links.

These model the contention points the paper cares about: the single dedicated
transfer thread per compute element (a capacity-1 :class:`Resource`), task
queues (:class:`Store`), and the PCIe / InfiniBand hops
(:class:`BandwidthChannel`, a FIFO latency+bandwidth pipe).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, SimulationError, Simulator, Timeout
from repro.util.validation import require_nonnegative, require_positive


class Request(Event):
    """A pending acquisition of a :class:`Resource`; usable as a context manager."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with FIFO granting.

    ``capacity=1`` is a mutex — e.g. the one CPU core the paper dedicates to
    CPU↔GPU transfers, which serialises the pipeline's input and output
    stages ("only one thread in our implementation is dedicated to transfer
    data with GPU", §V.C).
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._holders: set[Request] = set()
        self._waiting: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted requests."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for one unit; the returned event succeeds when granted."""
        req = Request(self)
        if len(self._holders) < self.capacity:
            self._holders.add(req)
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return one unit previously granted to *request*.

        Releasing a request that was never granted (still waiting) cancels it
        instead, so ``with``-style usage is exception-safe.
        """
        if request in self._holders:
            self._holders.discard(request)
            while self._waiting and len(self._holders) < self.capacity:
                nxt = self._waiting.popleft()
                self._holders.add(nxt)
                nxt.succeed(nxt)
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                raise SimulationError("release() of a request this resource never granted")


class Store:
    """An unbounded-or-bounded FIFO item queue with blocking get/put events."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Offer *item*; the returned event succeeds once the item is stored."""
        event = Event(self.sim)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Take the oldest item; the returned event succeeds with the item."""
        event = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            if self._putters:
                put_event, pending = self._putters.popleft()
                self._items.append(pending)
                put_event.succeed(None)
            event.succeed(item)
        else:
            self._getters.append(event)
        return event


class BandwidthChannel:
    """A FIFO latency+bandwidth pipe.

    Transfers are serialised in submission order (one DMA engine / one NIC
    port).  A transfer of ``nbytes`` occupies the pipe for
    ``latency + nbytes / bandwidth`` seconds.  The channel keeps utilisation
    counters so benchmarks can report how well pipelining hid communication.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "link",
    ) -> None:
        self.sim = sim
        self.bandwidth = require_positive(bandwidth, "bandwidth")
        self.latency = require_nonnegative(latency, "latency")
        self.name = name
        self._busy_until = 0.0
        self.bytes_transferred = 0.0
        self.busy_time = 0.0
        self.transfer_count = 0

    def transfer_duration(self, nbytes: float) -> float:
        """Pure service time of a transfer, excluding queueing."""
        require_nonnegative(nbytes, "nbytes")
        return self.latency + nbytes / self.bandwidth

    def transfer(self, nbytes: float) -> Timeout:
        """Submit a transfer; the returned event fires when it completes.

        Queueing behind earlier transfers is accounted for: the event fires at
        ``max(now, previous end) + latency + nbytes/bandwidth``.
        """
        duration = self.transfer_duration(nbytes)
        start = max(self.sim.now, self._busy_until)
        end = start + duration
        self._busy_until = end
        self.bytes_transferred += nbytes
        self.busy_time += duration
        self.transfer_count += 1
        return self.sim.timeout(end - self.sim.now, value=nbytes)

    @property
    def backlog(self) -> float:
        """Seconds of already-committed work ahead of a new transfer."""
        return max(0.0, self._busy_until - self.sim.now)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of (now or *elapsed*) the pipe spent busy."""
        window = self.sim.now if elapsed is None else elapsed
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_time / window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BandwidthChannel {self.name} bw={self.bandwidth:.3g} B/s lat={self.latency:.3g}s>"
