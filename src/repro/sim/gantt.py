"""ASCII Gantt rendering of trace intervals.

Turns a :class:`~repro.sim.trace.Tracer`'s begin/end records into the kind
of overlap diagram the paper draws (Figs. 4 and 7): one row per
(actor, phase) lane, time left to right, so the pipeline's transfer/kernel
overlap is visible in a terminal.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.trace import Interval, Tracer
from repro.util.validation import require, require_positive

#: Fill characters cycled across phases so adjacent lanes read distinctly.
FILL_CHARS = "#=@%+*"


def render_gantt(
    intervals: Sequence[Interval],
    width: int = 72,
    label_width: int = 18,
    t_start: Optional[float] = None,
    t_end: Optional[float] = None,
) -> str:
    """Render *intervals* as an ASCII Gantt chart.

    Lanes are (actor, phase) pairs in first-appearance order; each interval
    paints its span with the phase's fill character.  The time axis is
    annotated with the start/end times.
    """
    require_positive(width, "width")
    require_positive(label_width, "label_width")
    if not intervals:
        return "(no intervals)"
    lo = min(s.start for s in intervals) if t_start is None else t_start
    hi = max(s.end for s in intervals) if t_end is None else t_end
    require(hi > lo, f"empty time range [{lo}, {hi}]")
    span = hi - lo

    lanes: dict[tuple[str, str], list[Interval]] = {}
    for interval in intervals:
        lanes.setdefault((interval.actor, interval.phase), []).append(interval)
    phases: dict[str, str] = {}
    for _, phase in lanes:
        if phase not in phases:
            phases[phase] = FILL_CHARS[len(phases) % len(FILL_CHARS)]

    lines: list[str] = []
    for (actor, phase), spans in lanes.items():
        row = [" "] * width
        fill = phases[phase]
        for interval in spans:
            a = int((max(interval.start, lo) - lo) / span * (width - 1))
            b = int((min(interval.end, hi) - lo) / span * (width - 1))
            for i in range(a, max(a, b) + 1):
                row[i] = fill
        label = f"{actor}.{phase}"[:label_width].ljust(label_width)
        lines.append(f"{label}|{''.join(row)}|")
    axis = f"{'':{label_width}}|{lo:<{(width) // 2}.4g}{hi:>{width - width // 2}.4g}|"
    legend = "  ".join(f"{char}={phase}" for phase, char in phases.items())
    return "\n".join(lines + [axis, "legend: " + legend])


def render_tracer(tracer: Tracer, **kwargs) -> str:
    """Convenience: render all of a tracer's paired intervals."""
    return render_gantt(tracer.intervals(), **kwargs)
