"""A small discrete-event simulation (DES) engine.

This is the substrate every hardware model in :mod:`repro.machine` runs on.
Real TianHe-1 time is replaced by a virtual clock; devices, transfer engines
and MPI ranks are generator-based processes; bandwidth and mutual exclusion
are resources.  The engine is a deliberately compact SimPy-style kernel:

* :class:`~repro.sim.engine.Simulator` — event loop and virtual clock.
* :class:`~repro.sim.engine.Event` / :class:`~repro.sim.engine.Timeout` —
  one-shot occurrences processes can wait on.
* :class:`~repro.sim.engine.Process` — a generator that ``yield``\\ s events;
  itself an event that succeeds with the generator's return value.
* :class:`~repro.sim.engine.AllOf` / :class:`~repro.sim.engine.AnyOf` —
  barrier / race combinators.
* :class:`~repro.sim.resources.Resource` — counted FIFO resource (a mutex at
  capacity 1: the paper's single dedicated transfer thread).
* :class:`~repro.sim.resources.Store` — FIFO item queue (task queues,
  mailboxes for the simulated MPI).
* :class:`~repro.sim.resources.BandwidthChannel` — a latency+bandwidth link
  that serialises transfers (PCIe hops, InfiniBand).
* :class:`~repro.sim.trace.Tracer` — timestamped trace records used to
  reconstruct pipeline schedules (the paper's Table I / Fig. 7).
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    BatchTimeout,
    Event,
    Process,
    SimStats,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import BandwidthChannel, Resource, Store
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "BatchTimeout",
    "Event",
    "Process",
    "SimulationError",
    "SimStats",
    "Simulator",
    "Timeout",
    "Resource",
    "Store",
    "BandwidthChannel",
    "TraceRecord",
    "Tracer",
]
