"""Checkpoint/resume for sweeps: a crash-safe journal of completed scenarios.

A :class:`SweepJournal` is an append-only JSONL file — one line per
*completed* scenario, written and ``fsync``-ed before the result is
reported to the caller.  Kill the process at any instant and the journal
holds every scenario that finished except possibly none (the fsync ran) —
the in-flight ones simply never made it in.  On restart,
:meth:`SweepJournal.plan` compares the journal against the sweep's scenario
list and returns exactly the un-journaled remainder to re-run, so an
interrupted campaign loses at most the scenarios that were actually in
flight at the kill, never completed work.

The journal composes with the :class:`repro.obs.RunLedger` flight recorder:
:meth:`SweepJournal.in_ledger` places ``scenarios.jsonl`` inside the run
directory and stamps the manifest, so ``python -m repro.obs`` tooling and
the checkpoint read the same directory.  Reading uses the same tolerant
:func:`repro.obs.stream.iter_jsonl` machinery as the span streams: a line
truncated by the kill is reported as ``truncated``, never an exception.

Record format (one JSON object per line)::

    {"v": 1, "hash": "<scenario content hash>", "tenant": "...",
     "scheduler": "...", "n": ..., "seed": ...,
     "gflops": ..., "elapsed": ..., "degraded": null | "...", "wall": ...}

Scenarios are identified by :meth:`repro.session.Scenario.content_hash`
with *multiset* semantics: a sweep listing the same scenario twice re-runs
it once per missing completion.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional, Sequence, Union

from repro.obs.stream import iter_jsonl
from repro.session.scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.hpl.driver import LinpackResult
    from repro.obs.ledger import RunLedger

__all__ = ["SweepJournal", "ResumePlan", "JOURNAL_NAME"]

#: The journal's file name inside a run-ledger directory.
JOURNAL_NAME = "scenarios.jsonl"


@dataclass(frozen=True)
class ResumePlan:
    """What :meth:`SweepJournal.plan` decided.

    ``done`` maps sweep indices to their journaled records; ``pending``
    lists ``(index, scenario)`` pairs that must (re-)run.  Indices refer to
    the scenario sequence handed to :meth:`~SweepJournal.plan`, so a driver
    can merge re-run results back into sweep order.
    """

    done: dict[int, dict[str, Any]]
    pending: tuple[tuple[int, Scenario], ...]

    @property
    def resumed(self) -> bool:
        """True when the journal already held at least one completion."""
        return bool(self.done)


class SweepJournal:
    """Append-only completion journal; one fsync-ed JSON line per scenario."""

    def __init__(self, path: Union[str, Path], *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self._closed = False
        self.records_written = 0

    @classmethod
    def in_ledger(cls, ledger: "RunLedger", *, fsync: bool = True) -> "SweepJournal":
        """The journal co-located with a run ledger's flight recorder."""
        journal = cls(ledger.directory / JOURNAL_NAME, fsync=fsync)
        ledger.annotate(sweep_journal=JOURNAL_NAME)
        return journal

    # -- writing ---------------------------------------------------------------
    def record(
        self,
        scenario: Scenario,
        result: "LinpackResult",
        *,
        tenant: str = "default",
    ) -> dict[str, Any]:
        """Journal one completed scenario; durable before this returns."""
        payload = {
            "v": 1,
            "hash": scenario.content_hash(),
            "tenant": tenant,
            "scheduler": scenario.scheduler_name,
            "n": scenario.n,
            "seed": scenario.seed,
            "gflops": result.gflops,
            "elapsed": result.elapsed,
            "degraded": None if result.degraded is None else str(result.degraded),
            "wall": time.time(),
        }
        self.append(payload)
        return payload

    def append(self, payload: dict[str, Any]) -> None:
        """Append one raw record line, flush, and fsync (when configured)."""
        if self._closed:
            raise ValueError(f"SweepJournal({self.path}) is closed")
        self._file.write(json.dumps(payload, default=str) + "\n")
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.records_written += 1

    def close(self) -> None:
        """Close the file.  Idempotent."""
        if self._closed:
            return
        self._file.close()
        self._closed = True

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- reading ---------------------------------------------------------------
    @staticmethod
    def load(path: Union[str, Path]) -> tuple[list[dict[str, Any]], bool]:
        """All parseable records plus a ``truncated`` flag.

        A missing file is an empty journal (fresh sweep); a torn tail (the
        kill signature) drops only the torn line.
        """
        path = Path(path)
        if not path.exists():
            return [], False
        records: list[dict[str, Any]] = []
        truncated = False
        for record, ok in iter_jsonl(path):
            if ok and isinstance(record, dict) and "hash" in record:
                records.append(record)
            else:
                truncated = True
        return records, truncated

    @classmethod
    def plan(
        cls, path: Union[str, Path], scenarios: Sequence[Scenario]
    ) -> ResumePlan:
        """Split *scenarios* into journaled completions and pending re-runs.

        Matching is by content hash with multiset semantics: each journaled
        completion satisfies one occurrence of its hash, in sweep order.
        Journal entries for scenarios no longer in the sweep are ignored —
        a narrowed resume is legal and re-runs nothing it does not need.
        """
        records, _ = cls.load(path)
        by_hash: dict[str, list[dict[str, Any]]] = {}
        for record in records:
            by_hash.setdefault(str(record["hash"]), []).append(record)
        done: dict[int, dict[str, Any]] = {}
        pending: list[tuple[int, Scenario]] = []
        for index, scenario in enumerate(scenarios):
            bucket = by_hash.get(scenario.content_hash())
            if bucket:
                done[index] = bucket.pop(0)
            else:
                pending.append((index, scenario))
        return ResumePlan(done=done, pending=tuple(pending))

    @staticmethod
    def completion_counts(path: Union[str, Path]) -> Counter:
        """Hash -> journaled completion count (progress probes, tests)."""
        records, _ = SweepJournal.load(path)
        return Counter(str(record["hash"]) for record in records)
