"""Fair-share admission: round-robin pool slots across named tenants.

Pure bookkeeping, deliberately free of asyncio and processes so the same
state machine serves three masters: the
:class:`~repro.session.runtime.AsyncSession` event loop, the hypothesis
property suite (arbitrary submit/cancel/finish interleavings in
``tests/session/test_properties.py``), and the soak harness's invariant
checks.  The runtime asks :meth:`FairShareScheduler.next_job` whenever a
slot may have freed; everything else is the runtime's problem.

The contract:

* **Bounded admission** — each tenant has a FIFO queue of at most
  ``max_queued`` jobs; a submit beyond that raises :class:`AdmissionFull`
  immediately (backpressure, never silent loss).
* **Per-tenant in-flight cap** — at most ``max_in_flight`` of a tenant's
  jobs hold pool slots at once, so one tenant flooding the queue cannot
  starve the others out of the pool.
* **Round-robin fairness** — slots are granted by cycling tenants in
  first-submission order, one grant per turn.  Among continuously
  backlogged tenants with equal caps, granted counts can never differ by
  more than one — the bounded-skew invariant the soak harness pins.
* **Conservation** — every submitted job is at every moment in exactly one
  of: queued, in-flight, or forgotten-because-finished/cancelled.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, Optional

__all__ = [
    "AdmissionFull",
    "UnknownJob",
    "FairShareScheduler",
    "DEFAULT_MAX_IN_FLIGHT",
    "DEFAULT_MAX_QUEUED",
]

#: Per-tenant in-flight slots unless the tenant overrides it.
DEFAULT_MAX_IN_FLIGHT = 4

#: Per-tenant admission-queue bound unless the tenant overrides it.
DEFAULT_MAX_QUEUED = 1024


class AdmissionFull(RuntimeError):
    """A tenant's admission queue is at its bound; submit again later."""


class UnknownJob(KeyError):
    """The job id is not (or no longer) known to the scheduler."""


@dataclass
class _Tenant:
    """One tenant's queue and caps (internal)."""

    name: str
    max_in_flight: int
    max_queued: int
    queued: Deque[str] = field(default_factory=deque)
    in_flight: int = 0
    granted: int = 0  # lifetime grants, for fairness accounting


class FairShareScheduler:
    """Round-robin slot allocator over named tenants.

    *slots* bounds the total jobs in flight across all tenants (the size
    of the worker pool); per-tenant caps bound each tenant's share of it.
    """

    def __init__(
        self,
        slots: int,
        *,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_queued: int = DEFAULT_MAX_QUEUED,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1 (got {slots})")
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1 (got {max_in_flight})")
        if max_queued < 1:
            raise ValueError(f"max_queued must be >= 1 (got {max_queued})")
        self.slots = int(slots)
        self.default_max_in_flight = int(max_in_flight)
        self.default_max_queued = int(max_queued)
        self._tenants: "OrderedDict[str, _Tenant]" = OrderedDict()
        self._jobs: Dict[str, str] = {}  # job id -> tenant name (queued or in flight)
        self._in_flight: set[str] = set()
        self._rr: list[str] = []  # tenant visit order for the next grant scan
        self.total_in_flight = 0

    # -- tenants ---------------------------------------------------------------
    def tenant(
        self,
        name: str,
        *,
        max_in_flight: Optional[int] = None,
        max_queued: Optional[int] = None,
    ) -> None:
        """Declare *name* (idempotent), optionally overriding its caps.

        Tenants are auto-declared with the defaults on first submit; an
        explicit call pins custom caps.  Shrinking a cap below the current
        occupancy is allowed — the scheduler simply stops granting until
        the tenant drains under it.
        """
        entry = self._tenants.get(name)
        if entry is None:
            entry = _Tenant(
                name,
                self.default_max_in_flight,
                self.default_max_queued,
            )
            self._tenants[name] = entry
            self._rr.append(name)
        if max_in_flight is not None:
            if max_in_flight < 1:
                raise ValueError(f"max_in_flight must be >= 1 (got {max_in_flight})")
            entry.max_in_flight = int(max_in_flight)
        if max_queued is not None:
            if max_queued < 1:
                raise ValueError(f"max_queued must be >= 1 (got {max_queued})")
            entry.max_queued = int(max_queued)

    def tenants(self) -> list[str]:
        """Tenant names in first-submission order."""
        return list(self._tenants)

    # -- job lifecycle ---------------------------------------------------------
    def submit(self, tenant: str, job_id: str) -> None:
        """Queue *job_id* under *tenant*; raises :class:`AdmissionFull` at
        the bound and ``ValueError`` on a duplicate id."""
        if job_id in self._jobs:
            raise ValueError(f"duplicate job id {job_id!r}")
        self.tenant(tenant)
        entry = self._tenants[tenant]
        if len(entry.queued) >= entry.max_queued:
            raise AdmissionFull(
                f"tenant {tenant!r} admission queue is full "
                f"({entry.max_queued} queued); retry after a completion"
            )
        entry.queued.append(job_id)
        self._jobs[job_id] = tenant

    def next_job(self) -> Optional[str]:
        """Grant one slot: the next queued job in round-robin tenant order.

        Returns ``None`` when nothing can start (no slots free, or every
        backlogged tenant is at its in-flight cap).  The granted job moves
        from queued to in flight.
        """
        if self.total_in_flight >= self.slots:
            return None
        # One full cycle over tenants starting at the round-robin cursor.
        for index, name in enumerate(self._rr):
            entry = self._tenants[name]
            if entry.queued and entry.in_flight < entry.max_in_flight:
                job_id = entry.queued.popleft()
                entry.in_flight += 1
                entry.granted += 1
                self.total_in_flight += 1
                self._in_flight.add(job_id)
                # Rotate: tenants after this one get the next grants first.
                self._rr = self._rr[index + 1 :] + self._rr[: index + 1]
                return job_id
        return None

    def finish(self, job_id: str) -> None:
        """Release *job_id*'s slot (completed, failed, or cancelled-while-running)."""
        tenant = self._jobs.pop(job_id, None)
        if tenant is None or job_id not in self._in_flight:
            if tenant is not None:  # it was only queued; restore and complain
                self._jobs[job_id] = tenant
            raise UnknownJob(f"job {job_id!r} is not in flight")
        self._in_flight.discard(job_id)
        entry = self._tenants[tenant]
        entry.in_flight -= 1
        self.total_in_flight -= 1

    def cancel_queued(self, job_id: str) -> bool:
        """Remove *job_id* from its admission queue if it has not started.

        Returns True when the job was still queued (now forgotten); False
        when it is already in flight (the caller owns that race) or not
        known at all.
        """
        tenant = self._jobs.get(job_id)
        if tenant is None or job_id in self._in_flight:
            return False
        entry = self._tenants[tenant]
        try:
            entry.queued.remove(job_id)
        except ValueError:
            return False
        del self._jobs[job_id]
        return True

    # -- introspection ---------------------------------------------------------
    def queued_count(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            entry = self._tenants.get(tenant)
            return len(entry.queued) if entry else 0
        return sum(len(t.queued) for t in self._tenants.values())

    def in_flight_count(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            entry = self._tenants.get(tenant)
            return entry.in_flight if entry else 0
        return self.total_in_flight

    def granted_count(self, tenant: str) -> int:
        entry = self._tenants.get(tenant)
        return entry.granted if entry else 0

    def iter_jobs(self) -> Iterator[tuple[str, str, str]]:
        """``(job_id, tenant, 'queued'|'in-flight')`` for every live job."""
        for job_id, tenant in self._jobs.items():
            state = "in-flight" if job_id in self._in_flight else "queued"
            yield job_id, tenant, state

    def check_invariants(self) -> None:
        """Assert internal conservation; raises AssertionError on breakage.

        Called by the property suite after every operation — the invariants
        here are the machine-checked form of the module contract.
        """
        assert self.total_in_flight <= self.slots, "global slot cap exceeded"
        assert self.total_in_flight == len(self._in_flight)
        per_tenant_flight: Dict[str, int] = {}
        for job_id in self._in_flight:
            per_tenant_flight[self._jobs[job_id]] = (
                per_tenant_flight.get(self._jobs[job_id], 0) + 1
            )
        total = 0
        for name, entry in self._tenants.items():
            assert entry.in_flight == per_tenant_flight.get(name, 0)
            assert entry.in_flight <= entry.max_in_flight, (
                f"tenant {name!r} over its in-flight cap"
            )
            assert len(entry.queued) <= entry.max_queued, (
                f"tenant {name!r} over its admission bound"
            )
            for job_id in entry.queued:
                assert self._jobs.get(job_id) == name
            total += len(entry.queued) + entry.in_flight
        assert total == len(self._jobs), "job conservation violated"
        assert sorted(self._rr) == sorted(self._tenants), "round-robin ring drifted"
