"""The front door: describe a run as data, then execute it — sync or async.

A :class:`Scenario` is a frozen, keyword-only description of one Linpack
experiment; two front-ends execute it:

* :class:`Session` — the original one-shot blocking API, unchanged::

      from repro.session import Scenario, Session

      result = Session(Scenario(scheduler="adaptive", n=40000)).run()
      print(result.gflops, result.degraded)

* :class:`AsyncSession` — the multi-tenant asyncio runtime: thousands of
  scenarios in flight over a persistent :class:`repro.exec.WorkerPool`,
  fair-share scheduled across named tenants (bounded admission queues,
  per-tenant in-flight caps), each submission a :class:`RunHandle` with
  ``await handle.result()`` / ``handle.stream()`` / ``handle.cancel()``::

      async with AsyncSession(slots=8) as session:
          handle = session.submit(scenario, tenant="campaign-a")
          result = await handle.result()

  Completions journal through a :class:`SweepJournal` (optionally inside a
  :class:`repro.obs.RunLedger` flight recorder), so a killed sweep resumes
  via :func:`run_sweep` losing at most its in-flight scenarios.

The two produce byte-identical results for the same scenario — the async
runtime runs the same ``Session`` body on its workers.  See
``docs/sessions.md`` for the runtime, tenancy, and checkpoint contracts,
and ``tests/soak/`` for the churn harness that pins them.
"""

from repro.session.fair_share import (
    DEFAULT_MAX_IN_FLIGHT,
    DEFAULT_MAX_QUEUED,
    AdmissionFull,
    FairShareScheduler,
)
from repro.session.journal import JOURNAL_NAME, ResumePlan, SweepJournal
from repro.session.runtime import (
    AsyncRuntime,
    AsyncSession,
    RunHandle,
    RunState,
    SessionEvent,
    map_tasks,
    run_sweep,
)
from repro.session.scenario import Scenario, SchedulerSpec
from repro.session.sync import Session, run

__all__ = [
    "Scenario",
    "SchedulerSpec",
    "Session",
    "run",
    "AsyncSession",
    "AsyncRuntime",
    "RunHandle",
    "RunState",
    "SessionEvent",
    "AdmissionFull",
    "FairShareScheduler",
    "DEFAULT_MAX_IN_FLIGHT",
    "DEFAULT_MAX_QUEUED",
    "SweepJournal",
    "ResumePlan",
    "JOURNAL_NAME",
    "map_tasks",
    "run_sweep",
]
