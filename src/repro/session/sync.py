"""The one-shot blocking :class:`Session`: run a scenario, get a result.

This is the original ``repro.session`` execution API, kept byte-identical:
:class:`~repro.session.runtime.AsyncSession` builds on the same
``_run_linpack`` call, so a scenario run through either front-end produces
the same :class:`~repro.hpl.driver.LinpackResult`.

Resource discipline: every sink the session itself wires up — the ledger's
streaming sink, its metrics checkpoints — is closed on *every* exit path,
including exceptions raised before the run proper starts (a scenario hash
that fails to canonicalise, a manifest rewrite hitting a full disk) and
exceptions raised by the failure handler itself.  A failing scenario must
not leak file descriptors: the soak harness churns thousands of runs and
asserts the fd table stays flat.
"""

from __future__ import annotations

from repro.hpl.driver import LinpackResult, _run_linpack
from repro.session.scenario import Scenario

__all__ = ["Session", "run"]


class Session:
    """Executes a :class:`Scenario`; reusable, stateless between runs."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario

    def run(self, progress=None, telemetry=None, ledger=None) -> LinpackResult:
        """Run the scenario once and return its :class:`LinpackResult`.

        *progress* is called with each panel's
        :class:`~repro.hpl.analytic.StepTrace`; *telemetry* (a
        :class:`repro.obs.Telemetry`, defaulting to the ambient one)
        receives per-panel spans, GFLOPS series and — under an active
        :class:`~repro.faults.FaultSpec` — the ``faults.*`` counters and
        fault-track instants.  Neither hook affects results.

        *ledger* (a :class:`repro.obs.RunLedger`) turns the run into a
        flight-recorded one: the scenario hash is stamped into the
        manifest, spans/metrics stream incrementally into the run
        directory, and a result summary (or the exception) is written on
        exit — a killed run stays readable via ``python -m repro.obs``.
        When *ledger* is given and *telemetry* is not, the ledger's
        telemetry is used.

        The ledger is closed on every exit path: a raising run records a
        ``failed`` summary, and even a failure *while recording the
        failure* still closes the streaming sink, so a scenario that blows
        up cannot leak the ledger's file descriptors.
        """
        if ledger is None:
            return self._execute(progress, telemetry)
        try:
            s = self.scenario
            ledger.annotate(
                scenario_hash=s.content_hash(),
                scenario={"scheduler": s.scheduler_name,
                          "configuration": s.scheduler_name,  # legacy key
                          "n": s.n,
                          "grid": [s.grid.nprow, s.grid.npcol], "seed": s.seed},
            )
            if telemetry is None:
                telemetry = ledger.telemetry
            result = self._execute(progress, telemetry)
        except BaseException as error:
            try:
                ledger.fail(f"{type(error).__name__}: {error}")
            finally:
                # Belt and braces: fail() normally closes the sink, but if
                # it raised partway (disk full mid-summary) the fd must
                # still go.  close() is idempotent.
                ledger.sink.close()
            raise
        ledger.finish(
            {
                "gflops": result.gflops,
                "elapsed_seconds": result.elapsed,
                "degraded": None if result.degraded is None else str(result.degraded),
            }
        )
        return result

    def _execute(self, progress, telemetry) -> LinpackResult:
        s = self.scenario
        return _run_linpack(
            s.scheduler,
            s.n,
            s.build_cluster(),
            s.grid,
            seed=s.seed,
            collect_steps=s.collect_steps,
            overrides=dict(s.overrides) if s.overrides else None,
            progress=progress,
            telemetry=telemetry,
            faults=s.faults,
        )


def run(scenario: Scenario, progress=None, telemetry=None, ledger=None) -> LinpackResult:
    """Convenience one-shot: ``Session(scenario).run(...)``."""
    return Session(scenario).run(progress=progress, telemetry=telemetry, ledger=ledger)
