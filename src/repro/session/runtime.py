"""The asyncio session runtime: thousands of scenarios in flight at once.

The synchronous :class:`~repro.session.Session` runs one scenario and
blocks.  An exascale-era sweep is shaped differently: a campaign keeps
thousands of simulations in flight across tenants, cancels the ones a
what-if query no longer needs, and survives its driver being killed.  The
runtime here is that front-end::

    async with AsyncSession(slots=8) as session:
        handle = session.submit(Scenario(scheduler="adaptive", n=40000),
                                tenant="campaign-a")
        async for event in handle.stream():
            ...                      # incremental state/span/metric events
        result = await handle.result()

Three layers, composed:

* :class:`AsyncRuntime` — the generic core: a
  :class:`~repro.session.fair_share.FairShareScheduler` granting slots of a
  persistent :class:`repro.exec.WorkerPool` round-robin across tenants
  (bounded admission queues, per-tenant in-flight caps), with every job
  tracked by a :class:`RunHandle` that reaches **exactly one** terminal
  state — completed, failed, or cancelled.  ``repro.exec.run_tasks``
  batches route through :func:`map_tasks` under
  ``ExecutionPolicy(runtime="async")`` (the bench CLIs' ``--async`` flag).
* :class:`AsyncSession` — the scenario front-end: ``submit()`` pickles the
  :class:`~repro.session.Scenario` onto a worker, ``handle.stream()`` tails
  the per-job :mod:`repro.obs.stream` event file the worker appends to
  (span/instant records plus a final metrics snapshot), and completions are
  journaled through a :class:`~repro.session.journal.SweepJournal` so a
  killed campaign resumes losing at most its in-flight scenarios.
* :func:`run_sweep` — the checkpoint/resume driver: give it scenarios and
  a journal path; it replays journaled completions and runs only the rest.

Cancellation semantics (pinned by ``tests/session/test_cancel.py``): a
*queued* job cancels immediately; a *running* job cannot be interrupted —
its worker finishes, the result is discarded, the handle ends CANCELLED; a
job whose execution already finished (always the case on the serial
fallback path, where :class:`~repro.exec.WorkerPool` runs jobs inline)
treats ``cancel()`` as a no-op completion — never a hang.
"""

from __future__ import annotations

import asyncio
import enum
import json
import tempfile
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, AsyncIterator, Callable, Optional, Sequence, Union

from repro import obs
from repro.exec.policy import ExecutionPolicy
from repro.exec.pool import WorkerPool, _register_shards, _run_sharded, in_worker
from repro.hpl.driver import LinpackResult
from repro.session.fair_share import (
    DEFAULT_MAX_IN_FLIGHT,
    DEFAULT_MAX_QUEUED,
    AdmissionFull,
    FairShareScheduler,
)
from repro.session.journal import ResumePlan, SweepJournal
from repro.session.scenario import Scenario
from repro.session.sync import Session

__all__ = [
    "RunState",
    "SessionEvent",
    "RunHandle",
    "AsyncRuntime",
    "AsyncSession",
    "map_tasks",
    "run_sweep",
]

#: How often (seconds) stream() re-polls a live job's event file.
DEFAULT_STREAM_POLL = 0.02


class RunState(str, enum.Enum):
    """A submitted job's lifecycle.  Exactly one terminal state, ever."""

    PENDING = "pending"      # admitted, waiting for a fair-share slot
    RUNNING = "running"      # dispatched to the worker pool
    COMPLETED = "completed"  # result available
    FAILED = "failed"        # the run raised; error available
    CANCELLED = "cancelled"  # cancelled before a result was accepted

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = {RunState.COMPLETED, RunState.FAILED, RunState.CANCELLED}


@dataclass(frozen=True)
class SessionEvent:
    """One item of a handle's event stream.

    ``kind`` is ``"state"`` for lifecycle transitions (``data`` holds
    ``{"state": ...}``), or the record's ``t`` field — ``"span"``,
    ``"instant"``, ``"metrics"`` — for telemetry streamed out of the
    worker's per-job JSONL file.
    """

    kind: str
    job_id: str
    data: dict[str, Any] = field(default_factory=dict)
    wall: float = 0.0


class RunHandle:
    """One submitted job: await its result, stream its events, cancel it."""

    def __init__(
        self,
        job_id: str,
        tenant: str,
        *,
        scenario: Optional[Scenario] = None,
        label: str = "",
        events_path: Optional[Path] = None,
    ) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.scenario = scenario
        self.label = label or job_id
        self._events_path = events_path
        self._state = RunState.PENDING
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._done = asyncio.Event()
        self._cancel_requested = False
        self._future: Optional["asyncio.Future[Any]"] = None
        # The pool-level future: done-ness here means execution actually
        # finished, even before the event loop has seen the completion
        # (the asyncio wrapper only resolves once the loop runs).
        self._exec_future: Optional["Future[Any]"] = None
        #: Must end at exactly 1 — the soak harness's core invariant.
        self.terminal_transitions = 0
        self._state_events: list[SessionEvent] = [
            SessionEvent("state", job_id, {"state": RunState.PENDING.value}, time.time())
        ]

    # -- observers -------------------------------------------------------------
    @property
    def state(self) -> RunState:
        return self._state

    @property
    def done(self) -> bool:
        return self._state.terminal

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    async def wait(self) -> RunState:
        """Block until the job reaches its terminal state; never raises."""
        await self._done.wait()
        return self._state

    async def result(self) -> Any:
        """The job's result; raises its error on FAILED and
        :class:`asyncio.CancelledError` on CANCELLED."""
        await self._done.wait()
        if self._state is RunState.FAILED:
            assert self._error is not None
            raise self._error
        if self._state is RunState.CANCELLED:
            raise asyncio.CancelledError(f"{self.label} was cancelled")
        return self._result

    def exception(self) -> Optional[BaseException]:
        """The terminal error, if the job FAILED (None otherwise)."""
        return self._error

    # -- cancellation ----------------------------------------------------------
    def cancel(self) -> bool:
        """Request cancellation; returns True when it will be honored.

        Queued jobs cancel immediately.  Running jobs cancel at completion
        (result discarded).  Jobs whose execution already finished — the
        invariable case on the serial fallback path — return False and
        complete normally: a no-op, never a hang.
        """
        if self._state.terminal:
            return False
        if self._state is RunState.PENDING:
            # The runtime's cancel hook (set at submit) dequeues it.
            self._cancel_requested = True
            if self._on_cancel is not None:
                self._on_cancel(self)
            return True
        if self._exec_future is not None and self._exec_future.done():
            return False  # execution finished; completion is on its way
        self._cancel_requested = True
        return True

    _on_cancel: Optional[Callable[["RunHandle"], None]] = None

    # -- event stream ----------------------------------------------------------
    async def stream(
        self, *, poll_interval: float = DEFAULT_STREAM_POLL
    ) -> "AsyncIterator[SessionEvent]":
        """Yield this job's events — lifecycle transitions always, plus the
        worker's incremental span/instant/metrics records when the job was
        submitted with ``stream=True``.

        The stream ends once the job is terminal and every event has been
        drained; it replays history, so consuming after completion yields
        the full record.
        """
        sent_states = 0
        offset = 0
        while True:
            while sent_states < len(self._state_events):
                yield self._state_events[sent_states]
                sent_states += 1
            if self._events_path is not None:
                offset, records = _read_event_records(self._events_path, offset)
                for record in records:
                    yield SessionEvent(
                        str(record.get("t", "record")),
                        self.job_id,
                        record,
                        time.time(),
                    )
            if self.done:
                # One final drain after the terminal transition: the worker
                # closed its sink before the result was accepted, so EOF
                # here is the real end of the stream.
                while sent_states < len(self._state_events):
                    yield self._state_events[sent_states]
                    sent_states += 1
                if self._events_path is not None:
                    offset, records = _read_event_records(self._events_path, offset)
                    for record in records:
                        yield SessionEvent(
                            str(record.get("t", "record")),
                            self.job_id,
                            record,
                            time.time(),
                        )
                return
            try:
                await asyncio.wait_for(self._done.wait(), timeout=poll_interval)
            except asyncio.TimeoutError:
                pass

    # -- runtime-side transitions (loop thread only) ---------------------------
    def _transition(self, state: RunState) -> None:
        if self._state.terminal:
            raise AssertionError(
                f"{self.label}: second terminal transition "
                f"{self._state.value} -> {state.value}"
            )
        self._state = state
        self._state_events.append(
            SessionEvent("state", self.job_id, {"state": state.value}, time.time())
        )
        if state.terminal:
            self.terminal_transitions += 1
            self._done.set()


def _read_event_records(path: Path, offset: int) -> tuple[int, list[dict[str, Any]]]:
    """Read complete JSONL records appended past *offset*; tolerant tail.

    Returns the new offset (end of the last complete line consumed) and
    the parsed records.  A torn or garbled line is left for the next poll;
    garbage that never completes is skipped once a newline lands after it.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
    except OSError:
        return offset, []
    if not chunk:
        return offset, []
    end = chunk.rfind(b"\n")
    if end < 0:
        return offset, []
    records: list[dict[str, Any]] = []
    for line in chunk[: end + 1].splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return offset + end + 1, records


# -- worker-side execution -----------------------------------------------------


def _execute_scenario(scenario: Scenario, events_path: Optional[str] = None) -> LinpackResult:
    """Run one scenario on a worker, optionally streaming its telemetry.

    With *events_path*, every span/instant the run records is flushed
    record-by-record into that JSONL file through a
    :class:`repro.obs.StreamingSink` (``fsync`` off: the parent outlives
    the worker and tails the file live), followed by one ``{"t":
    "metrics", ...}`` snapshot line — the feed ``RunHandle.stream()``
    serves.
    """
    if events_path is None:
        return Session(scenario).run()
    from repro.obs.stream import StreamingSink

    sink = StreamingSink(
        events_path, flush_records=1, flush_interval=None, fsync=False
    )
    telemetry = obs.Telemetry(sink=sink)
    try:
        with obs.use(telemetry):
            result = Session(scenario).run(telemetry=telemetry)
    finally:
        sink.close()
    with open(events_path, "a", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {"t": "metrics", "metrics": telemetry.metrics.scalar_summary()},
                default=str,
            )
            + "\n"
        )
    return result


def _execute_call(fn: Callable[..., Any], kwargs: dict) -> Any:
    """Generic job body for :func:`map_tasks` (module-level, picklable)."""
    return fn(**kwargs)


# -- the runtime core ----------------------------------------------------------


class AsyncRuntime:
    """Generic fair-share job runtime over a persistent worker pool.

    Drive it from inside a running event loop.  ``submit_job`` admits a
    picklable ``fn(**kwargs)`` under a tenant; slots are granted
    round-robin by the :class:`FairShareScheduler`; results land on
    :class:`RunHandle`\\ s.  Subclasses hook :meth:`_job_completed` (the
    journal) and :meth:`_describe` (metrics labels).
    """

    def __init__(
        self,
        *,
        slots: Optional[int] = None,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_queued: int = DEFAULT_MAX_QUEUED,
        serial: Optional[bool] = None,
    ) -> None:
        self.pool = WorkerPool(slots, serial=serial)
        self.scheduler = FairShareScheduler(
            self.pool.size, max_in_flight=max_in_flight, max_queued=max_queued
        )
        self._handles: dict[str, RunHandle] = {}
        self._live = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._seq = 0
        self._closed = False
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0

    # -- tenancy ---------------------------------------------------------------
    def tenant(
        self,
        name: str,
        *,
        max_in_flight: Optional[int] = None,
        max_queued: Optional[int] = None,
    ) -> None:
        """Declare a tenant with custom caps (auto-declared on first submit)."""
        self.scheduler.tenant(
            name, max_in_flight=max_in_flight, max_queued=max_queued
        )

    # -- submission ------------------------------------------------------------
    def submit_job(
        self,
        fn: Callable[..., Any],
        kwargs: dict,
        *,
        tenant: str = "default",
        label: str = "",
        scenario: Optional[Scenario] = None,
        events_path: Optional[Path] = None,
    ) -> RunHandle:
        """Admit one job; raises :class:`AdmissionFull` at the tenant bound.

        Must be called with the event loop running (it schedules the
        completion callback on it).
        """
        if self._closed:
            raise RuntimeError("runtime is closed")
        asyncio.get_running_loop()  # raise early outside a loop
        self._seq += 1
        job_id = f"job-{self._seq:06d}"
        handle = RunHandle(
            job_id, tenant, scenario=scenario, label=label, events_path=events_path
        )
        handle._on_cancel = self._cancel_pending
        handle._payload = (fn, kwargs)  # type: ignore[attr-defined]
        self.scheduler.submit(tenant, job_id)
        self._handles[job_id] = handle
        self._live += 1
        self._idle.clear()
        self.submitted += 1
        self._count("session.submitted", "jobs admitted to the session runtime")
        self._pump()
        return handle

    # -- scheduling ------------------------------------------------------------
    def _pump(self) -> None:
        """Dispatch every job the fair-share scheduler will currently grant."""
        while True:
            job_id = self.scheduler.next_job()
            if job_id is None:
                break
            self._dispatch(self._handles[job_id])
        self._gauges()

    def _dispatch(self, handle: RunHandle) -> None:
        fn, kwargs = handle._payload  # type: ignore[attr-defined]
        handle._transition(RunState.RUNNING)
        future = self.pool.submit(fn, **kwargs)
        handle._exec_future = future
        handle._future = asyncio.wrap_future(future)
        asyncio.ensure_future(self._finalize(handle))

    async def _finalize(self, handle: RunHandle) -> None:
        error: Optional[BaseException] = None
        result: Any = None
        assert handle._future is not None
        try:
            result = await handle._future
        except asyncio.CancelledError as exc:  # future cancelled under us
            error = exc
        except BaseException as exc:  # noqa: BLE001 - reported via the handle
            error = exc
        self.scheduler.finish(handle.job_id)
        if handle.cancel_requested:
            self.cancelled += 1
            self._count("session.cancelled", "jobs cancelled")
            handle._transition(RunState.CANCELLED)
        elif error is not None:
            handle._error = error
            self.failed += 1
            self._count("session.failed", "jobs that raised")
            handle._transition(RunState.FAILED)
        else:
            try:
                self._job_completed(handle, result)
            except BaseException as exc:  # noqa: BLE001 - journal failure
                # A checkpoint that cannot be written is a failed job: the
                # caller must not believe a completion that would vanish on
                # resume.
                handle._error = exc
                self.failed += 1
                self._count("session.failed", "jobs that raised")
                handle._transition(RunState.FAILED)
            else:
                handle._result = result
                self.completed += 1
                self._count("session.completed", "jobs completed with a result")
                handle._transition(RunState.COMPLETED)
        self._forget(handle)
        self._pump()

    def _cancel_pending(self, handle: RunHandle) -> None:
        """Handle-side hook: a PENDING job asked to cancel."""
        if self.scheduler.cancel_queued(handle.job_id):
            self.cancelled += 1
            self._count("session.cancelled", "jobs cancelled")
            handle._transition(RunState.CANCELLED)
            self._forget(handle)
            self._pump()

    def _forget(self, handle: RunHandle) -> None:
        """Drop the runtime's reference; the caller's handle stays valid."""
        if self._handles.pop(handle.job_id, None) is not None:
            self._live -= 1
            if self._live == 0:
                self._idle.set()

    # -- hooks -----------------------------------------------------------------
    def _job_completed(self, handle: RunHandle, result: Any) -> None:
        """Subclass hook, called before the COMPLETED transition."""

    # -- lifecycle -------------------------------------------------------------
    async def drain(self) -> None:
        """Wait until no submitted job remains live (queued or in flight)."""
        await self._idle.wait()

    async def close(self, *, cancel_queued: bool = True) -> None:
        """Cancel what is still queued, wait out what is running, shut down.
        Idempotent."""
        if self._closed:
            return
        if cancel_queued:
            for handle in list(self._handles.values()):
                if handle.state is RunState.PENDING:
                    handle.cancel()
        await self.drain()
        self._closed = True
        self.pool.shutdown()
        self._gauges()

    async def __aenter__(self) -> "AsyncRuntime":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- introspection / metrics -----------------------------------------------
    @property
    def live_jobs(self) -> int:
        """Jobs currently queued or in flight."""
        return self._live

    def _count(self, name: str, help: str) -> None:
        telemetry = obs.current()
        if telemetry is not None:
            telemetry.metrics.counter(name, help).inc()

    def _gauges(self) -> None:
        telemetry = obs.current()
        if telemetry is not None:
            telemetry.metrics.gauge(
                "session.in_flight", "jobs holding pool slots"
            ).set(self.scheduler.total_in_flight)
            telemetry.metrics.gauge(
                "session.queued", "jobs awaiting a fair-share slot"
            ).set(self.scheduler.queued_count())


# -- the scenario front-end ----------------------------------------------------


class AsyncSession(AsyncRuntime):
    """Submit/stream/cancel :class:`Scenario` runs over the worker pool.

    Parameters
    ----------
    slots:
        Worker processes (``None``: all cores).  ``serial=True`` — or
        running inside a pool worker — degrades to inline execution with
        identical results.
    max_in_flight / max_queued:
        Default per-tenant caps; override per tenant via :meth:`tenant`.
    journal:
        A :class:`SweepJournal` (or a path for one): every completed
        scenario is journaled — fsync-ed before the handle resolves — so a
        killed campaign resumes losing only in-flight scenarios.
    ledger:
        A :class:`repro.obs.RunLedger`: the journal (when not explicitly
        given) and the per-job event streams live inside its run
        directory, making the flight recorder the one place to look.
    stream_telemetry:
        Default for ``submit(stream=)``: whether workers stream per-job
        span/metric events for :meth:`RunHandle.stream`.  Off by default —
        a soak run churning thousands of scenarios should not write
        thousands of event files unless asked.
    """

    def __init__(
        self,
        *,
        slots: Optional[int] = None,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_queued: int = DEFAULT_MAX_QUEUED,
        serial: Optional[bool] = None,
        journal: Union[SweepJournal, str, Path, None] = None,
        ledger: Optional["obs.RunLedger"] = None,
        stream_telemetry: bool = False,
    ) -> None:
        super().__init__(
            slots=slots,
            max_in_flight=max_in_flight,
            max_queued=max_queued,
            serial=serial,
        )
        self.ledger = ledger
        self._owns_journal = False
        if journal is None and ledger is not None:
            journal = SweepJournal.in_ledger(ledger)
            self._owns_journal = True
        elif isinstance(journal, (str, Path)):
            journal = SweepJournal(journal)
            self._owns_journal = True
        self.journal: Optional[SweepJournal] = journal
        self.stream_telemetry = bool(stream_telemetry)
        self._spool_tmp: Optional[tempfile.TemporaryDirectory] = None
        if ledger is not None:
            self._spool = Path(ledger.directory) / "streams"
        else:
            self._spool_tmp = tempfile.TemporaryDirectory(prefix="repro-session-")
            self._spool = Path(self._spool_tmp.name)

    def submit(
        self,
        scenario: Scenario,
        *,
        tenant: str = "default",
        stream: Optional[bool] = None,
    ) -> RunHandle:
        """Admit one scenario run; returns its :class:`RunHandle`.

        Raises :class:`AdmissionFull` when the tenant's bounded admission
        queue is at capacity — backpressure the caller must handle.
        """
        stream = self.stream_telemetry if stream is None else bool(stream)
        events_path: Optional[Path] = None
        kwargs: dict[str, Any] = {"scenario": scenario}
        if stream:
            self._spool.mkdir(parents=True, exist_ok=True)
            events_path = self._spool / f"events-{self._seq + 1:06d}.jsonl"
            kwargs["events_path"] = str(events_path)
        return self.submit_job(
            _execute_scenario,
            kwargs,
            tenant=tenant,
            label=f"{scenario.scheduler_name}/n={scenario.n}",
            scenario=scenario,
            events_path=events_path,
        )

    def _job_completed(self, handle: RunHandle, result: Any) -> None:
        if self.journal is not None and handle.scenario is not None:
            self.journal.record(handle.scenario, result, tenant=handle.tenant)

    async def close(self, *, cancel_queued: bool = True) -> None:
        await super().close(cancel_queued=cancel_queued)
        if self.journal is not None and self._owns_journal:
            self.journal.close()
        if self._spool_tmp is not None:
            self._spool_tmp.cleanup()
            self._spool_tmp = None

    async def __aenter__(self) -> "AsyncSession":
        return self


# -- batch adapters ------------------------------------------------------------


def map_tasks(
    fn: Callable[..., Any],
    calls: Sequence[dict],
    *,
    policy: Optional[ExecutionPolicy] = None,
    label: str = "",
) -> list[Any]:
    """:func:`repro.exec.run_tasks` routed through the async runtime.

    Same contract: results ordered like *calls*, failures propagate as the
    original exception, serial fallback inside pool workers and under
    purely in-memory telemetry.  Installed via
    ``ExecutionPolicy(runtime="async")`` — sweeps gain fair-share admission
    and the persistent pool without changing a line.
    """
    from repro.exec.policy import current as current_policy

    policy = policy if policy is not None else current_policy()
    calls = list(calls)
    if not calls:
        return []
    jobs = min(policy.resolved_jobs, len(calls))
    telemetry = obs.current()
    shard_dir = telemetry.shard_dir if telemetry is not None else None
    serial = jobs <= 1 or in_worker() or (telemetry is not None and shard_dir is None)
    for _ in calls:
        policy.stats.count_task(not serial)
    if telemetry is not None and not serial:
        telemetry.flush()  # children must not replay buffered parent records

    async def _run() -> list[Any]:
        async with AsyncRuntime(slots=jobs, serial=serial, max_in_flight=jobs) as runtime:
            handles = []
            for kwargs in calls:
                if shard_dir is not None and not serial:
                    handles.append(
                        runtime.submit_job(
                            _run_sharded,
                            {"fn": fn, "shard_dir": str(shard_dir), "kwargs": kwargs},
                            tenant=label or "batch",
                        )
                    )
                else:
                    handles.append(
                        runtime.submit_job(
                            _execute_call,
                            {"fn": fn, "kwargs": kwargs},
                            tenant=label or "batch",
                        )
                    )
            return [await handle.result() for handle in handles]

    results = asyncio.run(_run())
    if telemetry is not None and shard_dir is not None and not serial:
        _register_shards(telemetry, Path(shard_dir))
    return results


def run_sweep(
    scenarios: Sequence[Scenario],
    *,
    journal_path: Union[str, Path],
    tenant_of: Optional[Callable[[int, Scenario], str]] = None,
    slots: Optional[int] = None,
    serial: Optional[bool] = None,
    max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
    resume: bool = True,
) -> list[dict[str, Any]]:
    """Run a scenario sweep with checkpoint/resume through *journal_path*.

    Returns one journal-shaped record per scenario, in sweep order.  With
    ``resume=True`` (the default) scenarios already journaled at
    *journal_path* are **not** re-run — their journaled records are
    returned — so re-invoking after a kill re-runs exactly the scenarios
    that had not completed.  The journal file ends up holding the union,
    equal (as a completion multiset) to an uninterrupted run's.
    """
    scenarios = list(scenarios)
    if resume:
        plan = SweepJournal.plan(journal_path, scenarios)
    else:
        plan = ResumePlan(done={}, pending=tuple(enumerate(scenarios)))
    results: dict[int, dict[str, Any]] = dict(plan.done)

    async def _run() -> None:
        journal = SweepJournal(journal_path)
        try:
            async with AsyncSession(
                slots=slots,
                serial=serial,
                journal=journal,
                max_in_flight=max_in_flight,
            ) as session:
                handles = {
                    index: session.submit(
                        scenario,
                        tenant=tenant_of(index, scenario) if tenant_of else "default",
                    )
                    for index, scenario in plan.pending
                }
                for index, handle in handles.items():
                    result = await handle.result()
                    results[index] = {
                        "v": 1,
                        "hash": handle.scenario.content_hash(),
                        "tenant": handle.tenant,
                        "scheduler": handle.scenario.scheduler_name,
                        "n": handle.scenario.n,
                        "seed": handle.scenario.seed,
                        "gflops": result.gflops,
                        "elapsed": result.elapsed,
                        "degraded": None
                        if result.degraded is None
                        else str(result.degraded),
                    }
        finally:
            journal.close()

    if plan.pending:
        asyncio.run(_run())
    return [results[index] for index in range(len(scenarios))]
