"""The :class:`Scenario` description: one experiment, fully validated.

A :class:`Scenario` is a frozen, keyword-only description of one Linpack
experiment — which scheduler maps it (a :mod:`repro.sched` registry name,
legacy configuration key, or :class:`~repro.sched.base.Scheduler`
instance), the problem order, the machine it runs over, the variability and
fault schedule it meets, and the seeds that make all of it reproducible.

With no explicit ``scheduler=``, the ambient :func:`repro.sched.use`
context decides (defaulting to the paper's full adaptive framework).  Every
knob is validated at construction time (unknown schedulers, DAG-only
schedulers and typo'd ``overrides`` keys raise immediately, with the valid
names in the message), so a scenario that constructs is a scenario that
runs.

``configuration=`` is the deprecated spelling of ``scheduler=`` from before
the registry existed; it still works — legacy keys like ``"acmlg_both"``
resolve to the same builds, byte for byte — but emits a
:class:`DeprecationWarning` with the migration note.

Execution lives next door: :mod:`repro.session.sync` for the one-shot
blocking :class:`~repro.session.Session`, :mod:`repro.session.runtime` for
the asyncio multi-tenant front-end.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Mapping, Optional, Union

from repro.faults.spec import FaultSpec
from repro.hpl.driver import (
    Configuration,
    resolve_hpl_build,
    single_element_cluster,
    validate_overrides,
)
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.presets import STANDARD_CLOCK_MHZ
from repro.machine.variability import VariabilitySpec
from repro.sched.base import Scheduler
from repro.util.validation import require, require_positive

__all__ = ["Scenario", "SchedulerSpec"]

#: A scheduler spec: registry name, legacy configuration key, or instance.
SchedulerSpec = Union[str, Configuration, Scheduler]


@dataclass(frozen=True, kw_only=True)
class Scenario:
    """One Linpack experiment, fully described and validated up front.

    With no ``cluster``, the run uses the single-element Section VI.B
    testbed (built from ``gpu_clock_mhz`` / ``variability`` /
    ``cluster_seed``).  Passing an explicit ``cluster`` means the machine is
    already fully specified — combining it with ``gpu_clock_mhz`` or
    ``variability`` is rejected rather than silently ignored.

    ``scheduler`` accepts any HPL-capable spec and defaults to the ambient
    :func:`repro.sched.current` one.  ``configuration`` is the deprecated
    alias; passing it warns and folds into ``scheduler`` (the field then
    reads ``None``, so ``dataclasses.replace`` on a parsed scenario never
    re-warns).
    """

    scheduler: Optional[SchedulerSpec] = None
    n: int
    cluster: Optional[Cluster] = None
    grid: "ProcessGrid | tuple[int, int]" = (1, 1)
    gpu_clock_mhz: float = STANDARD_CLOCK_MHZ
    variability: Optional[VariabilitySpec] = None
    seed: int = 7
    cluster_seed: int = 2009
    faults: Optional[FaultSpec] = None
    overrides: Optional[Mapping] = None
    collect_steps: bool = False
    #: Deprecated alias of ``scheduler`` (pre-registry API); warns on use.
    configuration: Optional[SchedulerSpec] = None

    def __post_init__(self) -> None:
        require_positive(self.n, "n")
        scheduler = self.scheduler
        if self.configuration is not None:
            warnings.warn(
                "Scenario(configuration=...) is deprecated; pass "
                "scheduler=... instead (legacy configuration keys like "
                "'acmlg_both' are accepted unchanged). See docs/scheduling.md.",
                DeprecationWarning,
                stacklevel=3,
            )
            require(
                scheduler is None,
                "pass either scheduler= or the deprecated configuration=, not both",
            )
            scheduler = self.configuration
            object.__setattr__(self, "configuration", None)
        if scheduler is None:
            from repro import sched

            scheduler = sched.current()
        # Validates the spec and rejects DAG-only schedulers up front.
        resolve_hpl_build(scheduler)
        object.__setattr__(self, "scheduler", scheduler)
        validate_overrides(dict(self.overrides) if self.overrides else None)
        if not isinstance(self.grid, ProcessGrid):
            nprow, npcol = self.grid
            object.__setattr__(self, "grid", ProcessGrid(nprow, npcol))
        if self.cluster is not None:
            require(
                self.variability is None
                and self.gpu_clock_mhz == STANDARD_CLOCK_MHZ,
                "an explicit cluster already fixes the machine; do not also "
                "pass gpu_clock_mhz or variability",
            )

    @property
    def scheduler_name(self) -> str:
        """The scheduler's name, preserving legacy alias spellings."""
        if isinstance(self.scheduler, Scheduler):
            return self.scheduler.name
        return str(self.scheduler)

    def build_cluster(self) -> Cluster:
        """The cluster this scenario runs over (building the default lazily)."""
        if self.cluster is not None:
            return self.cluster
        return single_element_cluster(
            self.gpu_clock_mhz, self.variability, seed=self.cluster_seed
        )

    def content_hash(self) -> str:
        """A short stable digest of this scenario's full description.

        Run ledgers record it in their manifest so two runs are comparable
        exactly when their hashes match; it deliberately excludes the code
        version (the manifest carries that separately).  The scheduler
        enters by name — legacy spellings hash as they always did — so a
        :class:`Scheduler` instance with in-run learned state hashes like a
        fresh one of its kind.  An explicit cluster enters through
        :meth:`repro.machine.cluster.Cluster.content_key` (spec digest +
        seed), so the hash is stable across processes and two different
        machine presets with otherwise-equal scenario fields never collide.
        """
        import hashlib

        from repro.exec.cache import canonical_json

        payload = {
            "configuration": self.scheduler_name,
            "n": self.n,
            "cluster": None if self.cluster is None else self.cluster.content_key(),
            "grid": (self.grid.nprow, self.grid.npcol),
            "gpu_clock_mhz": self.gpu_clock_mhz,
            "variability": self.variability,
            "seed": self.seed,
            "cluster_seed": self.cluster_seed,
            "faults": self.faults,
            "overrides": dict(self.overrides) if self.overrides else None,
        }
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:16]
