"""repro — reproduction of "Adaptive Optimization for Petascale Heterogeneous
CPU/GPU Computing" (Yang et al., CLUSTER 2010): the TianHe-1 Linpack.

The package implements the paper's two contributions — two-level adaptive
CPU/GPU task mapping and software pipelining of the GPU task queue — plus
every substrate they ran on, as a calibrated simulation:

* :mod:`repro.sim` — discrete-event simulation kernel (virtual clock).
* :mod:`repro.machine` — TianHe-1 hardware models: CPU cores, RV770 GPUs,
  the two-hop PCIe path, compute elements, cabinets, the full cluster,
  QDR InfiniBand, power, and run-time variability.
* :mod:`repro.blas` — real numeric DGEMM/DTRSM/LU kernels (numpy-backed).
* :mod:`repro.core` — the contribution: split databases, the adaptive
  mapper, static and Qilin-style baselines, task queues with bounce-corner-
  turn ordering, and the CT/NT software pipeline.
* :mod:`repro.mpi` — simulated MPI (point-to-point, collectives, groups).
* :mod:`repro.hpl` — High-Performance Linpack: block-cyclic grids, a
  numeric distributed LU that passes the official residual test, and the
  vectorized analytic stepper that reproduces the petascale figures.
* :mod:`repro.model` — closed-form performance models and every number the
  paper states (:mod:`repro.model.calibration`).
* :mod:`repro.bench` — generators for each of the paper's tables/figures.

Quick start — describe a Linpack run as a :class:`~repro.session.Scenario`
and execute it::

    from repro import Scenario, Session

    result = Session(Scenario(scheduler="acmlg_both", n=40000)).run()
    print(f"{result.gflops:.1f} GFLOPS")

and the same run under an injected mid-run GPU thermal throttle::

    from repro import FaultSpec, GpuThrottle

    faulted = Scenario(scheduler="acmlg_both", n=40000,
                       faults=FaultSpec(throttles=(GpuThrottle(at=20.0,
                                        recovery_s=10.0),)))
    result = Session(faulted).run()
    print(result.degraded.describe())
"""

from repro.core.adaptive import AdaptiveMapper, Observation
from repro.core.hybrid_dgemm import HybridDgemm, HybridDgemmResult, cpu_only_dgemm
from repro.core.pipeline import SoftwarePipeline, SyncExecutor
from repro.core.qilin import QilinMapper
from repro.core.static_map import StaticMapper
from repro.core.taskqueue import build_task_queue
from repro.faults import (
    NO_FAULTS,
    DegradedMode,
    FaultInjector,
    FaultSpec,
    GpuDropout,
    GpuThrottle,
    PcieFaultSpec,
    PcieTransferError,
    Straggler,
)
from repro.hpl.analytic import AnalyticConfig, AnalyticHpl
from repro.hpl.driver import (
    CONFIGURATIONS,
    Configuration,
    LinpackResult,
    run_linpack,
    run_linpack_element,
    single_element_cluster,
)
from repro.hpl.grid import BlockCyclic, ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.node import ComputeElement, Node
from repro.machine.power import TIANHE1_POWER, PowerModel
from repro.machine.presets import (
    DOWNCLOCKED_MHZ,
    STANDARD_CLOCK_MHZ,
    tianhe1_cluster,
    tianhe1_element,
    tianhe1_node,
)
from repro.machine.variability import NO_VARIABILITY, VariabilitySpec
from repro.mpi.comm import SimComm, SimMPI
from repro.session import Scenario, Session
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "AdaptiveMapper",
    "Observation",
    "HybridDgemm",
    "HybridDgemmResult",
    "cpu_only_dgemm",
    "SoftwarePipeline",
    "SyncExecutor",
    "QilinMapper",
    "StaticMapper",
    "build_task_queue",
    "AnalyticConfig",
    "AnalyticHpl",
    "CONFIGURATIONS",
    "Configuration",
    "LinpackResult",
    "Scenario",
    "Session",
    "run_linpack",
    "run_linpack_element",
    "single_element_cluster",
    "FaultSpec",
    "FaultInjector",
    "GpuThrottle",
    "GpuDropout",
    "Straggler",
    "PcieFaultSpec",
    "PcieTransferError",
    "DegradedMode",
    "NO_FAULTS",
    "BlockCyclic",
    "ProcessGrid",
    "Cluster",
    "ComputeElement",
    "Node",
    "PowerModel",
    "TIANHE1_POWER",
    "tianhe1_cluster",
    "tianhe1_element",
    "tianhe1_node",
    "STANDARD_CLOCK_MHZ",
    "DOWNCLOCKED_MHZ",
    "VariabilitySpec",
    "NO_VARIABILITY",
    "SimMPI",
    "SimComm",
    "Simulator",
    "__version__",
]
