"""Numeric kernels: the BLAS3/LAPACK subset HPL is built from.

These run real float64 math with numpy (which is the only "vendor library"
available here); the simulator charges their *time* to the modeled devices.
The subset is exactly what the paper's Linpack uses:

* :func:`~repro.blas.dgemm.dgemm` — C = alpha*A@B + beta*C, the kernel that
  "dominates the computation time of HPL";
* :func:`~repro.blas.dtrsm.dtrsm` — triangular solve with multiple RHS
  (the U-panel update);
* :func:`~repro.blas.dgetrf.dgetf2` / :func:`~repro.blas.dgetrf.dgetrf` —
  unblocked panel and blocked right-looking LU with partial pivoting;
* :func:`~repro.blas.dlaswp.dlaswp` — pivot row interchanges.

:mod:`repro.blas.reference` holds naive implementations used only by tests.
"""

from repro.blas.dgemm import dgemm, split_rows
from repro.blas.dtrsm import dtrsm
from repro.blas.dgetrf import dgetf2, dgetrf
from repro.blas.dlaswp import dlaswp

__all__ = ["dgemm", "split_rows", "dtrsm", "dgetf2", "dgetrf", "dlaswp"]
