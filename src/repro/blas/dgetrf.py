"""LU factorization with partial pivoting: unblocked panel + blocked driver.

:func:`dgetf2` is the unblocked "panel" factorization HPL performs on the
current NB-wide column block (CPU work, not offloaded); :func:`dgetrf` is the
blocked right-looking algorithm whose trailing update is the DGEMM that the
paper offloads to GPUs.  Both store L (unit lower) and U packed in-place,
returning 0-based absolute pivot indices.
"""

from __future__ import annotations

import numpy as np

from repro.blas.dgemm import dgemm
from repro.blas.dlaswp import dlaswp
from repro.blas.dtrsm import dtrsm
from repro.util.validation import require


class SingularMatrixError(RuntimeError):
    """A zero pivot was encountered; the matrix is (numerically) singular."""


def dgetf2(a: np.ndarray, offset: int = 0) -> np.ndarray:
    """Unblocked LU with partial pivoting on the m x n panel *a*, in place.

    Returns absolute pivot row indices (0-based, relative to the panel's own
    rows plus *offset* so callers embedding the panel in a larger matrix get
    global indices directly).
    """
    require(a.ndim == 2, "panel must be 2-D")
    m, n = a.shape
    piv = np.empty(min(m, n), dtype=np.int64)
    for j in range(min(m, n)):
        # Partial pivoting: the largest |value| in the remaining column.
        p = j + int(np.argmax(np.abs(a[j:, j])))
        if a[p, j] == 0.0:
            raise SingularMatrixError(f"zero pivot in column {j}")
        piv[j] = p + offset
        if p != j:
            a[[j, p], :] = a[[p, j], :]
        # Scale the multipliers and rank-1 update the trailing panel.
        a[j + 1 :, j] /= a[j, j]
        if j + 1 < n:
            a[j + 1 :, j + 1 :] -= np.outer(a[j + 1 :, j], a[j, j + 1 :])
    return piv


def dgetrf(a: np.ndarray, nb: int = 64) -> np.ndarray:
    """Blocked right-looking LU with partial pivoting, in place.

    The loop body mirrors one HPL iteration: factor the current panel
    (:func:`dgetf2`), apply its pivots across the full width
    (:func:`~repro.blas.dlaswp.dlaswp`), solve for the U block row
    (:func:`~repro.blas.dtrsm.dtrsm`), then the trailing DGEMM update —
    "the matrix update step ... an O(N^3) operation" the paper accelerates.
    """
    require(a.ndim == 2, "A must be 2-D")
    require(nb >= 1, "nb must be >= 1")
    m, n = a.shape
    piv = np.empty(min(m, n), dtype=np.int64)
    for j in range(0, min(m, n), nb):
        jb = min(nb, min(m, n) - j)
        # Factor the m-j x jb panel; pivots are global row indices.
        panel_piv = dgetf2(a[j:, j : j + jb], offset=j)
        piv[j : j + jb] = panel_piv
        # Apply the interchanges to the columns left and right of the panel.
        rel = panel_piv  # absolute already
        if j > 0:
            dlaswp(a[:, :j], rel, offset=j)
        if j + jb < n:
            dlaswp(a[:, j + jb :], rel, offset=j)
            # U block row: solve L11 U12 = A12.
            dtrsm(a[j : j + jb, j : j + jb], a[j : j + jb, j + jb :], side="left",
                  uplo="lower", unit_diag=True)
            # Trailing update: A22 -= L21 @ U12  (the offloadable DGEMM).
            if j + jb < m:
                dgemm(-1.0, a[j + jb :, j : j + jb], a[j : j + jb, j + jb :],
                      beta=1.0, c=a[j + jb :, j + jb :])
    return piv


def lu_solve(a_factored: np.ndarray, piv: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` given the in-place LU factors and pivots.

    *b* may be a vector or matrix of right-hand sides; returns the solution
    (a fresh array).
    """
    require(a_factored.shape[0] == a_factored.shape[1], "A must be square")
    x = np.array(b, dtype=np.float64, copy=True)
    vector = x.ndim == 1
    if vector:
        x = x.reshape(-1, 1)
    require(x.shape[0] == a_factored.shape[0], "b has wrong length")
    dlaswp(x, piv)
    dtrsm(a_factored, x, side="left", uplo="lower", unit_diag=True)
    dtrsm(a_factored, x, side="left", uplo="upper", unit_diag=False)
    return x.ravel() if vector else x
