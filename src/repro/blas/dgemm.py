"""DGEMM: general matrix-matrix multiply, plus row-partitioning helpers.

``C = alpha * A @ B + beta * C`` — the Level-3 BLAS operation the paper's
whole framework is built to accelerate (Section IV.C).  The hybrid executor
partitions A by rows between GPU and CPU cores (Fig. 3:
``A = A1 ∪ A2`` with ``M = M1 + M2``); :func:`split_rows` computes those row
counts from split fractions, guaranteeing they sum to M exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.util.validation import require


def dgemm(
    alpha: float,
    a: np.ndarray,
    b: np.ndarray,
    beta: float = 0.0,
    c: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Compute ``alpha * a @ b + beta * c`` in float64.

    When *c* is provided it is updated **in place** and returned (matching
    BLAS semantics); otherwise a fresh array is returned and *beta* must be 0.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    require(a.ndim == 2 and b.ndim == 2, "dgemm operates on 2-D matrices")
    require(a.shape[1] == b.shape[0], f"inner dimensions differ: {a.shape} x {b.shape}")
    if c is None:
        require(beta == 0.0, "beta != 0 requires an input C")
        return alpha * (a @ b)
    require(isinstance(c, np.ndarray) and c.dtype == np.float64, "C must be a float64 ndarray")
    require(c.shape == (a.shape[0], b.shape[1]), f"C has shape {c.shape}, expected {(a.shape[0], b.shape[1])}")
    if beta == 0.0:
        np.matmul(a, b, out=c)
        if alpha != 1.0:
            c *= alpha
    elif beta == 1.0 and alpha == 1.0:
        c += a @ b
    else:
        c *= beta
        c += alpha * (a @ b)
    return c


def split_rows(m: int, fractions: Sequence[float]) -> list[int]:
    """Partition *m* rows according to *fractions* (which must sum to ~1).

    Uses largest-remainder rounding so the parts always sum to exactly *m*
    and no part is negative.  This is how both mapper levels convert split
    fractions (GSplit, CSplit_i) into row counts.
    """
    require(m >= 0, "m must be >= 0")
    fracs = [float(f) for f in fractions]
    require(len(fracs) >= 1, "need at least one fraction")
    require(all(f >= 0 for f in fracs), f"fractions must be >= 0, got {fracs}")
    total = sum(fracs)
    require(abs(total - 1.0) < 1e-6, f"fractions must sum to 1, got {total}")
    raw = [f * m for f in fracs]
    counts = [int(np.floor(r)) for r in raw]
    shortfall = m - sum(counts)
    # Distribute leftover rows to the largest fractional remainders.
    remainders = sorted(range(len(fracs)), key=lambda i: raw[i] - counts[i], reverse=True)
    for i in range(shortfall):
        counts[remainders[i % len(fracs)]] += 1
    return counts
