"""DTRSM: triangular solve with multiple right-hand sides.

HPL uses the ``side='left', uplo='lower', trans='N', diag='unit'`` case to
compute ``U = L^-1 * B`` after each panel factorization, and the upper
variants in the final back-substitution.  Implemented as blocked forward/
backward substitution so the inner work is numpy matmuls.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require

_DEFAULT_BLOCK = 64


def dtrsm(
    a: np.ndarray,
    b: np.ndarray,
    side: str = "left",
    uplo: str = "lower",
    unit_diag: bool = False,
    block: int = _DEFAULT_BLOCK,
) -> np.ndarray:
    """Solve ``op(A) X = B`` (side='left') or ``X op(A) = B`` (side='right').

    *A* is triangular as described by *uplo*; *B* is overwritten with the
    solution and returned.  Only the cases HPL needs are implemented.
    """
    require(side in ("left", "right"), f"side must be left/right, got {side!r}")
    require(uplo in ("lower", "upper"), f"uplo must be lower/upper, got {uplo!r}")
    require(a.ndim == 2 and a.shape[0] == a.shape[1], "A must be square")
    require(b.ndim == 2, "B must be 2-D")
    require(block >= 1, "block must be >= 1")
    n = a.shape[0]
    if side == "left":
        require(b.shape[0] == n, f"B rows {b.shape[0]} != A order {n}")
    else:
        require(b.shape[1] == n, f"B cols {b.shape[1]} != A order {n}")
    if n == 0 or b.size == 0:
        return b

    if side == "left" and uplo == "lower":
        _solve_lower_left(a, b, unit_diag, block)
    elif side == "left" and uplo == "upper":
        _solve_upper_left(a, b, unit_diag, block)
    elif side == "right" and uplo == "upper":
        # X U = B  <=>  U^T X^T = B^T: reuse the lower-left path on transposes.
        bt = np.ascontiguousarray(b.T)
        _solve_lower_left(a.T, bt, unit_diag, block)
        b[...] = bt.T
    else:  # side == "right" and uplo == "lower"
        bt = np.ascontiguousarray(b.T)
        _solve_upper_left(a.T, bt, unit_diag, block)
        b[...] = bt.T
    return b


def _solve_diag_lower(a: np.ndarray, b: np.ndarray, unit_diag: bool) -> None:
    """Unblocked forward substitution on a small diagonal block."""
    n = a.shape[0]
    for i in range(n):
        if i > 0:
            b[i, :] -= a[i, :i] @ b[:i, :]
        if not unit_diag:
            b[i, :] /= a[i, i]


def _solve_diag_upper(a: np.ndarray, b: np.ndarray, unit_diag: bool) -> None:
    """Unblocked backward substitution on a small diagonal block."""
    n = a.shape[0]
    for i in range(n - 1, -1, -1):
        if i < n - 1:
            b[i, :] -= a[i, i + 1 :] @ b[i + 1 :, :]
        if not unit_diag:
            b[i, :] /= a[i, i]


def _solve_lower_left(a: np.ndarray, b: np.ndarray, unit_diag: bool, block: int) -> None:
    n = a.shape[0]
    for start in range(0, n, block):
        stop = min(start + block, n)
        if start > 0:
            b[start:stop, :] -= a[start:stop, :start] @ b[:start, :]
        _solve_diag_lower(a[start:stop, start:stop], b[start:stop, :], unit_diag)


def _solve_upper_left(a: np.ndarray, b: np.ndarray, unit_diag: bool, block: int) -> None:
    n = a.shape[0]
    starts = list(range(0, n, block))
    for start in reversed(starts):
        stop = min(start + block, n)
        if stop < n:
            b[start:stop, :] -= a[start:stop, stop:] @ b[stop:, :]
        _solve_diag_upper(a[start:stop, start:stop], b[start:stop, :], unit_diag)
