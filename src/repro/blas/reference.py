"""Naive reference implementations, used only by the test suite.

Deliberately simple O(n^3) loops and unblocked algorithms: slow, obviously
correct, and independent of the production code paths they validate.
"""

from __future__ import annotations

import numpy as np


def naive_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Triple-loop matrix multiply (no numpy matmul)."""
    m, k = a.shape
    k2, n = b.shape
    assert k == k2
    out = np.zeros((m, n))
    for i in range(m):
        for j in range(n):
            acc = 0.0
            for p in range(k):
                acc += a[i, p] * b[p, j]
            out[i, j] = acc
    return out


def naive_lower_solve(l: np.ndarray, b: np.ndarray, unit_diag: bool) -> np.ndarray:
    """Column-by-column forward substitution."""
    n = l.shape[0]
    x = b.astype(np.float64).copy()
    for col in range(x.shape[1]):
        for i in range(n):
            for j in range(i):
                x[i, col] -= l[i, j] * x[j, col]
            if not unit_diag:
                x[i, col] /= l[i, i]
    return x


def naive_upper_solve(u: np.ndarray, b: np.ndarray, unit_diag: bool) -> np.ndarray:
    """Column-by-column backward substitution."""
    n = u.shape[0]
    x = b.astype(np.float64).copy()
    for col in range(x.shape[1]):
        for i in range(n - 1, -1, -1):
            for j in range(i + 1, n):
                x[i, col] -= u[i, j] * x[j, col]
            if not unit_diag:
                x[i, col] /= u[i, i]
    return x


def extract_lu(a_factored: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unpack the in-place LU storage into explicit (L, U) factors."""
    n, m = a_factored.shape
    k = min(n, m)
    l = np.tril(a_factored[:, :k], -1) + np.eye(n, k)
    u = np.triu(a_factored[:k, :])
    return l, u


def hpl_residual(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """The HPL correctness metric: ||Ax-b||_inf / (eps * (||A||_inf ||x||_inf + ||b||_inf) * n).

    HPL accepts a solve when this is O(1) (the official threshold is 16).
    """
    n = a.shape[0]
    r = a @ x - b
    eps = np.finfo(np.float64).eps
    denom = eps * (np.linalg.norm(a, np.inf) * np.linalg.norm(x, np.inf) + np.linalg.norm(b, np.inf)) * n
    return float(np.linalg.norm(r, np.inf) / denom)
