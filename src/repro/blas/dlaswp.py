"""DLASWP: apply a sequence of row interchanges.

LU with partial pivoting records, for each factored column ``i``, the row
``piv[i]`` that was swapped into position ``i``.  The swaps must be applied
*sequentially* (each may refer to rows moved by earlier swaps), exactly as
LAPACK's DLASWP does.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require


def dlaswp(a: np.ndarray, piv: np.ndarray, offset: int = 0) -> np.ndarray:
    """Swap row ``offset + i`` with row ``piv[i]`` for each i, in order.

    *piv* holds absolute row indices into *a* (LAPACK ipiv converted to
    0-based).  Returns *a*, modified in place.
    """
    require(a.ndim == 2, "A must be 2-D")
    piv = np.asarray(piv)
    for i, p in enumerate(piv):
        row = offset + i
        require(0 <= p < a.shape[0], f"pivot {p} out of range for {a.shape[0]} rows")
        if p != row:
            a[[row, p], :] = a[[p, row], :]
    return a


def invert_permutation(piv: np.ndarray, n: int, offset: int = 0) -> np.ndarray:
    """The permutation vector ``perm`` such that ``A_factored = A[perm]``.

    Useful for verifying ``P A = L U``: applying :func:`dlaswp` to
    ``arange(n)`` yields the row ordering the factorization used.
    """
    perm = np.arange(n).reshape(n, 1)
    dlaswp(perm, piv, offset=offset)
    return perm.ravel()
