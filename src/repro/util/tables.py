"""Plain-text table rendering for benchmark reports.

The benchmark harness regenerates each of the paper's figures as a text table
(series per column); keeping the renderer here lets benchmarks, examples and
EXPERIMENTS.md share one format.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class TextTable:
    """Accumulates rows and renders an aligned monospace table."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        if not headers:
            raise ValueError("TextTable needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append one row; cells are formatted with ``str`` (floats get %.4g)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([self._fmt(c) for c in cells])

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(*row)

    @staticmethod
    def _fmt(cell: Any) -> str:
        if isinstance(cell, bool) or cell is None:
            return str(cell)
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        """Render the table as an aligned string (no trailing newline)."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
