"""Small argument-validation helpers.

The simulator is configuration-heavy (hardware specs, HPL parameters, mapper
settings); validating eagerly at construction time turns silent
mis-calibrations into immediate, named errors.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> float:
    """Validate that *value* is strictly positive; returns it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_nonnegative(value: float, name: str) -> float:
    """Validate that *value* is >= 0; returns it for chaining."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_fraction(value: float, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def require_int(value: Any, name: str) -> int:
    """Validate that *value* is an integral number (bool excluded)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    return value
