"""Units and workload arithmetic used throughout the reproduction.

All quantities inside the simulator use SI base units: bytes, flops and
seconds.  Rates are flops/second (so ``240 * GFLOPS`` is the RV770 peak) and
bandwidths are bytes/second.  The helpers here centralise the handful of
closed-form workload formulas the paper relies on:

* DGEMM on ``A[M,K] @ B[K,N]`` costs ``2*M*N*K`` flops (multiply+add).
* Linpack/HPL on an ``N x N`` system costs ``(2/3)N^3 + 2N^2`` flops -- the
  canonical figure the Top500 divides wall time into.
"""

from __future__ import annotations

# Byte units (decimal, matching vendor bandwidth specs such as "500 MBps").
KB: float = 1e3
MB: float = 1e6
GB: float = 1e9

# Flop units.
GFLOP: float = 1e9
TFLOP: float = 1e12

# Rate units (flops per second).
GFLOPS: float = 1e9
TFLOPS: float = 1e12

#: Size of one IEEE-754 double, the only element type HPL uses.
DOUBLE_BYTES: int = 8


def dgemm_flops(m: int, n: int, k: int) -> float:
    """Flop count of ``C[m,n] += A[m,k] @ B[k,n]`` (fused multiply-add = 2 flops).

    This is the workload ``W`` the paper's adaptive mapper indexes its
    ``database_g`` by (Section IV.C: "the float-point operation counts of the
    matrix-matrix multiply operation").
    """
    if m < 0 or n < 0 or k < 0:
        raise ValueError(f"matrix dimensions must be non-negative, got {(m, n, k)}")
    return 2.0 * m * n * k


def lu_flops(n: int) -> float:
    """Canonical HPL flop count for an ``n x n`` solve: ``2/3 n^3 + 2 n^2``.

    The paper quotes the workload as ``(2/3)N^3 + O(N^2)``; the Top500 rules
    fix the lower-order term at ``2 N^2`` (LU plus two triangular solves).
    """
    if n < 0:
        raise ValueError(f"matrix order must be non-negative, got {n}")
    return (2.0 / 3.0) * n**3 + 2.0 * n**2


def matrix_bytes(rows: int, cols: int, elem_bytes: int = DOUBLE_BYTES) -> int:
    """Storage footprint of a dense ``rows x cols`` matrix."""
    if rows < 0 or cols < 0:
        raise ValueError(f"matrix dimensions must be non-negative, got {(rows, cols)}")
    return rows * cols * elem_bytes


def _fmt_scaled(value: float, steps: list[tuple[float, str]], unit: str) -> str:
    for scale, prefix in steps:
        if abs(value) >= scale:
            return f"{value / scale:.3g} {prefix}{unit}"
    return f"{value:.3g} {unit}"


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count (decimal prefixes, like bandwidth specs)."""
    return _fmt_scaled(float(nbytes), [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")], "B")


def fmt_flops(flops: float) -> str:
    """Human-readable flop count."""
    return _fmt_scaled(float(flops), [(1e15, "P"), (1e12, "T"), (1e9, "G"), (1e6, "M")], "flop")


def fmt_rate(flops_per_s: float) -> str:
    """Human-readable compute rate, e.g. ``196.7 GFLOPS``."""
    value = float(flops_per_s)
    for scale, prefix in [(1e15, "P"), (1e12, "T"), (1e9, "G"), (1e6, "M")]:
        if abs(value) >= scale:
            return f"{value / scale:.4g} {prefix}FLOPS"
    return f"{value:.4g} FLOPS"


def fmt_time(seconds: float) -> str:
    """Human-readable duration."""
    s = float(seconds)
    if s < 0:
        return "-" + fmt_time(-s)
    if s < 1e-6:
        return f"{s * 1e9:.3g} ns"
    if s < 1e-3:
        return f"{s * 1e6:.3g} us"
    if s < 1.0:
        return f"{s * 1e3:.3g} ms"
    if s < 120.0:
        return f"{s:.3g} s"
    if s < 7200.0:
        return f"{s / 60.0:.3g} min"
    return f"{s / 3600.0:.3g} h"
