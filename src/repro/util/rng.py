"""Deterministic random-number plumbing.

Every stochastic effect in the simulation (per-core jitter, per-element
manufacturing spread, thermal events) draws from a named child stream of one
root seed so that whole-cluster runs are reproducible bit-for-bit and
individual components can be re-seeded in isolation for tests.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStream:
    """A named, hierarchical random stream.

    ``RngStream(seed).child("node3").child("core1")`` always yields the same
    generator for the same seed and path, independently of creation order —
    unlike ``Generator.spawn``, which is order-sensitive.
    """

    def __init__(self, seed: int, path: tuple[str, ...] = ()) -> None:
        self.seed = int(seed)
        self.path = tuple(path)

    def child(self, name: str) -> "RngStream":
        """Derive a sub-stream identified by *name*."""
        return RngStream(self.seed, self.path + (str(name),))

    def generator(self) -> np.random.Generator:
        """Materialise a numpy generator for this stream."""
        digest = hashlib.sha256(
            (str(self.seed) + "/" + "/".join(self.path)).encode()
        ).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self.seed}, path={'/'.join(self.path) or '<root>'})"


def spawn_rngs(seed: int, names: list[str]) -> dict[str, np.random.Generator]:
    """Materialise one generator per *name*, all derived from *seed*."""
    root = RngStream(seed)
    return {name: root.child(name).generator() for name in names}


def derive_seed(seed: int, *path: str) -> int:
    """A stable integer sub-seed for the stream ``seed/path[0]/path[1]/...``.

    This is :class:`RngStream`'s hashing scheme exposed as a plain integer,
    for call sites that need to *hand off* a seed (a worker process, a
    :class:`~repro.session.Scenario`) rather than a generator.  Same seed and
    path always yield the same value, independent of process or platform.
    """
    stream = RngStream(seed, tuple(str(p) for p in path))
    digest = hashlib.sha256(
        (str(stream.seed) + "/" + "/".join(stream.path)).encode()
    ).digest()
    return int.from_bytes(digest[:8], "little")
