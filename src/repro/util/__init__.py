"""Shared utilities: units, validation, RNG plumbing, and table rendering.

These helpers are deliberately dependency-light; everything else in
:mod:`repro` builds on them.
"""

from repro.util.units import (
    KB,
    MB,
    GB,
    GFLOP,
    TFLOP,
    GFLOPS,
    TFLOPS,
    DOUBLE_BYTES,
    dgemm_flops,
    lu_flops,
    matrix_bytes,
    fmt_bytes,
    fmt_flops,
    fmt_rate,
    fmt_time,
)
from repro.util.validation import (
    require,
    require_positive,
    require_nonnegative,
    require_fraction,
    require_int,
)
from repro.util.rng import RngStream, spawn_rngs
from repro.util.tables import TextTable

__all__ = [
    "KB",
    "MB",
    "GB",
    "GFLOP",
    "TFLOP",
    "GFLOPS",
    "TFLOPS",
    "DOUBLE_BYTES",
    "dgemm_flops",
    "lu_flops",
    "matrix_bytes",
    "fmt_bytes",
    "fmt_flops",
    "fmt_rate",
    "fmt_time",
    "require",
    "require_positive",
    "require_nonnegative",
    "require_fraction",
    "require_int",
    "RngStream",
    "spawn_rngs",
    "TextTable",
]
