"""Atomic file writes shared across the repo.

Every durable artifact — mapper databases, bench reports, cached scenario
results, ``BENCH_perf.json`` — goes through :func:`atomic_write_text`: the
payload lands in a ``mkstemp`` file in the destination directory and is then
``os.replace``-d over the target, so a crash mid-write leaves either the old
file or the new one, never a truncated hybrid.  (This is the pattern
:func:`repro.core.persistence.save_mapper` established; it lives here so the
bench harness and the result cache reuse it instead of re-growing their own.)
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write *text* to *path* atomically (same-directory temp + ``os.replace``).

    The temporary file inherits the destination directory so the final
    ``os.replace`` is a same-filesystem rename (the only rename POSIX makes
    atomic).  On any failure the temp file is removed and the original
    *path* — if it existed — is untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent if str(path.parent) else ".",
        prefix=f".{path.name}.",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path
