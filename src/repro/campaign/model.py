"""Campaigns as data: a scenario matrix that expands deterministically.

A :class:`Campaign` is the declarative layer the ROADMAP's "hpcbench-style
campaign engine" item asks for: one frozen object describing a *matrix* of
experiments — problem sizes x machine presets x schedulers x broadcast
algorithms x fault models x repetitions — that :meth:`Campaign.expand`
turns into a flat, ordered, duplicate-free tuple of :class:`CampaignCell`
objects.  Every cell knows how to build its :class:`~repro.session.Scenario`
and how to key itself into the content-addressed result cache.

Determinism is the contract (pinned by ``tests/campaign/test_properties.py``):

* expansion iterates the axes in one canonical order (machine, scheduler,
  n, grid, bcast, fault, rep) regardless of how the campaign was declared,
  so :meth:`Campaign.from_dict` yields the same cells for any permutation
  of the matrix keys;
* per-cell seeds derive from the campaign seed and the cell's *semantic*
  coordinates (:func:`repro.util.rng.derive_seed`), never from its position,
  so adding a size to the matrix does not re-seed the existing cells;
* cell cache keys include the **machine preset identity** (spec digest +
  cluster seed, see :meth:`MachinePreset.identity`) alongside the scenario
  hash — two presets with otherwise-equal scenario fields can never alias
  a cache entry (``tests/campaign/test_cache_key.py`` pins the collision).

Machine presets cover both the paper's TianHe-1 (element / cabinet / full
system) and a Frontier-style exascale node (PAPERS.md, arXiv 2304.10397);
fault models are named, data-only recipes ("stragglers-2pct") expanded
against the preset's element population at scenario-build time.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.exec.cache import canonical_json, scenario_key
from repro.faults.spec import FaultSpec, GpuDropout, GpuThrottle, Straggler
from repro.machine.cluster import Cluster, spec_digest
from repro.machine.specs import ClusterSpec
from repro.util.rng import RngStream, derive_seed
from repro.util.validation import require, require_positive

__all__ = [
    "Campaign",
    "CampaignCell",
    "FaultModel",
    "MachinePreset",
    "MACHINES",
    "fault_model",
    "machine_preset",
    "machine_names",
    "fault_names",
]


# -- machine presets -----------------------------------------------------------


@dataclass(frozen=True)
class MachinePreset:
    """A named machine a campaign cell can run on.

    ``builder`` returns the :class:`~repro.machine.specs.ClusterSpec` (or
    ``None`` for the single-element testbed, which the scenario layer
    builds internally from its own knobs).  The preset's :meth:`identity`
    is pure data — name, spec digest, cluster seed — and is what cache
    keys embed.
    """

    name: str
    description: str
    default_grid: tuple[int, int]
    cluster_seed: int = 2009
    builder: Optional[Callable[[], ClusterSpec]] = field(
        default=None, compare=False, repr=False
    )

    def spec(self) -> Optional[ClusterSpec]:
        return None if self.builder is None else self.builder()

    @property
    def n_elements(self) -> int:
        spec = self.spec()
        return 1 if spec is None else spec.total_elements

    def build_cluster(self) -> Optional[Cluster]:
        """The live machine (``None`` for the single-element testbed)."""
        spec = self.spec()
        if spec is None:
            return None
        return Cluster(spec, seed=self.cluster_seed)

    def identity(self) -> dict[str, Any]:
        """Stable cache-key data: never a live object, never an address."""
        spec = self.spec()
        return {
            "name": self.name,
            "spec": "single-element" if spec is None else spec_digest(spec),
            "seed": self.cluster_seed,
        }

    def peak_gflops(self, grid: tuple[int, int]) -> float:
        """Aggregate peak of the *grid's* share of the machine, in GFLOPS."""
        ranks = grid[0] * grid[1]
        spec = self.spec()
        if spec is None:
            from repro.machine.presets import tianhe1_element

            return tianhe1_element().peak_flops / 1e9
        element = spec.node_specs[0][1].elements[0]
        return ranks * element.peak_flops / 1e9


def _tianhe1_cabinet_spec() -> ClusterSpec:
    from repro.machine.presets import tianhe1_cluster

    return tianhe1_cluster(cabinets=1)


def _tianhe1_full_spec() -> ClusterSpec:
    from repro.machine.presets import FULL_SYSTEM_CABINETS, tianhe1_cluster

    return tianhe1_cluster(cabinets=FULL_SYSTEM_CABINETS)


def _frontier_node_spec() -> ClusterSpec:
    from repro.machine.presets import frontier_cluster

    return frontier_cluster(nodes=1)


def _frontier_64node_spec() -> ClusterSpec:
    from repro.machine.presets import frontier_cluster

    return frontier_cluster(nodes=64)


#: The preset registry: the machines a campaign (or what-if query) may name.
MACHINES: dict[str, MachinePreset] = {
    preset.name: preset
    for preset in (
        MachinePreset(
            name="element",
            description="one TianHe-1 compute element (E5540 + RV770 at 750 MHz)",
            default_grid=(1, 1),
        ),
        MachinePreset(
            name="tianhe1-cabinet",
            description="one TianHe-1 cabinet: 32 nodes / 64 elements at 575 MHz",
            default_grid=(8, 8),
            builder=_tianhe1_cabinet_spec,
        ),
        MachinePreset(
            name="tianhe1-full",
            description="the full 2560-node TianHe-1 (the paper's 0.563 PFLOPS run)",
            default_grid=(64, 80),
            builder=_tianhe1_full_spec,
        ),
        MachinePreset(
            name="frontier-node",
            description="one Frontier-style node: 8 MI250X GCDs (arXiv 2304.10397)",
            default_grid=(2, 4),
            builder=_frontier_node_spec,
        ),
        MachinePreset(
            name="frontier-64node",
            description="64 Frontier-style nodes: 512 GCDs over Slingshot-11",
            default_grid=(16, 32),
            builder=_frontier_64node_spec,
        ),
    )
}


def machine_preset(name: str) -> MachinePreset:
    """Look up a preset by name; unknown names raise with the valid list."""
    preset = MACHINES.get(name)
    if preset is None:
        raise ValueError(
            f"unknown machine preset {name!r}; valid: {', '.join(sorted(MACHINES))}"
        )
    return preset


def machine_names() -> tuple[str, ...]:
    return tuple(sorted(MACHINES))


# -- fault models --------------------------------------------------------------

_STRAGGLER_RE = re.compile(r"^stragglers-([0-9]+(?:\.[0-9]+)?)pct$")


@dataclass(frozen=True)
class FaultModel:
    """A named, machine-independent fault recipe.

    Campaigns name fault models as strings; the model expands against a
    concrete element population only when the cell builds its scenario, so
    "stragglers-2pct" means 2% of *whichever machine* the cell runs on.
    Element selection is seeded (:class:`~repro.util.rng.RngStream`), so
    the same cell always degrades the same elements.
    """

    name: str
    kind: str  # "none" | "stragglers" | "gpu-throttle" | "gpu-dropout"
    fraction: float = 0.0
    factor: float = 0.5

    def build(self, n_elements: int, seed: int) -> Optional[FaultSpec]:
        """The concrete :class:`FaultSpec` for a machine of *n_elements*."""
        if self.kind == "none":
            return None
        if self.kind == "stragglers":
            count = max(1, round(self.fraction * n_elements))
            count = min(count, n_elements)
            rng = RngStream(seed).child(f"faults/{self.name}").generator()
            elements = sorted(
                int(i) for i in rng.choice(n_elements, size=count, replace=False)
            )
            return FaultSpec(
                stragglers=tuple(
                    Straggler(at=0.0, element=i, factor=self.factor, side="both")
                    for i in elements
                )
            )
        if self.kind == "gpu-throttle":
            return FaultSpec(throttles=(GpuThrottle(at=0.0, clock_factor=self.factor),))
        if self.kind == "gpu-dropout":
            return FaultSpec(dropouts=(GpuDropout(at=0.0, element=0),))
        raise ValueError(f"unknown fault kind {self.kind!r}")


#: Named fault models every campaign can reference.
_NAMED_FAULTS: dict[str, FaultModel] = {
    "none": FaultModel(name="none", kind="none"),
    "stragglers-2pct": FaultModel(name="stragglers-2pct", kind="stragglers", fraction=0.02),
    "stragglers-5pct": FaultModel(name="stragglers-5pct", kind="stragglers", fraction=0.05),
    "gpu-throttle": FaultModel(name="gpu-throttle", kind="gpu-throttle", factor=575.0 / 750.0),
    "gpu-dropout": FaultModel(name="gpu-dropout", kind="gpu-dropout"),
}


def fault_model(name: str) -> FaultModel:
    """Resolve a fault-model name, including parametric ``stragglers-<X>pct``."""
    model = _NAMED_FAULTS.get(name)
    if model is not None:
        return model
    match = _STRAGGLER_RE.match(name)
    if match:
        pct = float(match.group(1))
        require(0.0 < pct <= 100.0, f"straggler percentage out of range in {name!r}")
        return FaultModel(name=name, kind="stragglers", fraction=pct / 100.0)
    raise ValueError(
        f"unknown fault model {name!r}; valid: {', '.join(sorted(_NAMED_FAULTS))} "
        "or 'stragglers-<percent>pct'"
    )


def fault_names() -> tuple[str, ...]:
    return tuple(sorted(_NAMED_FAULTS))


# -- cells ---------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignCell:
    """One fully-resolved point of a campaign's matrix."""

    campaign: str
    machine: str
    scheduler: str
    n: int
    grid: tuple[int, int]
    bcast: Optional[str]
    fault: str
    rep: int
    seed: int

    @property
    def coordinates(self) -> dict[str, Any]:
        """The cell's semantic coordinates (what reports key rows by)."""
        return {
            "campaign": self.campaign,
            "machine": self.machine,
            "scheduler": self.scheduler,
            "n": self.n,
            "grid": list(self.grid),
            "bcast": self.bcast,
            "fault": self.fault,
            "rep": self.rep,
        }

    @property
    def cell_id(self) -> str:
        """Short stable id (coordinates only; used in reports and journals)."""
        return hashlib.sha256(canonical_json(self.coordinates).encode()).hexdigest()[:12]

    def scenario(self) -> "Any":
        """The executable :class:`~repro.session.Scenario` for this cell."""
        from repro.session import Scenario

        preset = machine_preset(self.machine)
        faults = fault_model(self.fault).build(preset.n_elements, self.seed)
        overrides = {"bcast_algo": self.bcast} if self.bcast else None
        return Scenario(
            scheduler=self.scheduler,
            n=self.n,
            cluster=preset.build_cluster(),
            grid=self.grid,
            seed=self.seed,
            faults=faults,
            overrides=overrides,
        )

    def cache_key(self) -> str:
        """The cell's content address in the :class:`repro.exec.ResultCache`.

        The **machine identity is part of the key** — not just the
        scenario-field hash — so two presets whose scenario-visible fields
        coincide (same n, grid, scheduler, seed) still key apart.  The
        code-version digest enters through :func:`repro.exec.scenario_key`.

        The campaign *name* is deliberately **not** part of the key: it is
        provenance, not content.  Two campaigns (or a campaign and a
        what-if query) asking for the same semantic point — same machine,
        scenario, fault model, and derived seed — share one cache entry,
        which is what lets a campaign run pre-warm the what-if service.
        """
        preset = machine_preset(self.machine)
        coords = {k: v for k, v in self.coordinates.items() if k != "campaign"}
        return scenario_key(
            "campaign.cell",
            {
                "machine": preset.identity(),
                "scenario": self.scenario().content_hash(),
                "coordinates": coords,
            },
        )


# -- the campaign --------------------------------------------------------------

#: from_dict/to_dict axis spellings, in canonical expansion order.
_AXIS_ALIASES: dict[str, tuple[str, ...]] = {
    "machines": ("machine", "machines"),
    "schedulers": ("scheduler", "schedulers"),
    "sizes": ("n", "sizes", "size"),
    "grids": ("grid", "grids"),
    "bcasts": ("bcast", "bcasts", "bcast_algo"),
    "faults": ("fault", "faults"),
}


@dataclass(frozen=True)
class Campaign:
    """A declarative scenario matrix; see the module docstring.

    Every axis is a tuple of values; the matrix is their full cross
    product, times ``repetitions``.  ``grids`` entries may be ``None``
    (use the machine preset's default grid) or an explicit ``(P, Q)``.
    Validation happens at construction: unknown machines, fault models,
    schedulers and broadcast algorithms raise immediately.
    """

    name: str
    sizes: tuple[int, ...]
    machines: tuple[str, ...] = ("element",)
    schedulers: tuple[str, ...] = ("adaptive",)
    bcasts: tuple[Optional[str], ...] = (None,)
    faults: tuple[str, ...] = ("none",)
    grids: tuple[Optional[tuple[int, int]], ...] = (None,)
    repetitions: int = 1
    seed: int = 7
    extractor: str = "hpl"

    def __post_init__(self) -> None:
        require(bool(self.name), "a campaign needs a name")
        require(len(self.sizes) >= 1, "a campaign needs at least one problem size")
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        for n in self.sizes:
            require_positive(n, "campaign size")
        object.__setattr__(self, "machines", tuple(self.machines))
        object.__setattr__(self, "schedulers", tuple(self.schedulers))
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(
            self,
            "grids",
            tuple(None if g is None else (int(g[0]), int(g[1])) for g in self.grids),
        )
        require_positive(self.repetitions, "repetitions")
        for machine in self.machines:
            machine_preset(machine)
        for fault in self.faults:
            fault_model(fault)
        from repro.sched.builds import resolve_hpl_build

        for scheduler in self.schedulers:
            resolve_hpl_build(scheduler)
        from repro.mpi.bcast import canonical_algorithm

        canonical: list[Optional[str]] = []
        for bcast in self.bcasts:
            canonical.append(None if bcast is None else canonical_algorithm(bcast))
        object.__setattr__(self, "bcasts", tuple(canonical))
        from repro.campaign.extract import metric_extractor

        metric_extractor(self.extractor)

    # -- declarative round-trip ------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Campaign":
        """Build a campaign from declarative data (JSON-shaped).

        The ``matrix`` mapping accepts the axis spellings in
        ``_AXIS_ALIASES`` in **any key order** — expansion order does not
        depend on it.  Unknown matrix keys raise.
        """
        payload = dict(payload)
        matrix = dict(payload.pop("matrix", {}))
        kwargs: dict[str, Any] = {
            "name": payload.pop("name"),
            "repetitions": payload.pop("repetitions", 1),
            "seed": payload.pop("seed", 7),
            "extractor": payload.pop("extractor", "hpl"),
        }
        if payload:
            raise ValueError(
                f"unknown campaign key(s): {', '.join(sorted(payload))} "
                "(valid: name, matrix, repetitions, seed, extractor)"
            )
        for axis, spellings in _AXIS_ALIASES.items():
            found = [key for key in spellings if key in matrix]
            if len(found) > 1:
                raise ValueError(f"matrix declares {axis} more than once: {found}")
            if not found:
                continue
            values = matrix.pop(found[0])
            if not isinstance(values, (list, tuple)):
                values = [values]
            if axis == "grids":
                values = [None if v is None else tuple(v) for v in values]
            kwargs[axis] = tuple(values)
        if matrix:
            valid = ", ".join(sorted(s for aliases in _AXIS_ALIASES.values() for s in aliases))
            raise ValueError(
                f"unknown matrix axis key(s): {', '.join(sorted(matrix))} (valid: {valid})"
            )
        return cls(**kwargs)

    def to_dict(self) -> dict[str, Any]:
        """The canonical declarative form (round-trips through from_dict)."""
        return {
            "name": self.name,
            "matrix": {
                "machine": list(self.machines),
                "scheduler": list(self.schedulers),
                "n": list(self.sizes),
                "grid": [None if g is None else list(g) for g in self.grids],
                "bcast": list(self.bcasts),
                "fault": list(self.faults),
            },
            "repetitions": self.repetitions,
            "seed": self.seed,
            "extractor": self.extractor,
        }

    # -- expansion -------------------------------------------------------------
    def expand(self) -> tuple[CampaignCell, ...]:
        """The matrix as a flat, ordered, duplicate-free tuple of cells.

        Axis iteration order is canonical (machine, scheduler, n, grid,
        bcast, fault, rep); duplicate coordinates — e.g. the same size
        listed twice, or two grid entries resolving to the same ``(P, Q)``
        on the same machine — expand once, first occurrence wins.
        """
        cells: list[CampaignCell] = []
        seen: set[tuple] = set()
        for machine in self.machines:
            preset = machine_preset(machine)
            for scheduler in self.schedulers:
                for n in self.sizes:
                    for grid in self.grids:
                        resolved = preset.default_grid if grid is None else grid
                        for bcast in self.bcasts:
                            for fault in self.faults:
                                for rep in range(self.repetitions):
                                    coords = (
                                        machine, scheduler, n, resolved, bcast, fault, rep,
                                    )
                                    if coords in seen:
                                        continue
                                    seen.add(coords)
                                    cells.append(
                                        CampaignCell(
                                            campaign=self.name,
                                            machine=machine,
                                            scheduler=scheduler,
                                            n=n,
                                            grid=resolved,
                                            bcast=bcast,
                                            fault=fault,
                                            rep=rep,
                                            seed=derive_seed(
                                                self.seed,
                                                "campaign",
                                                machine,
                                                scheduler,
                                                str(n),
                                                f"{resolved[0]}x{resolved[1]}",
                                                str(bcast),
                                                fault,
                                                str(rep),
                                            ),
                                        )
                                    )
        return tuple(cells)

    @property
    def n_cells(self) -> int:
        return len(self.expand())

    def scaled(self, *, sizes: Optional[Sequence[int]] = None) -> "Campaign":
        """A copy with substituted sizes (the CLIs' ``--quick`` hook)."""
        if sizes is None:
            return self
        return replace(self, sizes=tuple(sizes))
