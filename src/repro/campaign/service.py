"""The what-if query service: warm answers from cache, cold ones from the pool.

``python -m repro.campaign serve`` exposes the campaign cell model over a
small asyncio HTTP/JSON API, so a client can ask "what would the adaptive
scheduler do at N=60000 on a Frontier node with 2% stragglers?" and get an
answer without knowing anything about scenarios, pools or caches:

* **warm** queries — any cell whose content key is already in the
  in-memory memo or the on-disk :class:`repro.exec.ResultCache` (e.g. a
  prior query, or a campaign run over the same matrix) — are answered
  inline, with **zero pool tasks scheduled**;
* **cold** queries are admitted to an :class:`~repro.session.AsyncSession`
  under the caller's tenant (fair-share scheduling, bounded admission);
  *identical* cold queries arriving while one is in flight **coalesce**
  onto the same pool task and all receive its answer;
* per-tenant token-bucket rate limits answer **429** with ``Retry-After``
  when a caller exceeds its budget.

The response *body* for a cell is built deterministically from the cell
and its normalized record, so a warm answer is **byte-identical** to the
cold answer that first produced it; cache status travels in the
``X-Cache`` header (``warm`` / ``cold``), never in the body.  Cache
warmth, coalescing and latency land in the ambient :mod:`repro.obs`
telemetry as ``whatif.*`` counters plus the ``exec.cache.*`` hit/miss
counters the rest of the execution stack already uses.

The wire protocol is deliberately minimal HTTP/1.1 (stdlib-only, one
reader task per connection, keep-alive), enough for ``http.client``,
``curl`` and the in-process bench/test harnesses:

==========  =========  ====================================================
method      path       semantics
==========  =========  ====================================================
GET         /healthz   liveness: ``{"ok": true}``
GET         /presets   machine presets, fault models, extractors
GET         /stats     query/warmth/coalescing counters for this server
POST        /query     a what-if query (JSON body, see ``normalize_query``)
==========  =========  ====================================================
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro import obs
from repro.campaign.extract import extract_metrics
from repro.campaign.model import (
    Campaign,
    CampaignCell,
    fault_names,
    machine_names,
    machine_preset,
)
from repro.campaign.runner import normalize_record
from repro.exec import DEFAULT_CACHE_DIR, ResultCache, code_version
from repro.exec.cache import canonical_json
from repro.exec.policy import current as current_policy
from repro.session import AdmissionFull, AsyncSession

__all__ = ["WhatIfService", "normalize_query", "TokenBucket", "DEFAULT_SEED"]

#: Base seed a query's cell seed derives from; matches Campaign's default so
#: campaign runs with the default seed pre-warm the service.
DEFAULT_SEED = 7

_QUERY_KEYS = {
    "machine", "scheduler", "n", "grid", "bcast", "fault",
    "straggler_pct", "rep", "seed", "campaign",
}


def normalize_query(payload: Mapping[str, Any]) -> CampaignCell:
    """A JSON query -> the one :class:`CampaignCell` it denotes.

    The query is routed through a single-point :class:`Campaign` and
    :meth:`~Campaign.expand`, so seed derivation, grid defaulting and
    validation are *the same code path* a campaign uses — a query for a
    point some campaign already ran keys into the same cache entry.

    Keys: ``n`` (required), ``machine``, ``scheduler``, ``grid``,
    ``bcast``, ``fault`` (or ``straggler_pct`` as a shorthand for
    ``stragglers-<pct>pct``), ``rep``, ``seed``, ``campaign`` (label only).
    """
    payload = dict(payload)
    unknown = set(payload) - _QUERY_KEYS
    if unknown:
        raise ValueError(
            f"unknown query key(s): {', '.join(sorted(unknown))} "
            f"(valid: {', '.join(sorted(_QUERY_KEYS))})"
        )
    if "n" not in payload:
        raise ValueError("a what-if query needs a problem size 'n'")
    fault = payload.get("fault")
    if "straggler_pct" in payload:
        if fault is not None:
            raise ValueError("give either 'fault' or 'straggler_pct', not both")
        fault = f"stragglers-{float(payload['straggler_pct']):g}pct"
    rep = int(payload.get("rep", 0))
    if rep < 0:
        raise ValueError("rep must be >= 0")
    grid = payload.get("grid")
    campaign = Campaign(
        name=str(payload.get("campaign", "whatif")),
        sizes=(int(payload["n"]),),
        machines=(str(payload.get("machine", "element")),),
        schedulers=(str(payload.get("scheduler", "adaptive")),),
        bcasts=(payload.get("bcast"),),
        faults=(fault or "none",),
        grids=(None if grid is None else (int(grid[0]), int(grid[1])),),
        repetitions=rep + 1,
        seed=int(payload.get("seed", DEFAULT_SEED)),
    )
    return campaign.expand()[rep]


class TokenBucket:
    """Per-tenant token buckets: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate: float, burst: int) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._buckets: dict[str, tuple[float, float]] = {}  # tenant -> (tokens, at)

    def try_acquire(self, tenant: str, now: Optional[float] = None) -> float:
        """Take one token; returns 0.0 on success, else seconds to retry."""
        now = time.monotonic() if now is None else now
        tokens, at = self._buckets.get(tenant, (self.burst, now))
        tokens = min(self.burst, tokens + (now - at) * self.rate)
        if tokens >= 1.0:
            self._buckets[tenant] = (tokens - 1.0, now)
            return 0.0
        self._buckets[tenant] = (tokens, now)
        return (1.0 - tokens) / self.rate


class _HttpError(Exception):
    def __init__(self, status: int, message: str, headers: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class WhatIfService:
    """The serving loop; see the module docstring for the contract.

    Parameters
    ----------
    slots / serial:
        Worker-pool shape for cold queries (``serial=True`` keeps
        everything in-process — the test fixture's mode).
    cache_dir:
        Backing :class:`ResultCache` directory; share it with campaign
        runs to serve their cells warm.
    rate / burst:
        Per-tenant token-bucket limit for ``POST /query``.  ``rate=None``
        disables limiting (the throughput bench's mode).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        slots: Optional[int] = None,
        serial: Optional[bool] = None,
        cache_dir: Union[str, Path, None] = None,
        rate: Optional[float] = None,
        burst: int = 20,
        use_disk_cache: bool = True,
    ) -> None:
        self.host = host
        self._requested_port = port
        self._slots = slots
        self._serial = serial
        self.cache = ResultCache(Path(cache_dir) if cache_dir else DEFAULT_CACHE_DIR)
        self._use_disk_cache = bool(use_disk_cache)
        self.limiter = None if rate is None else TokenBucket(rate, burst)
        self._memo: dict[str, bytes] = {}
        # payload (canonical JSON) -> (cell, cache key): normalize_query
        # re-expands a single-point Campaign and hashes a scenario on every
        # call, which dominates the warm path; repeat queries skip it.
        self._query_memo: dict[str, tuple[CampaignCell, str]] = {}
        self._inflight: dict[str, "asyncio.Future[bytes]"] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._session: Optional[AsyncSession] = None
        self.stats: dict[str, int] = {
            "queries": 0, "warm": 0, "cold": 0, "coalesced": 0,
            "rate_limited": 0, "rejected": 0, "errors": 0,
        }

    # -- lifecycle -------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._session = AsyncSession(slots=self._slots, serial=self._serial)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for future in self._inflight.values():
            if not future.done():
                future.cancel()
        self._inflight.clear()
        if self._session is not None:
            await self._session.close()
            self._session = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def __aenter__(self) -> "WhatIfService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- metrics ---------------------------------------------------------------
    def _count(self, stat: str, help: str) -> None:
        self.stats[stat] += 1
        telemetry = obs.current()
        if telemetry is not None:
            telemetry.metrics.counter(f"whatif.{stat}", help).inc()

    def _observe_latency(self, seconds: float) -> None:
        telemetry = obs.current()
        if telemetry is not None:
            telemetry.metrics.histogram(
                "whatif.latency", "what-if query latency (s)"
            ).observe(seconds)

    # -- the query path --------------------------------------------------------
    def _body_for(self, cell: CampaignCell, key: str, record: dict[str, Any]) -> bytes:
        """The deterministic response body — identical warm or cold."""
        return (
            canonical_json(
                {
                    "cell_id": cell.cell_id,
                    "coordinates": cell.coordinates,
                    "key": key[:16],
                    "code_version": code_version(),
                    "record": record,
                    "metrics": extract_metrics("hpl", cell, record),
                }
            ).encode()
            + b"\n"
        )

    async def answer(self, payload: Mapping[str, Any], *, tenant: str = "anon") -> tuple[bytes, str]:
        """Answer one query; returns ``(body, cache_status)``.

        ``cache_status`` is ``"warm"`` (memo or disk cache; no pool task),
        ``"cold"`` (this query ran it) or ``"coalesced"`` (rode an
        identical in-flight query's pool task).
        """
        started = time.monotonic()
        self._count("queries", "what-if queries received")
        query_key = canonical_json(dict(payload))
        memoized = self._query_memo.get(query_key)
        if memoized is None:
            cell = normalize_query(payload)
            key = cell.cache_key()
            self._query_memo[query_key] = (cell, key)
        else:
            cell, key = memoized

        body = self._memo.get(key)
        if body is None and self._use_disk_cache:
            hit, value = self.cache.get(key)
            if hit:
                body = self._body_for(cell, key, normalize_record(value))
                self._memo[key] = body
        if body is not None:
            current_policy().stats.count_cache(True)
            self._count("warm", "what-if queries answered from cache")
            self._observe_latency(time.monotonic() - started)
            return body, "warm"

        future = self._inflight.get(key)
        if future is not None:
            self._count("coalesced", "what-if queries coalesced onto in-flight work")
            body = await asyncio.shield(future)
            self._observe_latency(time.monotonic() - started)
            return body, "coalesced"

        current_policy().stats.count_cache(False)
        assert self._session is not None, "service is not started"
        scenario = cell.scenario()
        # Register the in-flight future BEFORE submitting: identical queries
        # arriving while this one executes must find it and coalesce rather
        # than scheduling their own pool task.
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._count("cold", "what-if queries that scheduled a run")
        try:
            try:
                handle = self._session.submit(scenario, tenant=f"whatif/{tenant}")
            except AdmissionFull as exc:
                self._count("rejected", "what-if queries rejected at admission")
                raise _HttpError(503, str(exc), {"Retry-After": "1"}) from exc
            result = await handle.result()
            record = normalize_record(
                {
                    "v": 1,
                    "hash": scenario.content_hash(),
                    "scheduler": scenario.scheduler_name,
                    "n": scenario.n,
                    "seed": scenario.seed,
                    "gflops": result.gflops,
                    "elapsed": result.elapsed,
                    "degraded": None if result.degraded is None else str(result.degraded),
                }
            )
            body = self._body_for(cell, key, record)
            self._memo[key] = body
            if self._use_disk_cache:
                self.cache.put(key, record, task="campaign.cell", args=cell.coordinates)
            future.set_result(body)
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
            future.exception()  # mark retrieved; the raise below reports it
            raise
        finally:
            self._inflight.pop(key, None)
        self._observe_latency(time.monotonic() - started)
        return body, "cold"

    # -- HTTP ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, response, extra = await self._route(method, path, headers, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                _write_response(writer, status, response, extra, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                # Swallowing CancelledError here is deliberate: the loop is
                # tearing down and a handler task that ends "cancelled" makes
                # asyncio's stream protocol log a spurious traceback.
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _route(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> tuple[int, bytes, dict[str, str]]:
        try:
            if method == "GET" and path == "/healthz":
                return 200, b'{"ok": true}\n', {}
            if method == "GET" and path == "/stats":
                payload = dict(self.stats)
                payload["memo_entries"] = len(self._memo)
                payload["in_flight"] = len(self._inflight)
                return 200, (json.dumps(payload) + "\n").encode(), {}
            if method == "GET" and path == "/presets":
                payload = {
                    "machines": {
                        name: {
                            "description": machine_preset(name).description,
                            "default_grid": list(machine_preset(name).default_grid),
                            "elements": machine_preset(name).n_elements,
                        }
                        for name in machine_names()
                    },
                    "faults": list(fault_names()) + ["stragglers-<percent>pct"],
                }
                return 200, (json.dumps(payload) + "\n").encode(), {}
            if path == "/query":
                if method != "POST":
                    return 405, b'{"error": "POST only"}\n', {"Allow": "POST"}
                tenant = headers.get("x-tenant", "anon")
                if self.limiter is not None:
                    retry = self.limiter.try_acquire(tenant)
                    if retry > 0.0:
                        self._count("rate_limited", "what-if queries 429ed")
                        return (
                            429,
                            b'{"error": "rate limited"}\n',
                            {"Retry-After": f"{retry:.3f}"},
                        )
                try:
                    payload = json.loads(body.decode() or "{}")
                    if not isinstance(payload, dict):
                        raise ValueError("query body must be a JSON object")
                except ValueError as exc:
                    raise _HttpError(400, f"bad query: {exc}") from exc
                try:
                    answer, cache_status = await self.answer(payload, tenant=tenant)
                except (ValueError, TypeError, KeyError) as exc:
                    raise _HttpError(400, f"bad query: {exc}") from exc
                return 200, answer, {"X-Cache": cache_status}
            return 404, b'{"error": "not found"}\n', {}
        except _HttpError as exc:
            if exc.status >= 500:
                self._count("errors", "what-if queries that failed")
            return (
                exc.status,
                (json.dumps({"error": exc.message}) + "\n").encode(),
                exc.headers,
            )
        except Exception as exc:  # noqa: BLE001 - reported to the client
            self._count("errors", "what-if queries that failed")
            return 500, (json.dumps({"error": str(exc)}) + "\n").encode(), {}


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[tuple[str, str, dict[str, str], bytes]]:
    """Parse one HTTP/1.1 request; None on clean EOF before a request line."""
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not line or not line.strip():
        return None
    try:
        method, path, _version = line.decode().split(None, 2)
    except ValueError:
        return None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, headers, body


def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    extra: Mapping[str, str],
    keep_alive: bool,
) -> None:
    head = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{name}: {value}" for name, value in extra.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
