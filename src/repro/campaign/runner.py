"""Execute a campaign: cache-first, pool-parallel, checkpoint/resume.

:func:`run_campaign` is the driver between the declarative
:class:`~repro.campaign.model.Campaign` and the execution stack that
already exists below it:

* every expanded cell is first looked up in the content-addressed
  :class:`repro.exec.ResultCache` under its :meth:`CampaignCell.cache_key`
  (machine identity included — see the model docs); hits never touch the
  pool and are counted into the ambient ``exec.cache.*`` obs counters;
* misses run through :func:`repro.session.run_sweep` — the asyncio
  fair-share runtime over the persistent worker pool — with a
  :class:`~repro.session.SweepJournal` checkpoint, so a SIGKILLed campaign
  re-runs exactly its un-journaled cells on the next invocation
  (``tests/campaign/test_resume_crash.py``);
* fresh completions are written back to the cache, so the next run — or a
  long-running what-if service pointed at the same cache directory — is
  warm.

Every outcome carries provenance: whether it came from cache or a run, the
cell's cache key, the code version the value was computed under, and the
journal it was checkpointed through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro import obs
from repro.campaign.extract import extract_metrics, metric_extractor
from repro.campaign.model import Campaign, CampaignCell
from repro.exec import DEFAULT_CACHE_DIR, ResultCache, code_version
from repro.exec.policy import current as current_policy

__all__ = [
    "CellOutcome",
    "CampaignResult",
    "run_campaign",
    "normalize_record",
    "RECORD_FIELDS",
    "DEFAULT_CAMPAIGN_ROOT",
]

#: Where campaign artifacts (journal, exports, report) land by default.
DEFAULT_CAMPAIGN_ROOT = Path("benchmarks") / "out" / "campaigns"

#: The deterministic slice of a journal record a campaign caches and reports.
#: "wall" (clock time) and "tenant" (who ran it) are provenance, not content —
#: keeping them out makes a cached cell byte-identical to a fresh run's, which
#: the what-if service's warm-vs-cold parity contract relies on.
RECORD_FIELDS = ("v", "hash", "scheduler", "n", "seed", "gflops", "elapsed", "degraded")


def normalize_record(record: dict[str, Any]) -> dict[str, Any]:
    """Project a journal-shaped record onto its deterministic fields."""
    return {key: record.get(key) for key in RECORD_FIELDS}


@dataclass(frozen=True)
class CellOutcome:
    """One cell's result: the raw record plus where it came from."""

    cell: CampaignCell
    record: Optional[dict[str, Any]]
    provenance: dict[str, Any]


@dataclass
class CampaignResult:
    """Everything a campaign run produced, in expansion order."""

    campaign: Campaign
    outcomes: list[CellOutcome] = field(default_factory=list)

    @property
    def cells(self) -> list[CampaignCell]:
        return [outcome.cell for outcome in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.provenance.get("cache") == "hit")

    def rows(self) -> list[dict[str, Any]]:
        """One flat, JSON-ready row per cell: coordinates + metrics + provenance."""
        extractor = metric_extractor(self.campaign.extractor)
        rows = []
        for outcome in self.outcomes:
            rows.append(
                {
                    "cell_id": outcome.cell.cell_id,
                    "coordinates": outcome.cell.coordinates,
                    "metrics": extract_metrics(extractor, outcome.cell, outcome.record),
                    "provenance": outcome.provenance,
                }
            )
        return rows

    def summary(self) -> dict[str, Any]:
        rows = self.rows()
        tflops = [
            row["metrics"]["tflops"]
            for row in rows
            if isinstance(row["metrics"].get("tflops"), (int, float))
        ]
        return {
            "campaign": self.campaign.name,
            "cells": len(self.outcomes),
            "cache_hits": self.cache_hits,
            "code_version": code_version(),
            "best_tflops": max(tflops) if tflops else None,
        }


def run_campaign(
    campaign: Campaign,
    *,
    jobs: Optional[int] = None,
    serial: Optional[bool] = None,
    use_cache: bool = True,
    cache_dir: Union[str, Path, None] = None,
    journal_path: Union[str, Path, None] = None,
    resume: bool = True,
) -> CampaignResult:
    """Run every cell of *campaign*; see the module docstring for the flow.

    ``journal_path`` defaults to
    ``benchmarks/out/campaigns/<name>/journal.jsonl``; pass an explicit
    path to isolate runs (tests do).  With ``resume=True`` (default) a
    journal left by a killed run is honored — already-journaled cells are
    not re-executed.
    """
    from repro.session import run_sweep

    cells = list(campaign.expand())
    cache = ResultCache(Path(cache_dir) if cache_dir else DEFAULT_CACHE_DIR)
    if journal_path is None:
        journal_path = DEFAULT_CAMPAIGN_ROOT / campaign.name / "journal.jsonl"
    journal_path = Path(journal_path)

    policy = current_policy()
    records: dict[int, Optional[dict[str, Any]]] = {}
    provenance: dict[int, dict[str, Any]] = {}
    missing: list[tuple[int, CampaignCell, str]] = []
    version = code_version()
    for index, cell in enumerate(cells):
        key = cell.cache_key()
        base = {"key": key[:16], "code_version": version, "cell_id": cell.cell_id}
        if use_cache:
            hit, value = cache.get(key)
            policy.stats.count_cache(hit)
            if hit:
                records[index] = value
                provenance[index] = {**base, "cache": "hit", "journal": None}
                continue
        missing.append((index, cell, key))

    telemetry = obs.current()
    if telemetry is not None:
        telemetry.metrics.counter(
            "campaign.cells", "campaign cells resolved (cache or run)"
        ).inc(len(cells))
        telemetry.metrics.counter(
            "campaign.cell_runs", "campaign cells that had to execute"
        ).inc(len(missing))

    if missing:
        scenarios = [cell.scenario() for _, cell, _ in missing]
        results = run_sweep(
            scenarios,
            journal_path=journal_path,
            slots=jobs,
            serial=serial,
            resume=resume,
            tenant_of=lambda i, _s: f"campaign/{campaign.name}",
        )
        for (index, cell, key), record in zip(missing, results):
            record = normalize_record(record)
            records[index] = record
            provenance[index] = {
                "key": key[:16],
                "code_version": version,
                "cell_id": cell.cell_id,
                "cache": "miss",
                "journal": str(journal_path),
            }
            if use_cache:
                cache.put(key, record, task="campaign.cell", args=cell.coordinates)

    return CampaignResult(
        campaign=campaign,
        outcomes=[
            CellOutcome(cell=cell, record=records[i], provenance=provenance[i])
            for i, cell in enumerate(cells)
        ],
    )
