"""Campaign exporters: JSONL, CSV, and a static HTML report.

All three render the same flat rows (:meth:`CampaignResult.rows`): one
object per cell with ``coordinates`` (the matrix point), ``metrics`` (the
campaign's extractor output) and ``provenance`` (cache hit or run, cache
key prefix, code version, journal).  JSONL is the machine interchange
format and round-trips losslessly (:func:`read_jsonl` — the hypothesis
suite pins row == parse(dump(row))); CSV flattens for spreadsheets; the
HTML report is a single self-contained file with the campaign's
declarative spec, a summary strip, and a per-cell table whose provenance
column shows exactly where every number came from.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Union

from repro.exec.cache import canonical_json
from repro.util.io import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.runner import CampaignResult

__all__ = ["to_jsonl", "read_jsonl", "to_csv", "to_html", "write_artifacts"]


def to_jsonl(result: "CampaignResult") -> str:
    """One canonical-JSON line per cell (deterministic key order)."""
    return "".join(canonical_json(row) + "\n" for row in result.rows())


def read_jsonl(text_or_path: Union[str, Path]) -> list[dict[str, Any]]:
    """Parse rows back from a JSONL export (string or file path)."""
    if isinstance(text_or_path, Path):
        text = text_or_path.read_text()
    else:
        text = text_or_path
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return rows


def _flat(row: dict[str, Any]) -> dict[str, Any]:
    """One row flattened for tabular output (coordinate/metric/prov columns)."""
    out: dict[str, Any] = {"cell_id": row["cell_id"]}
    for key, value in row["coordinates"].items():
        out[key] = "x".join(str(v) for v in value) if isinstance(value, list) else value
    for key, value in row["metrics"].items():
        if key not in out:
            out[key] = value
    prov = row["provenance"]
    out["cache"] = prov.get("cache")
    out["code_version"] = prov.get("code_version")
    out["key"] = prov.get("key")
    return out


def to_csv(result: "CampaignResult") -> str:
    """Flat CSV; header union over all rows, in first-seen order."""
    rows = [_flat(row) for row in result.rows()]
    header: list[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    lines = [",".join(header)]
    for row in rows:
        cells = []
        for key in header:
            value = row.get(key)
            text = "" if value is None else str(value)
            if "," in text or '"' in text:
                text = '"' + text.replace('"', '""') + '"'
            cells.append(text)
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


_HTML_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.85rem; }
th, td { border: 1px solid #d0d0da; padding: 0.3rem 0.6rem; text-align: right; }
th { background: #f0f0f6; position: sticky; top: 0; }
td.text, th.text { text-align: left; }
.hit { color: #1b7a3d; } .miss { color: #9a4b00; }
.summary { display: flex; gap: 2rem; margin: 1rem 0; }
.summary div { background: #f6f6fb; padding: 0.6rem 1rem; border-radius: 6px; }
.summary b { display: block; font-size: 1.2rem; }
pre { background: #f6f6fb; padding: 0.8rem; overflow-x: auto; font-size: 0.8rem; }
footer { margin-top: 2rem; color: #777; font-size: 0.75rem; }
"""


def to_html(result: "CampaignResult") -> str:
    """A single static HTML report with per-cell provenance."""
    rows = [_flat(row) for row in result.rows()]
    summary = result.summary()
    header: list[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    numeric = {
        key: all(isinstance(r.get(key), (int, float)) and not isinstance(r.get(key), bool)
                 for r in rows if r.get(key) is not None)
        for key in header
    }

    def cell_html(key: str, value: Any) -> str:
        css = [] if numeric.get(key) else ["text"]
        if key == "cache":
            css.append("hit" if value == "hit" else "miss")
        text = "" if value is None else (
            f"{value:.4g}" if isinstance(value, float) else str(value)
        )
        cls = f' class="{" ".join(css)}"' if css else ""
        return f"<td{cls}>{html.escape(text)}</td>"

    body_rows = "\n".join(
        "<tr>" + "".join(cell_html(key, row.get(key)) for key in header) + "</tr>"
        for row in rows
    )
    head_row = "".join(
        f'<th{"" if numeric.get(key) else " class=text"}>{html.escape(key)}</th>'
        for key in header
    )
    best = summary.get("best_tflops")
    summary_html = (
        f"<div><b>{summary['cells']}</b>cells</div>"
        f"<div><b>{summary['cache_hits']}</b>cache hits</div>"
        f"<div><b>{'' if best is None else f'{best:.4g}'}</b>best TFLOPS</div>"
        f"<div><b>{html.escape(str(summary['code_version']))}</b>code version</div>"
    )
    spec = json.dumps(result.campaign.to_dict(), indent=2)
    return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>campaign: {html.escape(result.campaign.name)}</title>
<style>{_HTML_STYLE}</style></head>
<body>
<h1>Campaign report — {html.escape(result.campaign.name)}</h1>
<div class="summary">{summary_html}</div>
<h2>Cells</h2>
<table><thead><tr>{head_row}</tr></thead>
<tbody>
{body_rows}
</tbody></table>
<h2>Declarative spec</h2>
<pre>{html.escape(spec)}</pre>
<footer>Static report; every value traceable via its cache key and code
version. Extractor: {html.escape(result.campaign.extractor)}.</footer>
</body></html>
"""


def write_artifacts(result: "CampaignResult", out_dir: Union[str, Path]) -> dict[str, Path]:
    """Write campaign.jsonl / campaign.csv / report.html / campaign.json.

    Returns the path of each artifact.  Writes are atomic.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "jsonl": out_dir / "campaign.jsonl",
        "csv": out_dir / "campaign.csv",
        "html": out_dir / "report.html",
        "spec": out_dir / "campaign.json",
    }
    atomic_write_text(paths["jsonl"], to_jsonl(result))
    atomic_write_text(paths["csv"], to_csv(result))
    atomic_write_text(paths["html"], to_html(result))
    atomic_write_text(
        paths["spec"], json.dumps(result.campaign.to_dict(), indent=2) + "\n"
    )
    return paths
