"""``python -m repro.campaign`` — campaigns and the what-if service.

Subcommands::

    list      machine presets, fault models, extractors, example campaigns
    show      expand a campaign spec and print its cells (no execution)
    run       execute a campaign (cache-first, journaled) and write the
              JSONL/CSV/HTML artifacts under benchmarks/out/campaigns/<name>
    serve     start the what-if HTTP/JSON service
    query     POST one what-if query to a running server
    smoke     in-process end-to-end check: start a server, run a cold and a
              warm query, verify parity and shut down cleanly (the CI lane)

Campaign specs are JSON files in the :meth:`Campaign.from_dict` shape, or
one of the built-in examples (``--example``).  ``run --quick`` substitutes
small problem sizes so the full artifact path exercises in seconds.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.campaign.export import write_artifacts
from repro.campaign.extract import extractor_names
from repro.campaign.model import (
    MACHINES,
    Campaign,
    fault_names,
    machine_names,
)
from repro.campaign.runner import DEFAULT_CAMPAIGN_ROOT, run_campaign
from repro.campaign.service import WhatIfService
from repro.util.tables import TextTable

#: Built-in example campaigns (also the CLI's documentation-by-example).
EXAMPLE_CAMPAIGNS: dict[str, dict[str, Any]] = {
    "paper-element": {
        "name": "paper-element",
        "matrix": {
            "machine": ["element"],
            "scheduler": ["adaptive", "static", "cpu_only"],
            "n": [20000, 30000, 40000],
        },
    },
    "faults-cabinet": {
        "name": "faults-cabinet",
        "matrix": {
            "machine": ["tianhe1-cabinet"],
            "scheduler": ["adaptive", "static"],
            "n": [60000],
            "fault": ["none", "stragglers-2pct", "gpu-throttle"],
        },
    },
    "exascale-node": {
        "name": "exascale-node",
        "matrix": {
            "machine": ["frontier-node"],
            "scheduler": ["adaptive", "static"],
            "n": [120000, 160000],
        },
    },
}

#: Sizes `run --quick` substitutes, keeping every other axis intact.
QUICK_SIZES = (8000, 12000)


def load_campaign(args: argparse.Namespace) -> Campaign:
    if args.example is not None:
        payload = EXAMPLE_CAMPAIGNS[args.example]
    elif args.spec is not None:
        payload = json.loads(Path(args.spec).read_text())
    else:
        raise SystemExit("give a campaign: --spec FILE or --example NAME")
    campaign = Campaign.from_dict(payload)
    if getattr(args, "quick", False):
        campaign = campaign.scaled(sizes=QUICK_SIZES)
    return campaign


def _add_campaign_source(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--spec", type=Path, help="campaign spec JSON file")
    group.add_argument(
        "--example",
        choices=sorted(EXAMPLE_CAMPAIGNS),
        help="a built-in example campaign",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="declarative experiment campaigns and the what-if service",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="presets, fault models, extractors, examples")

    p = sub.add_parser("show", help="expand a campaign and print its cells")
    _add_campaign_source(p)
    p.add_argument("--quick", action="store_true", help="substitute quick sizes")

    p = sub.add_parser("run", help="execute a campaign and write artifacts")
    _add_campaign_source(p)
    p.add_argument("--quick", action="store_true", help="substitute quick sizes")
    p.add_argument("--jobs", type=int, default=None, help="worker processes")
    p.add_argument("--serial", action="store_true", help="run in-process")
    p.add_argument("--no-cache", action="store_true", help="bypass the result cache")
    p.add_argument("--no-resume", action="store_true", help="ignore an existing journal")
    p.add_argument(
        "--out", type=Path, default=None,
        help=f"artifact directory (default: {DEFAULT_CAMPAIGN_ROOT}/<name>)",
    )

    p = sub.add_parser("serve", help="start the what-if HTTP/JSON service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787)
    p.add_argument("--jobs", type=int, default=None, help="worker processes")
    p.add_argument("--serial", action="store_true", help="run queries in-process")
    p.add_argument("--cache-dir", type=Path, default=None, help="result cache directory")
    p.add_argument(
        "--rate", type=float, default=None,
        help="per-tenant rate limit in queries/sec (default: unlimited)",
    )
    p.add_argument("--burst", type=int, default=20, help="rate-limit burst size")

    p = sub.add_parser("query", help="POST one what-if query to a server")
    p.add_argument("--url", default="http://127.0.0.1:8787", help="server base URL")
    p.add_argument("--tenant", default="cli", help="X-Tenant header value")
    p.add_argument(
        "query", help='query JSON, e.g. \'{"n": 20000, "machine": "element"}\''
    )

    p = sub.add_parser(
        "smoke", help="start an in-process server, verify cold+warm, shut down"
    )
    p.add_argument("--cache-dir", type=Path, default=None, help="result cache directory")
    p.add_argument("--n", type=int, default=8000, help="problem size to query")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    table = TextTable(
        ["preset", "elements", "default grid", "description"],
        title="machine presets",
    )
    for name in machine_names():
        preset = MACHINES[name]
        grid = f"{preset.default_grid[0]}x{preset.default_grid[1]}"
        table.add_row(name, preset.n_elements, grid, preset.description)
    print(table.render())
    print(f"fault models: {', '.join(fault_names())}, stragglers-<percent>pct")
    print(f"extractors:   {', '.join(extractor_names())}")
    table = TextTable(["example", "cells", "matrix"], title="example campaigns")
    for name, payload in sorted(EXAMPLE_CAMPAIGNS.items()):
        campaign = Campaign.from_dict(payload)
        axes = {k: len(v) for k, v in payload["matrix"].items()}
        table.add_row(name, campaign.n_cells, json.dumps(axes))
    print(table.render())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    campaign = load_campaign(args)
    cells = campaign.expand()
    table = TextTable(
        ["cell", "machine", "scheduler", "n", "grid", "bcast", "fault", "rep", "seed"],
        title=f"campaign {campaign.name!r}: {len(cells)} cells",
    )
    for cell in cells:
        table.add_row(
            cell.cell_id, cell.machine, cell.scheduler, cell.n,
            f"{cell.grid[0]}x{cell.grid[1]}", cell.bcast or "-", cell.fault,
            cell.rep, cell.seed,
        )
    print(table.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    campaign = load_campaign(args)
    out_dir = args.out if args.out is not None else DEFAULT_CAMPAIGN_ROOT / campaign.name
    print(f"campaign {campaign.name!r}: {campaign.n_cells} cells", flush=True)
    result = run_campaign(
        campaign,
        jobs=args.jobs,
        serial=True if args.serial else None,
        use_cache=not args.no_cache,
        journal_path=out_dir / "journal.jsonl",
        resume=not args.no_resume,
    )
    paths = write_artifacts(result, out_dir)
    summary = result.summary()
    print(
        f"done: {summary['cells']} cells, {summary['cache_hits']} from cache, "
        f"best {summary['best_tflops']:.3f} TFLOPS"
        if summary["best_tflops"] is not None
        else f"done: {summary['cells']} cells, {summary['cache_hits']} from cache"
    )
    for kind, path in paths.items():
        print(f"  {kind:5s} {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    service = WhatIfService(
        host=args.host,
        port=args.port,
        slots=args.jobs,
        serial=True if args.serial else None,
        cache_dir=args.cache_dir,
        rate=args.rate,
        burst=args.burst,
    )

    async def _serve() -> None:
        await service.start()
        print(f"what-if service on http://{service.host}:{service.port}", flush=True)
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _http_post(url: str, path: str, payload: dict, tenant: str) -> tuple[int, dict, bytes]:
    """POST via http.client; returns (status, lowercase headers, body)."""
    import http.client
    from urllib.parse import urlsplit

    parts = urlsplit(url)
    conn = http.client.HTTPConnection(parts.hostname, parts.port or 80, timeout=30)
    try:
        conn.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json", "X-Tenant": tenant},
        )
        response = conn.getresponse()
        body = response.read()
        headers = {name.lower(): value for name, value in response.getheaders()}
        return response.status, headers, body
    finally:
        conn.close()


def _cmd_query(args: argparse.Namespace) -> int:
    payload = json.loads(args.query)
    status, headers, body = _http_post(args.url, "/query", payload, args.tenant)
    print(f"HTTP {status}  X-Cache: {headers.get('x-cache', '-')}")
    sys.stdout.write(body.decode())
    return 0 if status == 200 else 1


def _cmd_smoke(args: argparse.Namespace) -> int:
    """The CI lane's live-server check: cold query, warm query, parity."""

    async def _smoke() -> int:
        service = WhatIfService(
            serial=True, cache_dir=args.cache_dir, rate=50.0, burst=10
        )
        async with service:
            print(f"smoke: server on port {service.port}", flush=True)
            loop = asyncio.get_running_loop()
            query = {"n": args.n, "machine": "element", "scheduler": "adaptive"}

            def roundtrip() -> tuple[int, dict, bytes]:
                return _http_post(
                    f"http://127.0.0.1:{service.port}", "/query", query, "smoke"
                )

            status, headers, cold = await loop.run_in_executor(None, roundtrip)
            assert status == 200, f"cold query failed: HTTP {status}: {cold.decode()!r}"
            first = headers["x-cache"]
            status, headers, warm = await loop.run_in_executor(None, roundtrip)
            assert status == 200, f"warm query failed: HTTP {status}"
            assert headers["x-cache"] == "warm", f"expected warm, got {headers['x-cache']}"
            assert warm == cold, "warm body differs from cold body"
            print(
                f"smoke: first={first} then=warm, {len(cold)}-byte bodies identical, "
                f"stats={service.stats}"
            )
        print("smoke: clean shutdown")
        return 0

    return asyncio.run(_smoke())


_COMMANDS = {
    "list": _cmd_list,
    "show": _cmd_show,
    "run": _cmd_run,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "smoke": _cmd_smoke,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (FileNotFoundError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    sys.exit(main())
