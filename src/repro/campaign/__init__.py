"""Declarative experiment campaigns and the what-if query service.

The campaign engine turns the execution stack (scenarios, the asyncio
session runtime, the content-addressed result cache, the sweep journal)
into something you *declare* rather than script:

* :class:`Campaign` — a frozen scenario matrix (sizes x machines x
  schedulers x bcasts x faults x reps) that expands deterministically
  into :class:`CampaignCell`\\ s (``docs/campaigns.md``);
* :func:`run_campaign` — cache-first, journaled, resumable execution,
  returning a :class:`CampaignResult` with per-cell provenance;
* :mod:`repro.campaign.extract` — pluggable named metric extractors
  (hpcbench-style) feeding the JSONL/CSV/HTML exporters in
  :mod:`repro.campaign.export`;
* :class:`WhatIfService` — the ``python -m repro.campaign serve`` HTTP
  service: warm queries from cache with zero pool tasks, cold queries
  coalesced onto the fair-share pool, per-tenant rate limits.
"""

from repro.campaign.export import read_jsonl, to_csv, to_html, to_jsonl, write_artifacts
from repro.campaign.extract import (
    HplExtractor,
    MetricExtractor,
    RawExtractor,
    extract_metrics,
    extractor_names,
    metric_extractor,
    register_extractor,
)
from repro.campaign.model import (
    MACHINES,
    Campaign,
    CampaignCell,
    FaultModel,
    MachinePreset,
    fault_model,
    fault_names,
    machine_names,
    machine_preset,
)
from repro.campaign.runner import (
    DEFAULT_CAMPAIGN_ROOT,
    RECORD_FIELDS,
    CampaignResult,
    CellOutcome,
    normalize_record,
    run_campaign,
)
from repro.campaign.service import DEFAULT_SEED, TokenBucket, WhatIfService, normalize_query

__all__ = [
    "Campaign",
    "CampaignCell",
    "CampaignResult",
    "CellOutcome",
    "DEFAULT_CAMPAIGN_ROOT",
    "DEFAULT_SEED",
    "FaultModel",
    "HplExtractor",
    "MACHINES",
    "MachinePreset",
    "MetricExtractor",
    "RawExtractor",
    "RECORD_FIELDS",
    "TokenBucket",
    "WhatIfService",
    "extract_metrics",
    "extractor_names",
    "fault_model",
    "fault_names",
    "machine_names",
    "machine_preset",
    "metric_extractor",
    "normalize_query",
    "normalize_record",
    "read_jsonl",
    "register_extractor",
    "run_campaign",
    "to_csv",
    "to_html",
    "to_jsonl",
    "write_artifacts",
]
