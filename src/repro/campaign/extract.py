"""Pluggable metric extraction: run records in, flat structured metrics out.

The hpcbench idiom (SNIPPETS.md's ``HPLExtractor``): a benchmark's raw
output is parsed by a named *extractor* into a flat ``{metric: value}``
dict with declared units, so exporters and reports never touch raw run
records.  Here the "raw output" is the journal-shaped completion record a
campaign run produces for each cell (the same dict
:meth:`repro.session.SweepJournal.record` writes, which is also what the
result cache stores), plus the cell's own coordinates.

Extractors are registered by name (:func:`register_extractor`); a campaign
names its extractor as data (``extractor="hpl"``) and validation happens at
:class:`~repro.campaign.model.Campaign` construction.  Every extractor
declares its metric names and units up front (:attr:`MetricExtractor.METRICS`)
so exporters can emit stable headers even for cells that failed.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

__all__ = [
    "MetricExtractor",
    "HplExtractor",
    "RawExtractor",
    "register_extractor",
    "metric_extractor",
    "extractor_names",
]


class MetricExtractor:
    """Base extractor: subclass, declare METRICS, implement :meth:`extract`.

    ``METRICS`` maps metric name -> unit string ("" for dimensionless).
    :meth:`extract` receives the cell (a
    :class:`~repro.campaign.model.CampaignCell`) and the raw completion
    record, and returns a dict whose keys are a subset of ``METRICS``.
    """

    name: str = ""
    METRICS: dict[str, str] = {}

    def extract(self, cell: Any, record: Mapping[str, Any]) -> dict[str, Any]:
        raise NotImplementedError

    def header(self) -> tuple[str, ...]:
        """Stable column order for tabular exporters."""
        return tuple(self.METRICS)


_EXTRACTORS: dict[str, MetricExtractor] = {}


def register_extractor(cls: type) -> type:
    """Class decorator: instantiate and register under ``cls.name``."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    _EXTRACTORS[instance.name] = instance
    return cls


def metric_extractor(name: str) -> MetricExtractor:
    """Look up an extractor; unknown names raise with the valid list."""
    extractor = _EXTRACTORS.get(name)
    if extractor is None:
        raise ValueError(
            f"unknown metric extractor {name!r}; valid: {', '.join(sorted(_EXTRACTORS))}"
        )
    return extractor


def extractor_names() -> tuple[str, ...]:
    return tuple(sorted(_EXTRACTORS))


@register_extractor
class HplExtractor(MetricExtractor):
    """Structured HPL metrics from a campaign completion record.

    The analogue of hpcbench's ``HPLExtractor`` — size/grid/time/flops plus
    the derived figures the paper reports: TFLOPS, fraction of the grid's
    aggregate peak, and whether the run degraded (fault injection).
    """

    name = "hpl"
    METRICS = {
        "size_n": "",
        "size_p": "",
        "size_q": "",
        "gflops": "GFlop/s",
        "tflops": "TFlop/s",
        "time": "s",
        "efficiency": "fraction of peak",
        "degraded": "",
        "scheduler": "",
        "machine": "",
        "fault": "",
        "bcast": "",
        "rep": "",
    }

    def extract(self, cell: Any, record: Mapping[str, Any]) -> dict[str, Any]:
        from repro.campaign.model import machine_preset

        gflops = float(record["gflops"])
        peak = machine_preset(cell.machine).peak_gflops(cell.grid)
        return {
            "size_n": cell.n,
            "size_p": cell.grid[0],
            "size_q": cell.grid[1],
            "gflops": gflops,
            "tflops": gflops / 1e3,
            "time": float(record["elapsed"]),
            "efficiency": gflops / peak if peak > 0 else 0.0,
            "degraded": record.get("degraded"),
            "scheduler": cell.scheduler,
            "machine": cell.machine,
            "fault": cell.fault,
            "bcast": cell.bcast,
            "rep": cell.rep,
        }


@register_extractor
class RawExtractor(MetricExtractor):
    """Pass the completion record through untouched (debugging aid)."""

    name = "raw"
    METRICS = {
        "scheduler": "",
        "n": "",
        "seed": "",
        "gflops": "GFlop/s",
        "elapsed": "s",
        "degraded": "",
    }

    def extract(self, cell: Any, record: Mapping[str, Any]) -> dict[str, Any]:
        return {key: record.get(key) for key in self.METRICS}


def extract_metrics(
    extractor: "str | MetricExtractor",
    cell: Any,
    record: Optional[Mapping[str, Any]],
) -> dict[str, Any]:
    """One cell's metrics (``{}`` for a cell with no record, e.g. mid-resume)."""
    if isinstance(extractor, str):
        extractor = metric_extractor(extractor)
    if record is None:
        return {}
    return extractor.extract(cell, record)
