"""A simulated message-passing substrate (the mvapich2 of this reproduction).

Ranks are DES processes inside one :class:`~repro.sim.Simulator`; messages
move through :class:`~repro.machine.interconnect.Interconnect` with real
latency/bandwidth costs and land in per-rank mailboxes.  The API mirrors the
mpi4py conventions the HPL port needs: point-to-point ``send``/``recv`` and
the collectives HPL's panel broadcast relies on (binomial and ring
broadcast, allreduce, gather, barrier) — all written as generators so rank
code simply ``yield from comm.bcast(...)``.
"""

from repro.mpi.comm import SimComm, SimMPI, payload_nbytes

__all__ = ["SimMPI", "SimComm", "payload_nbytes"]
