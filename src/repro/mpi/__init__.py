"""A simulated message-passing substrate (the mvapich2 of this reproduction).

Ranks are DES processes inside one :class:`~repro.sim.Simulator`; messages
move through :class:`~repro.machine.interconnect.Interconnect` with real
latency/bandwidth costs and land in per-rank mailboxes.  The API mirrors the
mpi4py conventions the HPL port needs: point-to-point ``send``/``recv``, the
full collective set (``bcast``/``gather``/``scatterv``/``allgather``/
``reduce``/``allreduce``/``barrier``), sub-communicators via
``comm.split(color, key)`` and :class:`~repro.mpi.group.Group`, and HPL's
panel-broadcast algorithm family (:mod:`repro.mpi.bcast`: ``binomial``,
``1ring``, ``1rm``, ``long``) — all written as generators so rank code
simply ``yield from comm.bcast(...)``.
"""

from repro.mpi.bcast import BCAST_ALGORITHMS, canonical_algorithm
from repro.mpi.comm import (
    CollectiveComm,
    CollectiveDeadlockError,
    SimComm,
    SimMPI,
    payload_nbytes,
    run_ranks,
)
from repro.mpi.group import Group

__all__ = [
    "BCAST_ALGORITHMS",
    "CollectiveComm",
    "CollectiveDeadlockError",
    "Group",
    "SimComm",
    "SimMPI",
    "canonical_algorithm",
    "payload_nbytes",
    "run_ranks",
]
