"""Simulated communicator: mailboxes + interconnect timing + collectives.

Semantics:

* ``send`` is *rendezvous-free*: the returned generator completes when the
  message has been injected and delivered to the destination mailbox (one
  alpha-beta network traversal).
* ``recv`` blocks (in virtual time) until a matching ``(source, tag)``
  message is available; messages between the same pair with the same tag
  arrive in order.
* Collectives are generator functions; every participating rank must call
  the same collective.  When the simulator drains with ranks still waiting
  inside one, :func:`run_ranks` turns the drained-calendar error into a
  :class:`CollectiveDeadlockError` naming the stuck ranks, the collective,
  and the tag.

The full collective set (``bcast``/``gather``/``scatterv``/``allgather``/
``reduce``/``allreduce``/``barrier``/``split``) lives in
:class:`CollectiveComm` and is written against *local-rank* primitives, so
the world communicator (:class:`SimComm`) and any sub-communicator
(:class:`~repro.mpi.group.Group`, including the ones ``split`` builds) share
one implementation.  Panel-broadcast algorithms (HPL's BCAST family) live in
:mod:`repro.mpi.bcast`.

Payload sizes are taken from the objects themselves (numpy arrays report
their real ``nbytes``), so algorithmic message volumes are faithful.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Callable, Generator, Optional

import numpy as np

from repro.machine.interconnect import Interconnect
from repro.mpi.bcast import ALGORITHMS, canonical_algorithm
from repro.sim import Event, SimulationError, Simulator
from repro.util.validation import require


def payload_nbytes(obj: Any) -> float:
    """Wire size of a message payload.

    Arrays report their true ``nbytes`` (0-byte arrays are free); containers
    add 16 bytes of framing per element; dataclasses are costed field by
    field; an object may pin its own wire size via a ``wire_nbytes``
    attribute (the zero-byte filler pieces of the ``long`` broadcast do).
    """
    if obj is None:
        return 8.0
    if isinstance(obj, np.ndarray):
        return float(obj.nbytes)
    wire = getattr(obj, "wire_nbytes", None)
    if wire is not None and not callable(wire):
        return float(wire)
    if isinstance(obj, (bool, int, float, np.integer, np.floating, np.bool_)):
        return 8.0
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(x) for x in obj) + 16.0
    if isinstance(obj, dict):
        return (
            sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
            + 16.0 * len(obj)
        )
    if isinstance(obj, (bytes, bytearray, str)):
        return float(len(obj))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = dataclasses.fields(obj)
        return (
            sum(payload_nbytes(getattr(obj, f.name)) for f in fields)
            + 16.0 * len(fields)
        )
    return 64.0  # pickled small object


class _Message:
    """A posted payload with its routing metadata.

    ``taken`` supports the mailbox's lazy multi-index invalidation: a message
    consumed through one index leaves flagged carcasses in the others, which
    are discarded when they surface at a deque front.
    """

    __slots__ = ("src", "tag", "payload", "taken")

    def __init__(self, src: int, tag: Any, payload: Any) -> None:
        self.src = src
        self.tag = tag
        self.payload = payload
        self.taken = False


#: Interned-tag sentinel for unhashable tags (they ride the wildcard path).
_UNHASHABLE = -1


class _Mailbox:
    """Per-rank in-order mailbox with (source, tag) matching.

    The matching hot path is keyed, not scanned: every message is indexed
    under its interned ``tag_id * n_ranks + src`` key and under its bare
    ``tag_id``, both arrival-ordered, so the collective machinery's exact
    ``(source, tag)`` receives and gather's ``(ANY, tag)`` receives are O(1)
    dict+deque operations regardless of how much unrelated traffic is
    buffered.  A full arrival-order deque backs the rare wildcard receives
    (``source=None``/``tag=None`` through the public API, unhashable tags).
    Consuming through one index marks the message ``taken``; stale carcasses
    in the other indexes are popped lazily when they reach a deque front
    (every index is pruned as it is touched, so garbage stays bounded by the
    live backlog in FIFO workloads).

    Pending receives (waiters) are the matching structures mirrored: keyed
    deques of ``(seq, event)`` plus a wildcard list, with a global sequence
    so a delivery always wakes the **earliest-posted** matching waiter —
    exactly the FIFO semantics of the old single-deque predicate scan.
    """

    __slots__ = (
        "sim",
        "n_ranks",
        "_by_key",
        "_by_tag",
        "_arrivals",
        "_wait_by_key",
        "_wait_by_tag",
        "_wait_wild",
        "_wseq",
    )

    def __init__(self, sim: Simulator, n_ranks: int) -> None:
        self.sim = sim
        self.n_ranks = n_ranks
        self._by_key: dict[int, deque[_Message]] = {}
        self._by_tag: dict[int, deque[_Message]] = {}
        self._arrivals: deque[_Message] = deque()
        self._wait_by_key: dict[int, deque[tuple[int, Event]]] = {}
        self._wait_by_tag: dict[int, deque[tuple[int, Event]]] = {}
        self._wait_wild: list[tuple[int, Optional[int], Any, Event]] = []
        self._wseq = 0

    def deliver(self, message: _Message, tag_id: int) -> None:
        src = message.src
        # Earliest-posted matching waiter wins, across all waiter classes.
        best_seq: Optional[int] = None
        key = -1
        key_q = tag_q = None
        if tag_id != _UNHASHABLE:
            key = tag_id * self.n_ranks + src
            key_q = self._wait_by_key.get(key)
            if key_q:
                best_seq = key_q[0][0]
            tag_q = self._wait_by_tag.get(tag_id)
            if tag_q and (best_seq is None or tag_q[0][0] < best_seq):
                best_seq = tag_q[0][0]
        wild_at = -1
        if self._wait_wild:
            tag = message.tag
            for i, (seq, w_src, w_tag, _event) in enumerate(self._wait_wild):
                if best_seq is not None and seq > best_seq:
                    break
                if (w_src is None or w_src == src) and (w_tag is None or w_tag == tag):
                    best_seq = seq
                    wild_at = i
                    break
        if best_seq is not None:
            if wild_at >= 0:
                event = self._wait_wild.pop(wild_at)[3]
            elif key_q and key_q[0][0] == best_seq:
                event = key_q.popleft()[1]
            else:
                assert tag_q is not None
                event = tag_q.popleft()[1]
            event.succeed(message)
            return
        # No waiter: index the message (pruning each front as it is touched).
        arrivals = self._arrivals
        while arrivals and arrivals[0].taken:
            arrivals.popleft()
        arrivals.append(message)
        if tag_id != _UNHASHABLE:
            bucket = self._by_key.get(key)
            if bucket is None:
                self._by_key[key] = deque((message,))
            else:
                while bucket and bucket[0].taken:
                    bucket.popleft()
                bucket.append(message)
            bucket = self._by_tag.get(tag_id)
            if bucket is None:
                self._by_tag[tag_id] = deque((message,))
            else:
                while bucket and bucket[0].taken:
                    bucket.popleft()
                bucket.append(message)

    def _next_seq(self) -> int:
        seq = self._wseq
        self._wseq = seq + 1
        return seq

    def take_exact(self, key: int) -> Event:
        """Receive the earliest message matching an interned (tag, src) key."""
        event = Event(self.sim)
        bucket = self._by_key.get(key)
        if bucket:
            while bucket:
                message = bucket.popleft()
                if not message.taken:
                    message.taken = True
                    event.succeed(message)
                    return event
        waiters = self._wait_by_key.get(key)
        if waiters is None:
            waiters = self._wait_by_key[key] = deque()
        waiters.append((self._next_seq(), event))
        return event

    def take_tag(self, tag_id: int) -> Event:
        """Receive the earliest message with this tag from any source."""
        event = Event(self.sim)
        bucket = self._by_tag.get(tag_id)
        if bucket:
            while bucket:
                message = bucket.popleft()
                if not message.taken:
                    message.taken = True
                    event.succeed(message)
                    return event
        waiters = self._wait_by_tag.get(tag_id)
        if waiters is None:
            waiters = self._wait_by_tag[tag_id] = deque()
        waiters.append((self._next_seq(), event))
        return event

    def take_wild(self, source: Optional[int], tag: Any) -> Event:
        """Receive by linear arrival-order scan (wildcards, unhashable tags)."""
        event = Event(self.sim)
        arrivals = self._arrivals
        while arrivals and arrivals[0].taken:
            arrivals.popleft()
        for i, message in enumerate(arrivals):
            if message.taken:
                continue
            if (source is None or message.src == source) and (
                tag is None or message.tag == tag
            ):
                message.taken = True
                del arrivals[i]
                event.succeed(message)
                return event
        self._wait_wild.append((self._next_seq(), source, tag, event))
        return event


class CollectiveDeadlockError(SimulationError):
    """The calendar drained while ranks were blocked inside a collective."""


class SimMPI:
    """The world: one communicator handle per rank over one interconnect.

    With ``record_log=True`` every message injection and delivery is appended
    to :attr:`log` as ``(kind, time, src, dst, tag, nbytes)`` tuples (kind is
    ``"post"`` or ``"dlv"``, tags stringified via ``repr``) — the event trace
    the determinism tests compare byte-for-byte between runs.
    """

    def __init__(
        self,
        sim: Simulator,
        n_ranks: int,
        interconnect: Optional[Interconnect] = None,
        record_log: bool = False,
    ) -> None:
        require(n_ranks >= 1, "n_ranks must be >= 1")
        self.sim = sim
        self.n_ranks = n_ranks
        self.network = interconnect
        self._mailboxes = [_Mailbox(sim, n_ranks) for _ in range(n_ranks)]
        self.messages_sent = 0
        self.bytes_sent = 0.0
        self.log: Optional[list[tuple]] = [] if record_log else None
        # Tag interning: every distinct tag value gets a small integer id
        # (and a cached repr for the record_log), so the mailbox hot path
        # works on pre-hashed int keys instead of re-hashing tuple tags and
        # re-formatting strings per message.
        self._tag_ids: dict[Any, int] = {}
        self._tag_reprs: list[str] = []
        # Per-rank stack of (collective name, tag) currently entered; a
        # non-empty stack after the calendar drains means that rank is stuck.
        self._in_collective: list[list[tuple[str, Any]]] = [
            [] for _ in range(n_ranks)
        ]

    def comm(self, rank: int) -> "SimComm":
        require(0 <= rank < self.n_ranks, f"rank {rank} out of range")
        return SimComm(self, rank)

    def comms(self) -> list["SimComm"]:
        """One communicator per rank (convenience for spawning rank processes)."""
        return [self.comm(r) for r in range(self.n_ranks)]

    def _transit(self, src: int, dst: int, nbytes: float) -> Event:
        if self.network is None:
            return self.sim.timeout(0.0)
        return self.network.send(src, dst, nbytes)

    def _intern_tag(self, tag: Any) -> int:
        """The small-int id (and cached repr) for *tag*.

        Unhashable tags get the :data:`_UNHASHABLE` sentinel and travel the
        mailbox's wildcard scan path instead of the keyed indexes.
        """
        try:
            tag_id = self._tag_ids.get(tag)
        except TypeError:
            return _UNHASHABLE
        if tag_id is None:
            tag_id = len(self._tag_reprs)
            self._tag_ids[tag] = tag_id
            self._tag_reprs.append(repr(tag))
        return tag_id

    def _post(self, src: int, dst: int, tag: Any, payload: Any) -> Event:
        """Inject a message; returns the delivery event."""
        nbytes = payload_nbytes(payload)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        tag_id = self._intern_tag(tag)
        if self.log is not None:
            tag_repr = repr(tag) if tag_id == _UNHASHABLE else self._tag_reprs[tag_id]
            self.log.append(("post", self.sim.now, src, dst, tag_repr, nbytes))
        transit = self._transit(src, dst, nbytes)
        done = Event(self.sim)

        def on_arrival(_event: Event) -> None:
            if self.log is not None:
                self.log.append(("dlv", self.sim.now, src, dst, tag_repr, nbytes))
            self._mailboxes[dst].deliver(_Message(src, tag, payload), tag_id)
            done.succeed(None)

        transit.add_callback(on_arrival)
        return done

    # -- blocked-collective bookkeeping -------------------------------------------
    def _collective_enter(self, rank: int, name: str, tag: Any) -> None:
        self._in_collective[rank].append((name, tag))

    def _collective_exit(self, rank: int) -> None:
        self._in_collective[rank].pop()

    def blocked_collectives(self) -> dict[int, tuple[str, Any]]:
        """rank -> (collective, tag) for every rank inside a collective now.

        Innermost entry per rank (a barrier blocks in its allreduce's bcast:
        the bcast is reported).  Empty when no rank is mid-collective.
        """
        return {
            rank: stack[-1]
            for rank, stack in enumerate(self._in_collective)
            if stack
        }

    def describe_blocked(self) -> str:
        blocked = self.blocked_collectives()
        parts = [
            f"rank {rank} in {name}(tag={tag!r})"
            for rank, (name, tag) in blocked.items()
        ]
        return (
            "simulation deadlocked with ranks blocked in collectives: "
            + "; ".join(parts)
        )


class CollectiveComm:
    """The shared collective set, over abstract local-rank primitives.

    Subclasses provide :attr:`size`, ``_lrank`` (this process's rank within
    the communicator), ``_world``/``_world_rank`` (for deadlock bookkeeping),
    and the ``_lisend``/``_lirecv``/``_lirecv_any`` event primitives; every
    collective below is expressed purely in those, so world and
    sub-communicators behave identically.
    """

    # -- subclass surface ---------------------------------------------------------
    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def _lrank(self) -> int:
        raise NotImplementedError

    @property
    def _world(self) -> SimMPI:
        raise NotImplementedError

    @property
    def _world_rank(self) -> int:
        raise NotImplementedError

    def _lisend(self, payload: Any, dest: int, tag: Any) -> Event:
        raise NotImplementedError

    def _lirecv(self, source: int, tag: Any) -> Event:
        raise NotImplementedError

    def _lirecv_any(self, tag: Any) -> Event:
        raise NotImplementedError

    def _world_rank_of(self, local: int) -> int:
        """Translate a local rank to a world rank."""
        raise NotImplementedError

    def _base_comm(self) -> "SimComm":
        """This process's world communicator (for building sub-groups)."""
        raise NotImplementedError

    def _tag_space(self) -> Any:
        """A communicator-identifying value used to namespace derived comms."""
        raise NotImplementedError

    # -- blocking wrappers the algorithms use -------------------------------------
    def _lsend(self, payload: Any, dest: int, tag: Any) -> Generator[Event, Any, None]:
        yield self._lisend(payload, dest, tag)

    def _lrecv(self, source: int, tag: Any) -> Generator[Event, Any, Any]:
        message = yield self._lirecv(source, tag)
        return message.payload

    def _lrecv_any(self, tag: Any) -> Generator[Event, Any, Any]:
        message = yield self._lirecv_any(tag)
        return message.payload

    def _lsendrecv(self, payload: Any, peer: int, tag: Any) -> Generator[Event, Any, Any]:
        self._lisend(payload, peer, tag)
        message = yield self._lirecv(peer, tag)
        return message.payload

    # -- collectives --------------------------------------------------------------
    def bcast(
        self,
        payload: Any,
        root: int = 0,
        algorithm: str = "binomial",
        tag: Any = "__bcast__",
    ) -> Generator[Event, Any, Any]:
        """Broadcast from *root*; returns the payload on every rank.

        *algorithm* selects the HPL BCAST family member (see
        :mod:`repro.mpi.bcast`): ``binomial``, ``1ring`` (alias ``ring``),
        ``1rm``, or ``long``.
        """
        fn = ALGORITHMS[canonical_algorithm(algorithm)]
        if self.size == 1:
            return payload
        self._world._collective_enter(self._world_rank, "bcast", tag)
        try:
            return (yield from fn(self, payload, root, tag))
        finally:
            self._world._collective_exit(self._world_rank)

    def gather(
        self, payload: Any, root: int = 0, tag: Any = "__gather__"
    ) -> Generator[Event, Any, Optional[list]]:
        """Gather payloads to *root*; returns the rank-ordered list there."""
        self._world._collective_enter(self._world_rank, "gather", tag)
        try:
            if self._lrank != root:
                yield from self._lsend((self._lrank, payload), root, tag)
                return None
            items: dict[int, Any] = {root: payload}
            for _ in range(self.size - 1):
                src, item = yield from self._lrecv_any(tag)
                items[src] = item
            return [items[r] for r in range(self.size)]
        finally:
            self._world._collective_exit(self._world_rank)

    def scatterv(
        self, parts: Optional[list], root: int = 0, tag: Any = "__scatterv__"
    ) -> Generator[Event, Any, Any]:
        """Scatter one piece per rank from *root*; returns this rank's piece.

        *parts* (length ``size``, possibly ragged — hence the ``v``) is only
        read on the root; other ranks pass ``None``.
        """
        self._world._collective_enter(self._world_rank, "scatterv", tag)
        try:
            if self._lrank == root:
                parts = list(parts)
                require(
                    len(parts) == self.size,
                    f"scatterv needs {self.size} parts, got {len(parts)}",
                )
                for r in range(self.size):
                    if r != root:
                        yield from self._lsend(parts[r], r, tag)
                return parts[root]
            return (yield from self._lrecv(root, tag))
        finally:
            self._world._collective_exit(self._world_rank)

    def allgather(
        self, payload: Any, tag: Any = "__allgather__"
    ) -> Generator[Event, Any, list]:
        """Every rank's payload on every rank (ring algorithm, P-1 rounds)."""
        self._world._collective_enter(self._world_rank, "allgather", tag)
        try:
            p = self.size
            items: list[Any] = [None] * p
            items[self._lrank] = payload
            right = (self._lrank + 1) % p
            left = (self._lrank - 1) % p
            current = payload
            for k in range(p - 1):
                yield from self._lsend(current, right, (tag, k))
                current = yield from self._lrecv(left, (tag, k))
                items[(self._lrank - k - 1) % p] = current
            return items
        finally:
            self._world._collective_exit(self._world_rank)

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        root: int = 0,
        tag: Any = "__reduce__",
    ) -> Generator[Event, Any, Any]:
        """Binomial-tree reduction to *root* (None elsewhere).

        Combination is absolute-rank-ordered (the MPI contract for
        non-commutative ``op``): the tree folds toward rank 0 in rank order
        — each rank combines its own block before the higher block it
        receives — and the total hops to *root* when the two differ.
        """
        self._world._collective_enter(self._world_rank, "reduce", tag)
        try:
            p = self.size
            r = self._lrank
            mask = 1
            while mask < p:
                if r & mask:
                    yield from self._lsend(value, r - mask, (tag, mask))
                    value = None
                    break
                if r + mask < p:
                    other = yield from self._lrecv(r + mask, (tag, mask))
                    value = op(value, other)
                mask <<= 1
            if root != 0:
                if r == 0:
                    yield from self._lsend(value, root, (tag, "root"))
                    value = None
                elif r == root:
                    value = yield from self._lrecv(0, (tag, "root"))
            return value
        finally:
            self._world._collective_exit(self._world_rank)

    def allreduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        tag: Any = "__allreduce__",
    ) -> Generator[Event, Any, Any]:
        """Reduce-to-all via recursive doubling (works for any power; falls
        back to gather+bcast for non-power-of-two sizes)."""
        p = self.size
        if p == 1:
            return value
        self._world._collective_enter(self._world_rank, "allreduce", tag)
        try:
            if p & (p - 1) == 0:
                mask = 1
                while mask < p:
                    peer = self._lrank ^ mask
                    other = yield from self._lsendrecv(value, peer, (tag, mask))
                    value = op(value, other) if self._lrank < peer else op(other, value)
                    mask <<= 1
                return value
            gathered = yield from self.gather(value, root=0, tag=(tag, "g"))
            if self._lrank == 0:
                total = gathered[0]
                for item in gathered[1:]:
                    total = op(total, item)
            else:
                total = None
            return (yield from self.bcast(total, root=0, tag=(tag, "b")))
        finally:
            self._world._collective_exit(self._world_rank)

    def barrier(self) -> Generator[Event, Any, None]:
        """Synchronise all ranks."""
        yield from self.allreduce(0, tag="__barrier__")

    def split(
        self, color: Any, key: Optional[int] = None, tag: Any = "__split__"
    ) -> Generator[Event, Any, Optional["Any"]]:
        """MPI_Comm_split: partition this communicator by *color*.

        Collective — every rank must call it.  Returns a
        :class:`~repro.mpi.group.Group` containing the ranks that passed the
        same color, ordered by ``(key, local rank)`` (``key=None`` keeps rank
        order, matching ``MPI_UNDEFINED``-free usage); ranks passing
        ``color=None`` participate in the exchange but get ``None`` back.
        """
        entries = yield from self.allgather((color, key, self._lrank), tag=(tag, "x"))
        if color is None:
            return None
        ranked = sorted(
            ((k if k is not None else lr, lr) for c, k, lr in entries if c == color)
        )
        members = [self._world_rank_of(lr) for _, lr in ranked]
        from repro.mpi.group import Group  # deferred: group imports this module

        return Group(
            self._base_comm(),
            members,
            tag_space=(self._tag_space(), "split", color),
        )


class SimComm(CollectiveComm):
    """One rank's view of the world (mpi4py-flavoured API)."""

    def __init__(self, world: SimMPI, rank: int) -> None:
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        return self.world.n_ranks

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    # -- point to point -----------------------------------------------------------
    def isend(self, payload: Any, dest: int, tag: Any = 0) -> Event:
        """Post a send; the event completes on delivery."""
        require(0 <= dest < self.size, f"dest {dest} out of range")
        return self.world._post(self.rank, dest, tag, payload)

    def send(self, payload: Any, dest: int, tag: Any = 0) -> Generator[Event, Any, None]:
        """Blocking send (generator): completes when delivered."""
        yield self.isend(payload, dest, tag)

    def irecv(self, source: Optional[int] = None, tag: Any = None) -> Event:
        """Post a receive; the event succeeds with the matching message."""
        mailbox = self.world._mailboxes[self.rank]
        if tag is None:
            return mailbox.take_wild(source, None)
        tag_id = self.world._intern_tag(tag)
        if tag_id == _UNHASHABLE:
            return mailbox.take_wild(source, tag)
        if source is None:
            return mailbox.take_tag(tag_id)
        return mailbox.take_exact(tag_id * self.world.n_ranks + source)

    def recv(
        self, source: Optional[int] = None, tag: Any = None
    ) -> Generator[Event, Any, Any]:
        """Blocking receive (generator): returns the payload."""
        message = yield self.irecv(source, tag)
        return message.payload

    def sendrecv(
        self, payload: Any, peer: int, tag: Any = 0
    ) -> Generator[Event, Any, Any]:
        """Simultaneous exchange with *peer* (both sides must call it)."""
        self.isend(payload, peer, tag)
        message = yield self.irecv(peer, tag)
        return message.payload

    # -- CollectiveComm surface ---------------------------------------------------
    @property
    def _lrank(self) -> int:
        return self.rank

    @property
    def _world(self) -> SimMPI:
        return self.world

    @property
    def _world_rank(self) -> int:
        return self.rank

    def _lisend(self, payload: Any, dest: int, tag: Any) -> Event:
        return self.isend(payload, dest, tag)

    def _lirecv(self, source: int, tag: Any) -> Event:
        return self.irecv(source, tag)

    def _lirecv_any(self, tag: Any) -> Event:
        return self.irecv(None, tag)

    def _world_rank_of(self, local: int) -> int:
        return local

    def _base_comm(self) -> "SimComm":
        return self

    def _tag_space(self) -> Any:
        return "world"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimComm rank {self.rank}/{self.size}>"


def run_ranks(
    sim: Simulator,
    world: SimMPI,
    rank_main: Callable[[SimComm], Generator[Event, Any, Any]],
    name: str = "rank",
) -> list:
    """Spawn ``rank_main(comm)`` on every rank and run all to completion.

    Returns the per-rank return values (rank order).  A drained calendar
    with ranks still inside a collective becomes a
    :class:`CollectiveDeadlockError` naming the stuck ranks, the collective,
    and the tag — instead of the engine's generic deadlock message.
    """
    procs = [
        sim.process(rank_main(comm), name=f"{name}{comm.rank}")
        for comm in world.comms()
    ]
    try:
        sim.run(until=sim.all_of(procs))
    except SimulationError as err:
        if world.blocked_collectives():
            raise CollectiveDeadlockError(world.describe_blocked()) from err
        raise
    return [proc.value for proc in procs]
