"""Simulated communicator: mailboxes + interconnect timing + collectives.

Semantics:

* ``send`` is *rendezvous-free*: the returned generator completes when the
  message has been injected and delivered to the destination mailbox (one
  alpha-beta network traversal).
* ``recv`` blocks (in virtual time) until a matching ``(source, tag)``
  message is available; messages between the same pair with the same tag
  arrive in order.
* Collectives are generator functions; every participating rank must call
  the same collective (deadlocks surface as the simulator's drained-calendar
  error rather than a hang).

Payload sizes are taken from the objects themselves (numpy arrays report
their real ``nbytes``), so algorithmic message volumes are faithful.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

import numpy as np

from repro.machine.interconnect import Interconnect
from repro.sim import Event, Simulator
from repro.util.validation import require


def payload_nbytes(obj: Any) -> float:
    """Wire size of a message payload."""
    if obj is None:
        return 8.0
    if isinstance(obj, np.ndarray):
        return float(obj.nbytes)
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8.0
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(x) for x in obj) + 16.0
    if isinstance(obj, dict):
        return sum(payload_nbytes(v) for v in obj.values()) + 16.0 * len(obj)
    if isinstance(obj, (bytes, bytearray, str)):
        return float(len(obj))
    return 64.0  # pickled small object


@dataclass
class _Message:
    src: int
    tag: Any
    payload: Any


class _Mailbox:
    """Per-rank in-order mailbox with (source, tag) matching."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._queue: deque[_Message] = deque()
        self._waiters: deque[tuple[Callable[[_Message], bool], Event]] = deque()

    def deliver(self, message: _Message) -> None:
        for i, (predicate, event) in enumerate(self._waiters):
            if predicate(message):
                del self._waiters[i]
                event.succeed(message)
                return
        self._queue.append(message)

    def take(self, predicate: Callable[[_Message], bool]) -> Event:
        event = Event(self.sim)
        for i, message in enumerate(self._queue):
            if predicate(message):
                del self._queue[i]
                event.succeed(message)
                return event
        self._waiters.append((predicate, event))
        return event


class SimMPI:
    """The world: one communicator handle per rank over one interconnect."""

    def __init__(
        self,
        sim: Simulator,
        n_ranks: int,
        interconnect: Optional[Interconnect] = None,
    ) -> None:
        require(n_ranks >= 1, "n_ranks must be >= 1")
        self.sim = sim
        self.n_ranks = n_ranks
        self.network = interconnect
        self._mailboxes = [_Mailbox(sim) for _ in range(n_ranks)]
        self.messages_sent = 0
        self.bytes_sent = 0.0

    def comm(self, rank: int) -> "SimComm":
        require(0 <= rank < self.n_ranks, f"rank {rank} out of range")
        return SimComm(self, rank)

    def comms(self) -> list["SimComm"]:
        """One communicator per rank (convenience for spawning rank processes)."""
        return [self.comm(r) for r in range(self.n_ranks)]

    def _transit(self, src: int, dst: int, nbytes: float) -> Event:
        if self.network is None:
            return self.sim.timeout(0.0)
        return self.network.send(src, dst, nbytes)

    def _post(self, src: int, dst: int, tag: Any, payload: Any) -> Event:
        """Inject a message; returns the delivery event."""
        nbytes = payload_nbytes(payload)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        transit = self._transit(src, dst, nbytes)
        done = Event(self.sim)

        def on_arrival(_event: Event) -> None:
            self._mailboxes[dst].deliver(_Message(src, tag, payload))
            done.succeed(None)

        transit.add_callback(on_arrival)
        return done


class SimComm:
    """One rank's view of the world (mpi4py-flavoured API)."""

    def __init__(self, world: SimMPI, rank: int) -> None:
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        return self.world.n_ranks

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    # -- point to point -----------------------------------------------------------
    def isend(self, payload: Any, dest: int, tag: Any = 0) -> Event:
        """Post a send; the event completes on delivery."""
        require(0 <= dest < self.size, f"dest {dest} out of range")
        return self.world._post(self.rank, dest, tag, payload)

    def send(self, payload: Any, dest: int, tag: Any = 0) -> Generator[Event, Any, None]:
        """Blocking send (generator): completes when delivered."""
        yield self.isend(payload, dest, tag)

    def irecv(self, source: Optional[int] = None, tag: Any = None) -> Event:
        """Post a receive; the event succeeds with the matching message."""

        def predicate(msg: _Message) -> bool:
            return (source is None or msg.src == source) and (tag is None or msg.tag == tag)

        return self.world._mailboxes[self.rank].take(predicate)

    def recv(
        self, source: Optional[int] = None, tag: Any = None
    ) -> Generator[Event, Any, Any]:
        """Blocking receive (generator): returns the payload."""
        message = yield self.irecv(source, tag)
        return message.payload

    def sendrecv(
        self, payload: Any, peer: int, tag: Any = 0
    ) -> Generator[Event, Any, Any]:
        """Simultaneous exchange with *peer* (both sides must call it)."""
        self.isend(payload, peer, tag)
        message = yield self.irecv(peer, tag)
        return message.payload

    # -- collectives --------------------------------------------------------------
    def bcast(
        self,
        payload: Any,
        root: int = 0,
        algorithm: str = "binomial",
        tag: Any = "__bcast__",
    ) -> Generator[Event, Any, Any]:
        """Broadcast from *root*; returns the payload on every rank.

        ``binomial`` is the MPICH-style tree (log2 P rounds); ``ring`` is the
        pipeline-friendly chain HPL favours for long panel messages.
        """
        require(algorithm in ("binomial", "ring"), f"unknown algorithm {algorithm!r}")
        p = self.size
        if p == 1:
            return payload
        if algorithm == "ring":
            rel = (self.rank - root) % p
            if rel != 0:
                payload = yield from self.recv(source=(self.rank - 1) % p, tag=tag)
            if rel != p - 1:
                yield from self.send(payload, (self.rank + 1) % p, tag=tag)
            return payload
        # Binomial tree on relative ranks.
        rel = (self.rank - root) % p
        mask = 1
        while mask < p:
            if rel & mask:
                src = ((rel - mask) + root) % p
                payload = yield from self.recv(source=src, tag=tag)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if rel + mask < p:
                dst = (rel + mask + root) % p
                yield from self.send(payload, dst, tag=tag)
            mask >>= 1
        return payload

    def gather(
        self, payload: Any, root: int = 0, tag: Any = "__gather__"
    ) -> Generator[Event, Any, Optional[list]]:
        """Gather payloads to *root*; returns the rank-ordered list there."""
        if self.rank != root:
            yield from self.send((self.rank, payload), root, tag=tag)
            return None
        items: dict[int, Any] = {root: payload}
        for _ in range(self.size - 1):
            src_rank, item = yield from self.recv(tag=tag)
            items[src_rank] = item
        return [items[r] for r in range(self.size)]

    def allreduce(
        self, value: Any, op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        tag: Any = "__allreduce__",
    ) -> Generator[Event, Any, Any]:
        """Reduce-to-all via recursive doubling (works for any power; falls
        back to gather+bcast for non-power-of-two sizes)."""
        p = self.size
        if p == 1:
            return value
        if p & (p - 1) == 0:
            mask = 1
            while mask < p:
                peer = self.rank ^ mask
                other = yield from self.sendrecv(value, peer, tag=(tag, mask))
                value = op(value, other) if self.rank < peer else op(other, value)
                mask <<= 1
            return value
        gathered = yield from self.gather(value, root=0, tag=(tag, "g"))
        if self.rank == 0:
            total = gathered[0]
            for item in gathered[1:]:
                total = op(total, item)
        else:
            total = None
        return (yield from self.bcast(total, root=0, tag=(tag, "b")))

    def barrier(self) -> Generator[Event, Any, None]:
        """Synchronise all ranks."""
        yield from self.allreduce(0, tag="__barrier__")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimComm rank {self.rank}/{self.size}>"
