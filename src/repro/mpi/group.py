"""Rank subgroups: collectives over a subset of world ranks.

HPL communicates along process-grid rows (panel broadcast) and columns
(pivot exchanges, U broadcast).  A :class:`Group` wraps a world communicator
plus an ordered member list and inherits the full collective set from
:class:`~repro.mpi.comm.CollectiveComm` on translated ranks, so grid code
can say ``yield from row_group.bcast(...)``.  ``comm.split(color, key)``
builds these (the simulated MPI_Comm_split); :meth:`ProcessGrid.row_comm`
and :meth:`ProcessGrid.col_comm <repro.hpl.grid.ProcessGrid>` build them
directly from grid topology without a collective exchange.

Messages inside a group travel with tags namespaced by ``tag_space`` so two
groups over the same ranks (e.g. a row and a column sharing a corner rank)
never steal each other's traffic.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from repro.mpi.comm import CollectiveComm, SimComm, SimMPI
from repro.sim import Event
from repro.util.validation import require


class Group(CollectiveComm):
    """An ordered subset of world ranks, viewed from one member."""

    def __init__(self, comm: SimComm, members: Sequence[int], tag_space: Any = "grp") -> None:
        members = list(members)
        require(len(members) >= 1, "a group needs at least one member")
        require(len(set(members)) == len(members), "duplicate ranks in group")
        require(comm.rank in members, f"rank {comm.rank} not in group {members}")
        self.comm = comm
        self.members = members
        self.local_rank = members.index(comm.rank)
        self.tag_space = tag_space
        # Namespaced-tag memo: grid collectives reuse a small set of tags per
        # group, so the (tag_space, tag) wrapper tuple is built once per tag
        # instead of once per message.
        self._tag_memo: dict[Any, Any] = {}

    @property
    def size(self) -> int:
        return len(self.members)

    def _tag(self, tag: Any) -> Any:
        memo = self._tag_memo
        try:
            cached = memo.get(tag)
        except TypeError:  # unhashable tag: build the wrapper each time
            return (self.tag_space, tag)
        if cached is None:
            cached = memo[tag] = (self.tag_space, tag)
        return cached

    # -- point to point (local-rank addressed) ------------------------------------
    def send(self, payload: Any, dest_local: int, tag: Any = 0) -> Generator[Event, Any, None]:
        """Send to the group member at *dest_local*."""
        yield from self.comm.send(payload, self.members[dest_local], tag=self._tag(tag))

    def recv(self, source_local: int, tag: Any = 0) -> Generator[Event, Any, Any]:
        """Receive from the group member at *source_local*."""
        return (yield from self.comm.recv(source=self.members[source_local], tag=self._tag(tag)))

    # -- CollectiveComm surface ---------------------------------------------------
    @property
    def _lrank(self) -> int:
        return self.local_rank

    @property
    def _world(self) -> SimMPI:
        return self.comm.world

    @property
    def _world_rank(self) -> int:
        return self.comm.rank

    def _lisend(self, payload: Any, dest: int, tag: Any) -> Event:
        return self.comm.isend(payload, self.members[dest], self._tag(tag))

    def _lirecv(self, source: int, tag: Any) -> Event:
        return self.comm.irecv(self.members[source], self._tag(tag))

    def _lirecv_any(self, tag: Any) -> Event:
        return self.comm.irecv(None, self._tag(tag))

    def _world_rank_of(self, local: int) -> int:
        return self.members[local]

    def _base_comm(self) -> SimComm:
        return self.comm

    def _tag_space(self) -> Any:
        return self.tag_space

    # -- compat wrappers (historical ``root_local`` spelling) ---------------------
    def bcast(  # type: ignore[override]
        self,
        payload: Any,
        root_local: int = 0,
        algorithm: str = "binomial",
        tag: Any = "__b__",
    ) -> Generator[Event, Any, Any]:
        """Broadcast from the member at *root_local* to the whole group."""
        return (
            yield from CollectiveComm.bcast(
                self, payload, root=root_local, algorithm=algorithm, tag=tag
            )
        )

    def gather(  # type: ignore[override]
        self, payload: Any, root_local: int = 0, tag: Any = "__g__"
    ) -> Generator[Event, Any, Optional[list]]:
        """Gather members' payloads (local-rank order) at *root_local*."""
        return (
            yield from CollectiveComm.gather(self, payload, root=root_local, tag=tag)
        )

    def scatterv(  # type: ignore[override]
        self, parts: Optional[list], root_local: int = 0, tag: Any = "__sv__"
    ) -> Generator[Event, Any, Any]:
        """Scatter one piece per member from *root_local*."""
        return (
            yield from CollectiveComm.scatterv(self, parts, root=root_local, tag=tag)
        )

    def reduce(  # type: ignore[override]
        self,
        value: Any,
        op=lambda a, b: a + b,
        root_local: int = 0,
        tag: Any = "__r__",
    ) -> Generator[Event, Any, Any]:
        """Reduce to the member at *root_local* (None elsewhere)."""
        return (
            yield from CollectiveComm.reduce(self, value, op=op, root=root_local, tag=tag)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Group {self.members} local {self.local_rank} tags {self.tag_space!r}>"
