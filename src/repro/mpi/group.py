"""Rank subgroups: collectives over a subset of world ranks.

HPL communicates along process-grid rows (panel broadcast) and columns
(pivot exchanges, U broadcast).  A :class:`Group` wraps a world communicator
plus an ordered member list and re-implements the collectives on translated
ranks, so grid code can say ``yield from row_group.bcast(...)``.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.mpi.comm import SimComm
from repro.sim import Event
from repro.util.validation import require


class Group:
    """An ordered subset of world ranks, viewed from one member."""

    def __init__(self, comm: SimComm, members: Sequence[int], tag_space: Any = "grp") -> None:
        members = list(members)
        require(len(members) >= 1, "a group needs at least one member")
        require(len(set(members)) == len(members), "duplicate ranks in group")
        require(comm.rank in members, f"rank {comm.rank} not in group {members}")
        self.comm = comm
        self.members = members
        self.local_rank = members.index(comm.rank)
        self.tag_space = tag_space

    @property
    def size(self) -> int:
        return len(self.members)

    def _tag(self, tag: Any) -> Any:
        return (self.tag_space, tag)

    def send(self, payload: Any, dest_local: int, tag: Any = 0) -> Generator[Event, Any, None]:
        """Send to the group member at *dest_local*."""
        yield from self.comm.send(payload, self.members[dest_local], tag=self._tag(tag))

    def recv(self, source_local: int, tag: Any = 0) -> Generator[Event, Any, Any]:
        """Receive from the group member at *source_local*."""
        return (yield from self.comm.recv(source=self.members[source_local], tag=self._tag(tag)))

    def bcast(
        self, payload: Any, root_local: int = 0, algorithm: str = "binomial", tag: Any = "__b__"
    ) -> Generator[Event, Any, Any]:
        """Broadcast from the member at *root_local* to the whole group."""
        p = self.size
        if p == 1:
            return payload
        rel = (self.local_rank - root_local) % p
        if algorithm == "ring":
            if rel != 0:
                payload = yield from self.recv((self.local_rank - 1) % p, tag=tag)
            if rel != p - 1:
                yield from self.send(payload, (self.local_rank + 1) % p, tag=tag)
            return payload
        mask = 1
        while mask < p:
            if rel & mask:
                src = (rel - mask + root_local) % p
                payload = yield from self.recv(src, tag=tag)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if rel + mask < p:
                yield from self.send(payload, (rel + mask + root_local) % p, tag=tag)
            mask >>= 1
        return payload

    def gather(
        self, payload: Any, root_local: int = 0, tag: Any = "__g__"
    ) -> Generator[Event, Any, Any]:
        """Gather members' payloads (local-rank order) at *root_local*."""
        if self.local_rank != root_local:
            yield from self.send((self.local_rank, payload), root_local, tag=tag)
            return None
        items = {root_local: payload}
        for _ in range(self.size - 1):
            src, item = yield from self.comm.recv(tag=self._tag(tag))
            items[src] = item
        return [items[i] for i in range(self.size)]
