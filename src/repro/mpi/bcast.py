"""HPL's panel-broadcast algorithm family, over simulated communicators.

HPL.dat's ``BCAST`` option selects how a factored panel travels along a
process row.  This module implements the three families the paper's Linpack
inherits (plus the generic binomial tree the rest of the code uses):

* ``binomial`` — MPICH-style tree: ``ceil(log2 P)`` rounds, each moving the
  full payload.  Latency-optimal for short messages.
* ``1ring`` — HPL's *increasing ring*: the root sends to the next process,
  which forwards to the next, and so on.  ``P - 1`` hops of the full
  payload, but each link is used once, so a segmenting implementation
  pipelines to ~2 message times (the analytic model accounts exactly that).
* ``1rm`` — *increasing ring, modified*: the process immediately after the
  root receives the panel directly and is exempt from forwarding, so the
  owner of the *next* panel can start factoring it at once (the reason HPL
  pairs this variant with look-ahead).  The chain runs from ``root + 2``.
* ``long`` — the bandwidth-reducing spread-roll (scatter + ring allgather):
  the root scatters ``P`` pieces, then ``P - 1`` allgather rounds roll every
  piece around the ring.  Each rank moves ~``2 (P-1)/P`` of the payload
  instead of the full panel — the volume-optimal choice for long messages.

Every algorithm is a generator function over the local-rank send/recv
primitives of :class:`~repro.mpi.comm.CollectiveComm`, so it runs unchanged
on the world communicator, a :class:`~repro.mpi.group.Group`, or anything
``comm.split`` returns.
"""

from __future__ import annotations

from typing import Any

import numpy as np

#: The canonical algorithm names, in HPL BCAST order.
BCAST_ALGORITHMS = ("binomial", "1ring", "1rm", "long")

#: Accepted spellings -> canonical names ("ring" predates the HPL family).
ALGORITHM_ALIASES = {
    "ring": "1ring",
    "increasing_ring": "1ring",
    "increasing_ring_modified": "1rm",
    "1rM": "1rm",
    "lng": "long",
}


def canonical_algorithm(name: str) -> str:
    """Resolve *name* (or an alias) to a canonical algorithm, or raise."""
    resolved = ALGORITHM_ALIASES.get(name, name)
    if resolved not in BCAST_ALGORITHMS:
        valid = ", ".join(BCAST_ALGORITHMS + tuple(ALGORITHM_ALIASES))
        raise ValueError(f"unknown broadcast algorithm {name!r}; valid: {valid}")
    return resolved


class _Filler:
    """Placeholder piece of an unsplittable payload (zero wire bytes)."""

    __slots__ = ()
    wire_nbytes = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<filler>"


FILLER = _Filler()


def split_payload(payload: Any, parts: int) -> list:
    """Split *payload* into *parts* pieces for the scatter phase of ``long``.

    Arrays split along axis 0 (pieces may be empty when there are fewer rows
    than ranks); tuples and lists split element-wise, preserving structure;
    anything else travels whole as piece 0 with zero-byte fillers behind it,
    so the numerics stay exact even for opaque payloads.
    """
    if parts <= 1:
        return [payload]
    if isinstance(payload, np.ndarray) and payload.ndim >= 1:
        return list(np.array_split(payload, parts, axis=0))
    if isinstance(payload, (tuple, list)):
        element_parts = [split_payload(element, parts) for element in payload]
        ctor = type(payload)
        return [ctor(ep[i] for ep in element_parts) for i in range(parts)]
    return [payload] + [FILLER] * (parts - 1)


def join_payload(parts: list) -> Any:
    """Inverse of :func:`split_payload` (pieces in original order)."""
    first = parts[0]
    if len(parts) == 1:
        return first
    if isinstance(first, np.ndarray):
        return np.concatenate(parts, axis=0)
    if isinstance(first, (tuple, list)):
        ctor = type(first)
        return ctor(
            join_payload([p[i] for p in parts]) for i in range(len(first))
        )
    return first


# -- the algorithms (generator functions over local-rank primitives) ----------
def bcast_binomial(comm, payload, root, tag):
    """MPICH-style binomial tree on relative ranks."""
    p = comm.size
    rel = (comm._lrank - root) % p
    mask = 1
    while mask < p:
        if rel & mask:
            src = (rel - mask + root) % p
            payload = yield from comm._lrecv(src, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if rel + mask < p:
            yield from comm._lsend(payload, (rel + mask + root) % p, tag)
        mask >>= 1
    return payload


def bcast_1ring(comm, payload, root, tag):
    """HPL's increasing ring: a chain from the root."""
    p = comm.size
    rel = (comm._lrank - root) % p
    if rel != 0:
        payload = yield from comm._lrecv((comm._lrank - 1) % p, tag)
    if rel != p - 1:
        yield from comm._lsend(payload, (comm._lrank + 1) % p, tag)
    return payload


def bcast_1rm(comm, payload, root, tag):
    """Increasing ring, modified: ``root + 1`` receives early, never forwards."""
    p = comm.size
    if p <= 2:
        return (yield from bcast_1ring(comm, payload, root, tag))
    rel = (comm._lrank - root) % p
    if rel == 0:
        # Serve the next panel's owner first, then seed the chain.
        yield from comm._lsend(payload, (root + 1) % p, tag)
        yield from comm._lsend(payload, (root + 2) % p, tag)
    elif rel == 1:
        payload = yield from comm._lrecv(root % p, tag)
    else:
        src = root % p if rel == 2 else (comm._lrank - 1) % p
        payload = yield from comm._lrecv(src, tag)
        if rel != p - 1:
            yield from comm._lsend(payload, (comm._lrank + 1) % p, tag)
    return payload


def bcast_long(comm, payload, root, tag):
    """Bandwidth-reducing spread-roll: scatter pieces, then ring allgather."""
    p = comm.size
    if p == 1:
        return payload
    rel = (comm._lrank - root) % p
    if rel == 0:
        pieces = split_payload(payload, p)
        mine = pieces[0]
        for r in range(1, p):
            yield from comm._lsend(pieces[r], (root + r) % p, (tag, "sc"))
    else:
        mine = yield from comm._lrecv(root % p, (tag, "sc"))
    # Ring allgather: in round k every rank passes the piece it holds to the
    # right and receives its left neighbour's, so after P-1 rounds everyone
    # holds all P pieces (indexed by relative rank).
    pieces = [None] * p
    pieces[rel] = mine
    right = (comm._lrank + 1) % p
    left = (comm._lrank - 1) % p
    current = mine
    for k in range(p - 1):
        yield from comm._lsend(current, right, (tag, "ag", k))
        current = yield from comm._lrecv(left, (tag, "ag", k))
        pieces[(rel - k - 1) % p] = current
    return join_payload(pieces)


ALGORITHMS = {
    "binomial": bcast_binomial,
    "1ring": bcast_1ring,
    "1rm": bcast_1rm,
    "long": bcast_long,
}
