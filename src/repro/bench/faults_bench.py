"""``repro.bench faults`` — adaptive vs static under injected hard faults.

The experiment the paper's Section IV argument implies but never shows: a
GPU thermal emergency downclocks the card mid-run (750 -> 575 MHz scaled to
``clock_factor``).  The adaptive configuration rebalances, sheds enough GPU
load for the card to cool, and gets its clock back; the static peak-trained
split keeps feeding the hot GPU and rides the throttle to the finish line.
The figure plots each configuration's per-step rate as a fraction of its own
fault-free run (same seed, so the noise realisation cancels exactly and any
deviation from 1.0 is the fault).

Two side studies ride along: a permanent GPU dropout (the adaptive run must
continue at the ``cpu`` configuration's rates — the ``cpu_only_dgemm``
fallback), and a DES-level PCIe retry storm through the software pipeline
(populating the ``faults.pcie_retries`` counter the report's telemetry
section shows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.bench.report import SeriesData
from repro.core.pipeline import SoftwarePipeline
from repro.exec import run_tasks
from repro.core.taskqueue import build_task_queue
from repro.faults import (
    FaultInjector,
    FaultSpec,
    GpuDropout,
    GpuThrottle,
    PcieFaultSpec,
)
from repro.hpl.driver import Configuration
from repro.machine.node import ComputeElement
from repro.machine.presets import tianhe1_element
from repro.machine.variability import NO_VARIABILITY
from repro.session import Scenario, run
from repro.sim import Simulator

#: Throttle depth of the injected thermal emergency (deeper than the paper's
#: 575/750 so the static configuration's loss is unmistakable in a table).
THROTTLE_CLOCK_FACTOR = 0.55
#: GSplit at or below this counts as shed load (cooling) for the hot GPU.
SHED_THRESHOLD = 0.86
#: Fraction of the clean run time at which the throttle fires / must be shed.
THROTTLE_AT_FRACTION = 0.35
RECOVERY_FRACTION = 0.18


def _step_rates(result) -> np.ndarray:
    return np.array([s.flops / s.step_time for s in result.analytic.steps])


def _tail_ratio(faulted, clean, tail_fraction: float = 0.2) -> float:
    """Mean faulted/clean per-step rate over the last *tail_fraction* steps."""
    ratios = _step_rates(faulted) / _step_rates(clean)
    tail = max(1, int(len(ratios) * tail_fraction))
    return float(np.mean(ratios[-tail:]))


@dataclass(frozen=True)
class ThrottleRecovery:
    """One configuration's mid-run-throttle experiment, summarised.

    ``recovery`` is the mean faulted/clean per-step rate over the run's tail
    — 1.0 means the configuration fully regained its pre-throttle rate (the
    GPU cooled and was restored), deep below 1.0 means it rode the throttle
    to the finish line.
    """

    configuration: Configuration
    n: int
    seed: int
    clean: object
    faulted: object
    recovery: float
    step_ratios: tuple[float, ...]

    @property
    def recovered(self) -> bool:
        """Did the run regain >= 90% of its fault-free rate after the fault?"""
        return self.recovery >= 0.90


def throttle_recovery(
    configuration: Configuration,
    n: int = 60000,
    seed: int = 11,
    clock_factor: float = THROTTLE_CLOCK_FACTOR,
    tail_fraction: float = 0.2,
) -> ThrottleRecovery:
    """Run the mid-run thermal-throttle experiment for one configuration.

    Clean and faulted runs share the seed, so the noise realisation cancels
    exactly in the per-step ratios and any deviation from 1.0 is the fault.
    The throttle fires at 35% of the clean run and needs the load shed below
    :data:`SHED_THRESHOLD` for ``RECOVERY_FRACTION`` of the run to lift.
    """
    clean = run(Scenario(scheduler=configuration, n=n, seed=seed, collect_steps=True))
    throttle = GpuThrottle(
        at=THROTTLE_AT_FRACTION * clean.elapsed,
        clock_factor=clock_factor,
        shed_threshold=SHED_THRESHOLD,
        recovery_s=RECOVERY_FRACTION * clean.elapsed,
    )
    faulted = run(
        Scenario(
            scheduler=configuration,
            n=n,
            seed=seed,
            collect_steps=True,
            faults=FaultSpec(throttles=(throttle,)),
        )
    )
    ratios = _step_rates(faulted) / _step_rates(clean)
    return ThrottleRecovery(
        configuration=configuration,
        n=n,
        seed=seed,
        clean=clean,
        faulted=faulted,
        recovery=_tail_ratio(faulted, clean, tail_fraction),
        step_ratios=tuple(float(r) for r in ratios),
    )


def _pcie_retry_storm(seed: int, telemetry) -> int:
    """One pipelined task queue under a PCIe fault window; returns retries."""
    sim = Simulator()
    element = ComputeElement(sim, tianhe1_element(), variability=NO_VARIABILITY)
    injector = FaultInjector(
        FaultSpec(pcie=PcieFaultSpec(fail_probability=0.12, max_retries=10)),
        n_elements=1,
        seed=seed,
        telemetry=telemetry,
    )
    pipe = SoftwarePipeline(element, jitter=False, fault_injector=injector)
    queue = build_task_queue(16384, 16384, 1216, beta_nonzero=False, gpu_memory_bytes=1e9)
    result = sim.run(until=sim.process(pipe.execute(queue, 300e9)))
    return result.retries


def faults_study(n: int = 60000, seed: int = 11) -> SeriesData:
    """The adaptive-vs-static degradation figure plus fault-model summaries."""
    telemetry = obs.current()
    own_telemetry = telemetry is None
    if own_telemetry:
        telemetry = obs.Telemetry()

    data = SeriesData(
        title="Faults — per-step rate under a mid-run GPU thermal throttle "
        f"(fraction of each configuration's fault-free run, N={n})",
        x_label="panel step",
        y_label="rate / fault-free rate",
    )

    with obs.use(telemetry):
        # run_tasks rather than a loop: uncached (results carry full step
        # traces, not JSON), and serial whenever telemetry is ambient — which
        # it always is here — but the task accounting still shows up in the
        # report's exec.* counters.
        throttle_configs = (Configuration.ACMLG_BOTH, Configuration.STATIC_PEAK)
        studies = run_tasks(
            throttle_recovery,
            [dict(configuration=config, n=n, seed=seed) for config in throttle_configs],
        )
        results: dict[Configuration, ThrottleRecovery] = {}
        for config, study in zip(throttle_configs, studies):
            results[config] = study
            for step, ratio in enumerate(study.step_ratios):
                data.add_point(config.label, step, ratio)
            data.summary[
                f"{config.label}: post-fault rate vs fault-free (last 20% of steps)"
            ] = study.recovery
            data.summary[
                f"{config.label}: faulted GFLOPS (clean {study.clean.gflops:.1f})"
            ] = study.faulted.gflops
            events = ", ".join(
                f"{e.kind}@{e.time:.1f}s" for e in study.faulted.degraded.events
            )
            data.summary[f"{config.label}: fault events"] = events

        data.summary["adaptive recovered >= 90% of pre-throttle rate"] = (
            results[Configuration.ACMLG_BOTH].recovered
        )
        data.summary["static recovered >= 90% of pre-throttle rate"] = (
            results[Configuration.STATIC_PEAK].recovered
        )

        # -- permanent dropout: adaptive must land on the cpu configuration's
        # rates (the cpu_only_dgemm fallback), not the crippled failsafe.
        dropped = run(
            Scenario(
                scheduler=Configuration.ACMLG_BOTH,
                n=n // 2,
                seed=seed,
                variability=NO_VARIABILITY,
                collect_steps=True,
                faults=FaultSpec(dropouts=(GpuDropout(at=0.0),)),
            )
        )
        cpu_only = run(
            Scenario(
                scheduler=Configuration.ACMLG_BOTH,
                n=n // 2,
                seed=seed,
                variability=NO_VARIABILITY,
                collect_steps=True,
                overrides={"mapping": "cpu_only"},
            )
        )
        update_gap = max(
            abs(a.update_time - b.update_time)
            for a, b in zip(dropped.analytic.steps, cpu_only.analytic.steps)
        )
        data.summary["dropout: max per-step update gap vs cpu_only (s)"] = update_gap

        # -- DES path: PCIe fault window, bounded retry+backoff.
        retries = _pcie_retry_storm(seed, telemetry)
        data.summary["pcie retry storm: transfers retried (DES pipeline)"] = retries

    if own_telemetry:
        data.attach_telemetry(telemetry)
    return data
