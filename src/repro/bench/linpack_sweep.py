"""Fig. 9 (Linpack by size, five configurations) and Fig. 10 (GSplit vs
workload).

Fig. 9 uses the analytic stepper on a single compute element at the standard
750 MHz clock.  Fig. 10 replays the paper's exact procedure with the DES
executor: run the Linpack sequence of trailing-update DGEMMs through the
adaptive framework ("The databases used in the adaptive method is just the
initial version.  During the running ... the databases are updated
continuously") and read ``database_g`` afterwards.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.report import SeriesData
from repro.core.adaptive import AdaptiveMapper
from repro.core.hybrid_dgemm import HybridDgemm
from repro.exec import ResultCache, current, evaluate_points, run_tasks, scenario_key
from repro.hpl.driver import CONFIGURATIONS, Configuration, single_element_cluster
from repro.hpl.grid import ProcessGrid
from repro.machine.node import ComputeElement
from repro.machine.presets import NB_GPU, tianhe1_element
from repro.machine.variability import VariabilitySpec
from repro.model import calibration as cal
from repro.session import Scenario, run
from repro.sim import Simulator
from repro.util.rng import RngStream
from repro.util.units import GFLOP, dgemm_flops

DEFAULT_SIZES = (5750, 11500, 23000, 34500, 46000)


def _fig9_point(
    configuration: str, n: int, variability: Optional[VariabilitySpec], seed: int
) -> float:
    """One Fig. 9 cell through the scalar oracle (the pool/cache worker)."""
    return run(
        Scenario(scheduler=configuration, n=n, variability=variability, seed=seed)
    ).gflops


def _fig9_config_batch(
    configuration: str,
    sizes: Sequence[int],
    variability: Optional[VariabilitySpec],
    seed: int,
) -> list[float]:
    """One configuration's whole size sweep through the batch stepper."""
    from repro.hpl.batch import batch_linpack

    cluster = single_element_cluster(variability=variability)
    results = batch_linpack(configuration, sizes, cluster, ProcessGrid(1, 1), seed=seed)
    return [result.gflops for result in results]


def _fig9_values(
    configs: Sequence[Configuration],
    sizes: Sequence[int],
    variability: Optional[VariabilitySpec],
    seed: int,
) -> dict[Configuration, dict[int, float]]:
    """GFLOPS per (configuration, size) under the ambient execution policy.

    Scalar path: every cell is an independent cached/pooled task.  Vectorized
    path: each configuration's misses evaluate as *one* batch-stepper task
    (the size axis collapses into array ops), fanned across configurations.
    The two paths cache under different task names — batch values agree with
    the oracle to 1e-9, not bit-for-bit, so they must not masquerade as it.
    """
    policy = current()
    values: dict[Configuration, dict[int, float]] = {c: {} for c in configs}
    if not policy.vectorize:
        flat = evaluate_points(
            "fig9.point",
            _fig9_point,
            [
                dict(configuration=str(c), n=n, variability=variability, seed=seed)
                for c in configs
                for n in sizes
            ],
        )
        it = iter(flat)
        for c in configs:
            for n in sizes:
                values[c][n] = next(it)
        return values

    cache = ResultCache(policy.resolved_cache_dir) if policy.cache else None
    missing: dict[Configuration, list[int]] = {}
    for c in configs:
        for n in sizes:
            if cache is not None:
                key = scenario_key(
                    "fig9.batch",
                    dict(configuration=str(c), n=n, variability=variability, seed=seed),
                )
                hit, value = cache.get(key)
                policy.stats.count_cache(hit)
                if hit:
                    values[c][n] = value
                    continue
            missing.setdefault(c, []).append(n)
    if missing:
        computed = run_tasks(
            _fig9_config_batch,
            [
                dict(configuration=str(c), sizes=ns, variability=variability, seed=seed)
                for c, ns in missing.items()
            ],
        )
        for (c, ns), gflops in zip(missing.items(), computed):
            for n, value in zip(ns, gflops):
                values[c][n] = value
                if cache is not None:
                    key = scenario_key(
                        "fig9.batch",
                        dict(
                            configuration=str(c), n=n, variability=variability, seed=seed
                        ),
                    )
                    cache.put(
                        key,
                        value,
                        task="fig9.batch",
                        args=dict(
                            configuration=str(c), n=n, variability=variability, seed=seed
                        ),
                    )
    return values


def fig9_linpack_sweep(
    sizes: Sequence[int] = DEFAULT_SIZES,
    variability: VariabilitySpec = None,
    seed: int = 7,
    configs: Sequence[str] = tuple(CONFIGURATIONS),
) -> SeriesData:
    """Regenerate Fig. 9 plus the Section VI.B headline comparisons.

    *configs* accepts any HPL-capable scheduler spec — legacy configuration
    keys (the paper's five) or canonical :mod:`repro.sched` registry names;
    spellings are preserved, so cache keys and series labels are stable.
    """
    from repro.sched.builds import CONFIG_LABELS, resolve_hpl_build

    data = SeriesData(
        title="Fig 9 — Linpack performance by matrix size (GFLOPS, one compute element)",
        x_label="N",
        y_label="GFLOPS",
    )
    configs = tuple(resolve_hpl_build(c)[0] for c in configs)
    values = _fig9_values(configs, sizes, variability, seed)
    for n in sizes:
        for config in configs:
            data.add_point(CONFIG_LABELS.get(config, config), n, values[config][n])
    top = max(sizes)
    if "acmlg_both" in configs:
        best = values["acmlg_both"][top]
        data.summary[f"ACMLG+both at N={top} (paper 196.7 GFLOPS)"] = best
        data.summary["fraction of 280.5 GFLOPS element peak (paper 70.1%)"] = (
            best * 1e9 / cal.ELEMENT_PEAK
        )
        if "acmlg" in configs:
            data.summary["speedup over ACMLG (paper 3.3x)"] = best / values["acmlg"][top]
        if "cpu" in configs:
            data.summary["speedup over CPU-only (paper 5.49x)"] = best / values["cpu"][top]
    return data


def fig10_split_ratio(
    n: int = 30000,
    nb: int = NB_GPU,
    variability: VariabilitySpec = None,
    seed: int = 3,
    n_bins: int = 64,
) -> SeriesData:
    """Regenerate Fig. 10: the GPU split ratio stored per workload bin.

    Runs the Linpack trailing-update sequence (M = N_t, K = NB) through the
    DES hybrid executor with the adaptive mapper, then reports every
    ``database_g`` write (workload, new GSplit) plus the final per-bin
    values.  The initial value is the peak ratio 0.889 (Section VI.B).
    """
    var = variability if variability is not None else VariabilitySpec()
    sim = Simulator()
    element = ComputeElement(
        sim, tianhe1_element(), variability=var, rng=RngStream(seed).child("fig10")
    )
    max_workload = dgemm_flops(n, n, nb) * 1.05
    mapper = AdaptiveMapper(element.initial_gsplit, 3, max_workload=max_workload, n_bins=n_bins)
    engine = HybridDgemm(
        element, mapper, pipelined=True, jitter=not var.deterministic
    )
    trailing = n
    while trailing > nb:
        trailing -= nb
        engine.run_to_completion(trailing, trailing, nb)

    data = SeriesData(
        title="Fig 10 — GPU split ratio vs workload (database_g after a Linpack run)",
        x_label="workload (Gflop)",
        y_label="GSplit",
    )
    for write in mapper.database_g.history:
        data.add_point("stored GSplit", write.workload / GFLOP, write.value)
    values = mapper.database_g.values()
    mask = mapper.database_g.written_mask()
    for i in range(n_bins):
        if mask[i]:
            low, high = mapper.database_g.bin_range(i)
            data.add_point("final per-bin value", (low + high) / 2 / GFLOP, float(values[i]))
    data.summary["initial GSplit (paper 0.889)"] = element.initial_gsplit
    knee = cal.SPLIT_KNEE_GFLOP
    below = [v for w, v in data.series.get("stored GSplit", []) if w < knee]
    above = [v for w, v in data.series.get("stored GSplit", []) if w >= knee]
    if below:
        data.summary[f"split spread below {knee:.0f} Gflop (max-min)"] = max(below) - min(below)
    if above:
        data.summary[f"split spread above {knee:.0f} Gflop (max-min)"] = max(above) - min(above)
    return data
