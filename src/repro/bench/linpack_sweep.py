"""Fig. 9 (Linpack by size, five configurations) and Fig. 10 (GSplit vs
workload).

Fig. 9 uses the analytic stepper on a single compute element at the standard
750 MHz clock.  Fig. 10 replays the paper's exact procedure with the DES
executor: run the Linpack sequence of trailing-update DGEMMs through the
adaptive framework ("The databases used in the adaptive method is just the
initial version.  During the running ... the databases are updated
continuously") and read ``database_g`` afterwards.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.report import SeriesData
from repro.core.adaptive import AdaptiveMapper
from repro.core.hybrid_dgemm import HybridDgemm
from repro.hpl.driver import CONFIGURATIONS, Configuration
from repro.machine.node import ComputeElement
from repro.machine.presets import NB_GPU, tianhe1_element
from repro.machine.variability import VariabilitySpec
from repro.model import calibration as cal
from repro.session import Scenario, run
from repro.sim import Simulator
from repro.util.rng import RngStream
from repro.util.units import GFLOP, dgemm_flops

DEFAULT_SIZES = (5750, 11500, 23000, 34500, 46000)


def fig9_linpack_sweep(
    sizes: Sequence[int] = DEFAULT_SIZES,
    variability: VariabilitySpec = None,
    seed: int = 7,
    configs: Sequence[str] = tuple(CONFIGURATIONS),
) -> SeriesData:
    """Regenerate Fig. 9 plus the Section VI.B headline comparisons."""
    data = SeriesData(
        title="Fig 9 — Linpack performance by matrix size (GFLOPS, one compute element)",
        x_label="N",
        y_label="GFLOPS",
    )
    configs = tuple(Configuration.parse(c) for c in configs)
    values: dict[str, dict[int, float]] = {c: {} for c in configs}
    for n in sizes:
        for config in configs:
            result = run(
                Scenario(
                    configuration=config, n=n, variability=variability, seed=seed
                )
            )
            values[config][n] = result.gflops
            data.add_point(config.label, n, result.gflops)
    top = max(sizes)
    if "acmlg_both" in configs:
        best = values["acmlg_both"][top]
        data.summary[f"ACMLG+both at N={top} (paper 196.7 GFLOPS)"] = best
        data.summary["fraction of 280.5 GFLOPS element peak (paper 70.1%)"] = (
            best * 1e9 / cal.ELEMENT_PEAK
        )
        if "acmlg" in configs:
            data.summary["speedup over ACMLG (paper 3.3x)"] = best / values["acmlg"][top]
        if "cpu" in configs:
            data.summary["speedup over CPU-only (paper 5.49x)"] = best / values["cpu"][top]
    return data


def fig10_split_ratio(
    n: int = 30000,
    nb: int = NB_GPU,
    variability: VariabilitySpec = None,
    seed: int = 3,
    n_bins: int = 64,
) -> SeriesData:
    """Regenerate Fig. 10: the GPU split ratio stored per workload bin.

    Runs the Linpack trailing-update sequence (M = N_t, K = NB) through the
    DES hybrid executor with the adaptive mapper, then reports every
    ``database_g`` write (workload, new GSplit) plus the final per-bin
    values.  The initial value is the peak ratio 0.889 (Section VI.B).
    """
    var = variability if variability is not None else VariabilitySpec()
    sim = Simulator()
    element = ComputeElement(
        sim, tianhe1_element(), variability=var, rng=RngStream(seed).child("fig10")
    )
    max_workload = dgemm_flops(n, n, nb) * 1.05
    mapper = AdaptiveMapper(element.initial_gsplit, 3, max_workload=max_workload, n_bins=n_bins)
    engine = HybridDgemm(
        element, mapper, pipelined=True, jitter=not var.deterministic
    )
    trailing = n
    while trailing > nb:
        trailing -= nb
        engine.run_to_completion(trailing, trailing, nb)

    data = SeriesData(
        title="Fig 10 — GPU split ratio vs workload (database_g after a Linpack run)",
        x_label="workload (Gflop)",
        y_label="GSplit",
    )
    for write in mapper.database_g.history:
        data.add_point("stored GSplit", write.workload / GFLOP, write.value)
    values = mapper.database_g.values()
    mask = mapper.database_g.written_mask()
    for i in range(n_bins):
        if mask[i]:
            low, high = mapper.database_g.bin_range(i)
            data.add_point("final per-bin value", (low + high) / 2 / GFLOP, float(values[i]))
    data.summary["initial GSplit (paper 0.889)"] = element.initial_gsplit
    knee = cal.SPLIT_KNEE_GFLOP
    below = [v for w, v in data.series.get("stored GSplit", []) if w < knee]
    above = [v for w, v in data.series.get("stored GSplit", []) if w >= knee]
    if below:
        data.summary[f"split spread below {knee:.0f} Gflop (max-min)"] = max(below) - min(below)
    if above:
        data.summary[f"split spread above {knee:.0f} Gflop (max-min)"] = max(above) - min(above)
    return data
