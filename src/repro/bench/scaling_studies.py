"""Strong scaling and run-energy studies (beyond the paper's weak scaling).

Fig. 12 is a weak-scaling sweep (N grows with the machine).  These
generators add the strong-scaling view (fixed N, growing machine) and the
energy ledger of a full run — including how the Qilin training bill compares
to the energy of the Linpack run itself.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.report import SeriesData
from repro.bench.scaling import GRIDS
from repro.exec import evaluate_points
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.power import TIANHE1_POWER
from repro.machine.presets import DOWNCLOCKED_MHZ, tianhe1_cluster
from repro.model import calibration as cal
from repro.session import Scenario, run


def _strong_scaling_point(cabinets: int, n: int, seed: int) -> float:
    """One machine size at fixed N (the pool/cache worker)."""
    cluster = Cluster(tianhe1_cluster(cabinets=cabinets), seed=2009)
    result = run(
        Scenario(
            scheduler="acmlg_both", n=n, cluster=cluster,
            grid=ProcessGrid(*GRIDS[cabinets]), seed=seed,
        )
    )
    return result.tflops


def strong_scaling(
    n: int = 560_000,
    cabinets: Sequence[int] = (1, 2, 4, 8, 16),
    seed: int = 7,
) -> SeriesData:
    """Fixed problem, growing machine: where communication starts to bite."""
    data = SeriesData(
        title=f"Strong scaling: fixed N={n}, growing machine",
        x_label="cabinets",
        y_label="TFLOPS",
    )
    tflops = evaluate_points(
        "strong_scaling.cabinet",
        _strong_scaling_point,
        [dict(cabinets=cabs, n=n, seed=seed) for cabs in cabinets],
    )
    base = None
    for cabs, value in zip(cabinets, tflops):
        if base is None:
            base = (cabs, value)
        data.add_point("TFLOPS", cabs, value)
        data.add_point(
            "parallel efficiency %", cabs,
            100.0 * value / (base[1] * cabs / base[0]),
        )
    first, last = cabinets[0], cabinets[-1]
    points = dict(data.series["parallel efficiency %"])
    data.summary["parallel efficiency at largest machine"] = points[last] / 100.0
    return data


def run_energy_ledger(seed: int = 7) -> SeriesData:
    """Energy of the full-system Linpack run vs the Qilin training bill."""
    cluster = Cluster(tianhe1_cluster(cabinets=80), seed=2009)
    result = run(Scenario(scheduler="acmlg_both", n=cal.FULL_SYSTEM_N, cluster=cluster, grid=ProcessGrid(64, 80), seed=seed))
    run_kwh = TIANHE1_POWER.energy_kwh(80, result.elapsed, clock_mhz=DOWNCLOCKED_MHZ)
    training_kwh = cal.QILIN_TRAINING_KWH_FULL_SYSTEM
    data = SeriesData(
        title="Energy ledger: one full-system Linpack vs Qilin's training bill",
        x_label="item",
        y_label="kWh",
    )
    data.summary["run wall time (h)"] = result.elapsed / 3600.0
    data.summary["run energy (kWh)"] = run_kwh
    data.summary["Qilin training energy (kWh, paper 2960)"] = training_kwh
    data.summary["training / run energy"] = training_kwh / run_kwh
    data.summary["energy per Pflop (kWh)"] = run_kwh / (result.analytic.flops / 1e15)
    data.summary["TFLOPS"] = result.tflops
    return data
