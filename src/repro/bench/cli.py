"""Command-line entry point: regenerate any of the paper's figures.

Usage::

    python -m repro.bench --list
    python -m repro.bench fig8 [--quick] [--format text|csv|json] [--out FILE]
    python -m repro.bench fig13 --quick --trace-out trace.json --metrics-out m.json
    python -m repro.bench headline

``--quick`` shrinks problem sizes so every figure finishes in seconds —
useful for smoke-testing an installation; full-size runs match
EXPERIMENTS.md.  ``--jobs N`` fans independent scenarios across worker
processes (default: all cores; results are identical to a serial run) and
``--no-cache`` disables the on-disk result cache — a one-line ``exec:``
summary on stderr reports both (see ``docs/performance.md``).  ``--trace-out`` writes a Chrome trace-event JSON file
(open in Perfetto or ``chrome://tracing``) of everything the run recorded —
per-panel HPL spans, pipeline CT/NT states, the figure's own wall-clock
span; ``--metrics-out`` writes the metrics-registry snapshot.  See
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

from repro import exec as exec_policy
from repro import obs
from repro.bench.cabinet import fig11_adaptive_vs_qilin
from repro.bench.dgemm_sweep import fig8_dgemm_sweep
from repro.bench.faults_bench import faults_study
from repro.bench.linpack_sweep import fig9_linpack_sweep, fig10_split_ratio
from repro.bench.fullsystem import fullsystem_bcast_sweep
from repro.bench.pipeline_trace import table1_trace, worked_example
from repro.bench.report import SeriesData
from repro.bench.scaling import fig12_cabinet_scaling, fig13_progress
from repro.bench.whatif import clock_sweep, endgame_fallback_study
from repro.hpl.driver import Configuration
from repro.util.io import atomic_write_text


def _fig8(quick: bool) -> SeriesData:
    sizes = (4096, 10240, 16384) if quick else (2048, 4096, 6144, 8192, 10240, 12288, 14336, 16384)
    return fig8_dgemm_sweep(sizes=sizes)


def _fig9(quick: bool, configurations=None) -> SeriesData:
    sizes = (11500, 23000) if quick else (5750, 11500, 23000, 34500, 46000)
    if configurations is not None:
        return fig9_linpack_sweep(sizes=sizes, configs=configurations)
    return fig9_linpack_sweep(sizes=sizes)


def _fig10(quick: bool) -> SeriesData:
    return fig10_split_ratio(n=12000 if quick else 30000)


def _fig11(quick: bool) -> SeriesData:
    if quick:
        return fig11_adaptive_vs_qilin(proc_counts=(1, 4, 16), seeds=(1,), per_element_n=20000)
    return fig11_adaptive_vs_qilin()


def _fig12(quick: bool) -> SeriesData:
    return fig12_cabinet_scaling(cabinets=(1, 2, 4) if quick else (1, 2, 4, 8, 16, 32, 64, 80))


def _fig13(quick: bool) -> SeriesData:
    if quick:
        return fig13_progress(cabinets=1, n=120_000)
    return fig13_progress()


def _clock_sweep(quick: bool) -> SeriesData:
    return clock_sweep(n=120_000 if quick else 280_000)


def _endgame(quick: bool) -> SeriesData:
    return endgame_fallback_study(n=120_000 if quick else 280_000)


def _faults(quick: bool) -> SeriesData:
    return faults_study(n=30_000 if quick else 60_000)


def _fullsystem(quick: bool) -> SeriesData:
    return fullsystem_bcast_sweep(cabinets=4 if quick else 80)


FIGURES: dict[str, Callable[[bool], SeriesData]] = {
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "clock-sweep": _clock_sweep,
    "endgame-fallback": _endgame,
    "faults": _faults,
    "fullsystem": _fullsystem,
}

#: Artifacts that render straight to text (no series structure).
TEXT_ARTIFACTS = {
    "table1": lambda quick: table1_trace().render(),
    "worked-example": lambda quick: worked_example().render(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "figure",
        nargs="?",
        choices=sorted(FIGURES) + sorted(TEXT_ARTIFACTS),
        help="which artifact to regenerate",
    )
    parser.add_argument("--list", action="store_true", help="list available artifacts")
    parser.add_argument("--quick", action="store_true", help="reduced problem sizes")
    parser.add_argument(
        "--format", choices=("text", "csv", "json"), default="text", help="output format"
    )
    parser.add_argument("--out", default=None, help="write output to a file instead of stdout")
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE.json",
        help="write a Chrome trace-event JSON of the run (Perfetto-loadable)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE.json",
        help="write the telemetry metrics snapshot as JSON",
    )
    parser.add_argument(
        "--ledger",
        nargs="?",
        const=str(obs.DEFAULT_RUNS_ROOT),
        default=None,
        metavar="RUNS_DIR",
        help="record the run as a streaming ledger under RUNS_DIR "
        f"(default root: {obs.DEFAULT_RUNS_ROOT}); readable mid-run and "
        "after a crash via 'python -m repro.obs'",
    )
    parser.add_argument(
        "--scheduler",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict fig9 to this scheduler (repeatable; registry names or "
        "legacy configuration keys — see 'python -m repro.sched list')",
    )
    parser.add_argument(
        "--configurations",
        default=None,
        metavar="NAME[,NAME...]",
        help="deprecated spelling of repeatable --scheduler "
        f"(valid: {', '.join(member.value for member in Configuration)})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for independent scenarios (default: all cores)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="route sweeps through the asyncio session runtime "
        "(repro.session.AsyncSession: fair-share admission over a "
        "persistent worker pool; results identical to the classic pool)",
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list or args.figure is None:
        print("available artifacts:")
        for name in sorted(FIGURES) + sorted(TEXT_ARTIFACTS):
            print(f"  {name}")
        return 0

    requested = list(args.scheduler or [])
    if args.configurations is not None:
        print(
            "--configurations is deprecated; pass a repeatable --scheduler instead",
            file=sys.stderr,
        )
        requested.extend(name.strip() for name in args.configurations.split(","))
    configurations = None
    if requested:
        if args.figure != "fig9":
            print("--scheduler/--configurations only apply to fig9", file=sys.stderr)
            return 2
        from repro.sched.builds import resolve_hpl_build

        try:
            configurations = tuple(resolve_hpl_build(name)[0] for name in requested)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2

    # Telemetry is only constructed when an artifact was requested, so the
    # plain path stays exactly as before (no ambient sink, no-op guards).
    ledger = None
    if args.ledger is not None:
        ledger = obs.RunLedger.open(
            args.figure,
            root=args.ledger,
            config={"quick": args.quick, "format": args.format,
                    "jobs": args.jobs, "cache": not args.no_cache},
        )
        telemetry = ledger.telemetry
        if args.trace_out or args.metrics_out:
            # Tee a recording ring alongside the stream so --trace-out can
            # still export in-process (the ledger itself has 'obs trace').
            telemetry.sink = obs.TeeSink(ledger.sink, obs.RecordingSink())
        print(f"ledger: {ledger.directory}", file=sys.stderr)
    else:
        telemetry = obs.Telemetry() if (args.trace_out or args.metrics_out) else None

    policy = exec_policy.ExecutionPolicy(
        jobs=args.jobs,
        cache=not args.no_cache,
        vectorize=True,
        runtime="async" if args.use_async else None,
    )

    summary: dict = {}
    try:
        with obs.use(telemetry), exec_policy.use(policy):
            if args.figure in TEXT_ARTIFACTS:
                if args.format != "text":
                    print(f"{args.figure} only supports --format text", file=sys.stderr)
                    return 2
                if telemetry is not None:
                    with telemetry.wall_span("bench", args.figure, quick=args.quick):
                        output = TEXT_ARTIFACTS[args.figure](args.quick)
                else:
                    output = TEXT_ARTIFACTS[args.figure](args.quick)
            else:
                figure = FIGURES[args.figure]
                if configurations is not None:
                    figure_fn = lambda quick: _fig9(quick, configurations)
                else:
                    figure_fn = figure
                if telemetry is not None:
                    with telemetry.wall_span("bench", args.figure, quick=args.quick):
                        data = figure_fn(args.quick)
                    data.attach_telemetry(telemetry)
                else:
                    data = figure_fn(args.quick)
                summary = dict(data.summary)
                output = {"text": data.render, "csv": data.to_csv, "json": data.to_json}[args.format]()
    except BaseException as error:
        if ledger is not None:
            ledger.fail(f"{type(error).__name__}: {error}")
        raise

    if telemetry is not None:
        if args.trace_out:
            telemetry.write_chrome_trace(args.trace_out)
        if args.metrics_out:
            telemetry.write_metrics(args.metrics_out)
    if ledger is not None:
        summary["exec"] = policy.summary_line()
        ledger.finish(summary)
    if args.out:
        atomic_write_text(args.out, output + "\n")
    else:
        print(output)
    print(policy.summary_line(), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
