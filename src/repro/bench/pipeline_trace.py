"""Table I (the pipeline schedule shifted in time) and the Section V.A
worked example, regenerated from the executable models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import EO, IDLE, INPUT, N_IDLE, N_INPUT, SoftwarePipeline
from repro.core.taskqueue import build_task_queue
from repro.machine.node import ComputeElement
from repro.machine.pcie import PCIeLink
from repro.machine.presets import PCIE_2, RV770, tianhe1_element
from repro.machine.variability import NO_VARIABILITY
from repro.sim import Simulator
from repro.util.tables import TextTable
from repro.util.units import MB, dgemm_flops, matrix_bytes


@dataclass
class Table1Trace:
    """The reproduced Table I, plus the underlying timing."""

    rows: list[dict[str, str]]
    task_order: list[str]
    duration: float
    overlap_confirmed: bool

    def table(self) -> TextTable:
        table = TextTable(
            ["Row", "Idle", "Input", "EO", "N-Idle", "N-Input"],
            title="Table I — the pipeline shifted in time (CT / NT states)",
        )
        for i, row in enumerate(self.rows):
            table.add_row(i, row[IDLE], row[INPUT], row[EO], row[N_IDLE], row[N_INPUT])
        return table

    def render(self) -> str:
        lines = [self.table().render(), ""]
        lines.append(f"task execution order: {' '.join(self.task_order)} (paper: T0 T1 T3 T2)")
        lines.append(f"NT input overlaps CT EO: {self.overlap_confirmed}")
        return "\n".join(lines)


def table1_trace(n: int = 16384, k: int = 1216) -> Table1Trace:
    """Execute the paper's 2x2 task queue and reconstruct Table I.

    The queue is built from a DGEMM just over the texture limit, so it splits
    into exactly four tasks whose bounce-corner-turn order is T0, T1, T3, T2
    (Fig. 5); the CT/NT state log then reproduces Table I's schedule.
    """
    sim = Simulator()
    element = ComputeElement(sim, tianhe1_element(), variability=NO_VARIABILITY)
    queue = build_task_queue(n, n, k, beta_nonzero=False)
    if queue.grid[:2] != (2, 2):
        raise ValueError(f"expected a 2x2 task grid, got {queue.grid}")
    pipeline = SoftwarePipeline(element, jitter=False, record_states=True)
    rate = element.gpu.kernel_rate(dgemm_flops(n, n, k))
    result = sim.run(until=sim.process(pipeline.execute(queue, rate)))

    # Relabel tasks to the paper's row-major ids (queue order is T0 T1 T3 T2).
    cols = queue.grid[1]
    labels = {t.index: f"T{t.row * cols + t.col}" for t in queue.tasks}
    rows: list[dict[str, str]] = []
    order: list[str] = []
    for rec in result.state_log:
        current = rows[-1].copy() if rows else {IDLE: "", INPUT: "", EO: "", N_IDLE: "", N_INPUT: ""}
        for col in ([IDLE, INPUT, EO] if rec.controller == "CT" else [N_IDLE, N_INPUT]):
            current[col] = ""
        if rec.task is not None:
            current[rec.state] = labels[rec.task]
            if rec.controller == "CT" and rec.state == EO:
                order.append(labels[rec.task])
        rows.append(current)

    eo_spans = []
    nin_times = []
    for rec in result.state_log:
        if rec.controller == "CT" and rec.state == EO:
            eo_spans.append(rec.time)
        if rec.controller == "NT" and rec.state == N_INPUT:
            nin_times.append(rec.time)
    overlap = bool(eo_spans and nin_times and any(t >= eo_spans[0] for t in nin_times))
    return Table1Trace(rows=rows, task_order=order, duration=result.duration, overlap_confirmed=overlap)


@dataclass
class WorkedExample:
    """Section V.A's numbers, recomputed from the models."""

    matrix_mb: float
    transfer_seconds: float
    compute_seconds: float
    workload_gflop: float
    pipelined_gpu_path_seconds: float
    summary: dict = field(default_factory=dict)

    def render(self) -> str:
        table = TextTable(["quantity", "paper", "reproduced"],
                          title="Section V.A worked example (N=10000 DGEMM)")
        table.add_row("matrix size (MB)", 800, f"{self.matrix_mb:.0f}")
        table.add_row("unoptimized transfer (s)", 5.28, f"{self.transfer_seconds:.2f}")
        table.add_row("kernel at 240 GFLOPS peak (s)", 8.33, f"{self.compute_seconds:.2f}")
        table.add_row("workload (Gflop)", 2000, f"{self.workload_gflop:.0f}")
        table.add_row("GPU path with pipelining (s)", "~kernel",
                      f"{self.pipelined_gpu_path_seconds:.2f}")
        return table.render()


def worked_example(n: int = 10000) -> WorkedExample:
    """Recompute the Section V.A example and show what pipelining buys."""
    sim = Simulator()
    link = PCIeLink(sim, PCIE_2)
    matrix = matrix_bytes(n, n)
    transfer = link.duration(3 * matrix, pinned=False)
    workload = dgemm_flops(n, n, n)
    compute = workload / RV770.peak_flops()

    # The same transfer volume, pipelined on a real element (pinned staging,
    # overlap with kernels): the GPU path collapses to roughly kernel time.
    element = ComputeElement(Simulator(), tianhe1_element(), variability=NO_VARIABILITY)
    from repro.core.hybrid_dgemm import HybridDgemm
    from repro.core.static_map import StaticMapper

    engine = HybridDgemm(element, StaticMapper(1.0, 3), pipelined=True, jitter=False)
    result = engine.run_to_completion(n, n, n, beta_nonzero=False)
    return WorkedExample(
        matrix_mb=matrix / MB,
        transfer_seconds=transfer,
        compute_seconds=compute,
        workload_gflop=workload / 1e9,
        pipelined_gpu_path_seconds=result.t_gpu,
    )
