"""What-if studies beyond the paper's measurements.

* :func:`clock_sweep` — the operating-point tradeoff behind Section VI.A's
  750 -> 575 MHz downclock: Linpack performance, power and MFLOPS/W as a
  function of GPU clock, with the thermal-stability constraint overlaid.
* :func:`endgame_fallback_study` — the paper's closing "potential
  optimization": fall back to all four CPU cores when the trailing update
  is too small for the GPU, and measure what it recovers.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.report import SeriesData
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.power import TIANHE1_POWER
from repro.machine.presets import tianhe1_cluster
from repro.machine.variability import ThermalModel
from repro.session import Scenario, run


def clock_sweep(
    clocks_mhz: Sequence[float] = (575.0, 625.0, 675.0, 725.0, 750.0),
    cabinets: int = 1,
    n: int = 280_000,
    seed: int = 7,
) -> SeriesData:
    """Linpack performance / power / efficiency vs GPU core clock."""
    thermal = ThermalModel()
    data = SeriesData(
        title="What-if: GPU clock operating point (one cabinet Linpack)",
        x_label="clock MHz",
        y_label="TFLOPS",
    )
    best_stable = None
    for clock in clocks_mhz:
        cluster = Cluster(tianhe1_cluster(cabinets=cabinets, gpu_clock_mhz=clock), seed=2009)
        result = run(Scenario(scheduler="acmlg_both", n=n, cluster=cluster, grid=ProcessGrid(8, 8), seed=seed))
        kw = TIANHE1_POWER.system_kw(cabinets, clock_mhz=clock)
        green = TIANHE1_POWER.mflops_per_watt(result.gflops * 1e9, cabinets, clock_mhz=clock)
        data.add_point("TFLOPS", clock, result.tflops)
        data.add_point("power kW", clock, kw)
        data.add_point("MFLOPS/W", clock, green)
        data.add_point("die temp C", clock, thermal.temperature(clock))
        if thermal.is_stable(clock):
            best_stable = (clock, result.tflops)
    if best_stable is not None:
        data.summary["fastest thermally-stable clock"] = best_stable[0]
        data.summary["TFLOPS at that clock"] = best_stable[1]
    data.summary["stability limit (C)"] = ThermalModel.STABILITY_LIMIT_C
    data.summary["max stable clock (MHz)"] = thermal.max_stable_clock()
    return data


def endgame_fallback_study(
    n: int = 280_000,
    cabinets: int = 1,
    seed: int = 7,
) -> SeriesData:
    """The paper's future-work optimization, quantified."""
    cluster = Cluster(tianhe1_cluster(cabinets=cabinets), seed=2009)
    grid = ProcessGrid(8, 8)
    base = run(
        Scenario(
            scheduler="acmlg_both", n=n, cluster=cluster, grid=grid,
            seed=seed, collect_steps=True,
        )
    )
    opt = run(
        Scenario(
            scheduler="acmlg_both", n=n, cluster=cluster, grid=grid,
            seed=seed, collect_steps=True,
            overrides={"endgame_cpu_fallback": True},
        )
    )
    data = SeriesData(
        title="What-if: endgame CPU fallback (Section VI.C's 'potential optimization')",
        x_label="progress (%)",
        y_label="TFLOPS",
    )
    for label, result in (("baseline", base), ("with endgame fallback", opt)):
        curve = result.analytic.progress_curve()
        stride = max(1, len(curve) // 25)
        for i in list(range(0, len(curve), stride)) + [len(curve) - 1]:
            fraction, gflops = curve[i]
            data.add_point(label, round(fraction * 100, 2), gflops / 1e3)
    data.summary["baseline TFLOPS"] = base.tflops
    data.summary["optimized TFLOPS"] = opt.tflops
    data.summary["improvement"] = opt.gflops / base.gflops - 1.0
    return data
