"""Fig. 12 (performance scaling by cabinets) and Fig. 13 (performance vs
progress of the full-system run).

Both run the analytic stepper over the real mixed E5540/E5450 population at
the thermally-stable 575 MHz operating point (Section VI.A).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bench.report import SeriesData
from repro.exec import evaluate_points
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.presets import tianhe1_cluster
from repro.model import calibration as cal
from repro.session import Scenario, run

DEFAULT_CABINETS = (1, 2, 4, 8, 16, 32, 64, 80)

#: P x Q grid per cabinet count (64 elements per cabinet, near-square).
GRIDS = {
    1: (8, 8),
    2: (8, 16),
    4: (16, 16),
    8: (16, 32),
    16: (32, 32),
    32: (32, 64),
    64: (64, 64),
    80: (64, 80),
}


def problem_size_for_cabinets(cabinets: int) -> int:
    """N growing with sqrt(cabinets): 280 000 at 1 cabinet, the paper's
    2 240 000 at the full 80 (its quoted range is 280 000 - 2 400 000)."""
    if cabinets == 80:
        return cal.FULL_SYSTEM_N
    return int(round(280_000 * np.sqrt(cabinets) / 1000.0) * 1000)


def _fig12_point(cabinets: int, n: int, seed: int, cluster_seed: int) -> float:
    """One cabinet count of the weak-scaling curve (the pool/cache worker)."""
    cluster = Cluster(tianhe1_cluster(cabinets=cabinets), seed=cluster_seed)
    result = run(
        Scenario(
            scheduler="acmlg_both", n=n, cluster=cluster,
            grid=ProcessGrid(*GRIDS[cabinets]), seed=seed,
        )
    )
    return result.tflops


def fig12_cabinet_scaling(
    cabinets: Sequence[int] = DEFAULT_CABINETS,
    seed: int = 7,
    cluster_seed: int = 2009,
) -> SeriesData:
    """Regenerate Fig. 12 and the 1-to-80-cabinet scaling efficiency."""
    data = SeriesData(
        title="Fig 12 — Linpack performance scaling by cabinets (TFLOPS)",
        x_label="cabinets",
        y_label="TFLOPS",
    )
    for cabs in cabinets:
        if cabs not in GRIDS:
            raise ValueError(f"no grid defined for {cabs} cabinets (have {sorted(GRIDS)})")
    tflops = evaluate_points(
        "fig12.cabinet",
        _fig12_point,
        [
            dict(
                cabinets=cabs,
                n=problem_size_for_cabinets(cabs),
                seed=seed,
                cluster_seed=cluster_seed,
            )
            for cabs in cabinets
        ],
    )
    results: dict[int, float] = dict(zip(cabinets, tflops))
    for cabs in cabinets:
        data.add_point("Linpack (ours)", cabs, results[cabs])
    lo, hi = min(cabinets), max(cabinets)
    data.summary[f"{lo} cabinet(s) (paper 8.02 TFLOPS at 1)"] = results[lo]
    data.summary[f"{hi} cabinets (paper 563.1 TFLOPS at 80)"] = results[hi]
    data.summary["scaling efficiency (paper 87.76% over 1->80)"] = results[hi] / (
        results[lo] * hi / lo
    )
    return data


def fig13_progress(
    n: Optional[int] = None,
    cabinets: int = 80,
    seed: int = 7,
    cluster_seed: int = 2009,
    resolution: int = 40,
) -> SeriesData:
    """Regenerate Fig. 13: cumulative performance vs run progress.

    The paper reads 604.74 TFLOPS at 97.17% progress, dropping ~41.6 TFLOPS
    over the final 2.83% because "the GPU is less effective when the matrix
    size is relatively small".
    """
    n = n if n is not None else (cal.FULL_SYSTEM_N if cabinets == 80 else problem_size_for_cabinets(cabinets))
    cluster = Cluster(tianhe1_cluster(cabinets=cabinets), seed=cluster_seed)
    grid = ProcessGrid(*GRIDS[cabinets])
    result = run(
        Scenario(
            scheduler="acmlg_both", n=n, cluster=cluster, grid=grid,
            seed=seed, collect_steps=True,
        )
    )
    curve = result.analytic.progress_curve()
    data = SeriesData(
        title="Fig 13 — Linpack performance vs progress (full configuration)",
        x_label="progress (%)",
        y_label="TFLOPS",
    )
    # Down-sample the ~1800 steps to a readable table, always keeping the tail.
    stride = max(1, len(curve) // resolution)
    picks = list(range(0, len(curve), stride))
    picks += [i for i in range(len(curve) - 5, len(curve)) if i >= 0]
    for i in sorted(set(p for p in picks if 0 <= p < len(curve))):
        fraction, gflops = curve[i]
        data.add_point("cumulative TFLOPS", round(fraction * 100, 2), gflops / 1e3)
    final = curve[-1][1] / 1e3
    at_9717 = next((g for f, g in curve if f >= cal.PROGRESS_AT_DROP), curve[-1][1]) / 1e3
    data.summary[f"at {cal.PROGRESS_AT_DROP:.2%} progress (paper 604.74 TFLOPS)"] = at_9717
    data.summary["final (paper 563.1 TFLOPS)"] = final
    data.summary["endgame drop (paper ~41.6 TFLOPS)"] = at_9717 - final
    return data
