"""Shared result containers and text/CSV/JSON rendering for the harness."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.util.tables import TextTable


@dataclass
class SeriesData:
    """One figure's data: named series over a common x axis, plus a summary.

    ``series`` maps a display label to ``[(x, y), ...]`` points; ``summary``
    carries the headline comparisons (average gains, anchor values) that
    EXPERIMENTS.md quotes against the paper.
    """

    title: str
    x_label: str
    y_label: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    summary: dict[str, Any] = field(default_factory=dict)
    #: Optional telemetry section: scalar metric summaries captured while
    #: the figure ran (see :meth:`attach_telemetry`).  Rendered after the
    #: summary and included in the JSON export.
    telemetry: dict[str, Any] = field(default_factory=dict)

    def attach_telemetry(self, telemetry) -> None:
        """Fold a :class:`repro.obs.Telemetry`'s metrics into this report."""
        if telemetry is not None:
            self.telemetry.update(telemetry.metrics.scalar_summary())

    def add_point(self, label: str, x: float, y: float) -> None:
        self.series.setdefault(label, []).append((x, y))

    def xs(self) -> list[float]:
        """The union of x values across series, sorted."""
        values: set[float] = set()
        for points in self.series.values():
            values.update(x for x, _ in points)
        return sorted(values)

    def table(self) -> TextTable:
        return series_table(self.title, self.x_label, self.series)

    def render(self) -> str:
        """The table plus the summary lines."""
        lines = [self.table().render()]
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                if isinstance(value, float):
                    lines.append(f"{key}: {value:.4g}")
                else:
                    lines.append(f"{key}: {value}")
        if self.telemetry:
            lines.append("")
            lines.append("telemetry:")
            for key, value in self.telemetry.items():
                if isinstance(value, float):
                    lines.append(f"  {key}: {value:.6g}")
                else:
                    lines.append(f"  {key}: {value}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV with one row per x value and one column per series."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        labels = list(self.series)
        writer.writerow([self.x_label] + labels)
        lookup = {label: dict(points) for label, points in self.series.items()}
        for x in self.xs():
            writer.writerow([x] + [lookup[label].get(x, "") for label in labels])
        return buffer.getvalue()

    def to_json(self) -> str:
        """JSON document with title, axes, series and summary."""
        return json.dumps(
            {
                "title": self.title,
                "x_label": self.x_label,
                "y_label": self.y_label,
                "series": {k: [[x, y] for x, y in v] for k, v in self.series.items()},
                "summary": self.summary,
                "telemetry": self.telemetry,
            },
            indent=2,
            default=float,
        )


def series_table(
    title: str, x_label: str, series: dict[str, Sequence[tuple[float, float]]]
) -> TextTable:
    """Render named series sharing an x axis as one aligned table."""
    labels = list(series)
    table = TextTable([x_label] + labels, title=title)
    xs: list[float] = sorted({x for pts in series.values() for x, _ in pts})
    lookup = {label: dict(points) for label, points in series.items()}
    for x in xs:
        row: list[Any] = [int(x) if float(x).is_integer() else x]
        for label in labels:
            y = lookup[label].get(x)
            row.append("" if y is None else f"{y:.4g}")
        table.add_row(*row)
    return table
