"""Benchmark harness: one data generator per table/figure of the paper.

Each generator returns plain data structures (series of (x, y) points plus a
summary dict) and can render itself as a text table, so the same code backs
``benchmarks/`` (pytest-benchmark targets), ``examples/`` and EXPERIMENTS.md.

| Paper artifact | Generator |
|---|---|
| Table I (pipeline schedule)            | :func:`repro.bench.pipeline_trace.table1_trace` |
| §V.A worked example                    | :func:`repro.bench.pipeline_trace.worked_example` |
| Fig 8 (DGEMM by size, 5 configs)       | :func:`repro.bench.dgemm_sweep.fig8_dgemm_sweep` |
| Fig 9 (Linpack by size, 5 configs)     | :func:`repro.bench.linpack_sweep.fig9_linpack_sweep` |
| Fig 10 (GSplit vs workload)            | :func:`repro.bench.linpack_sweep.fig10_split_ratio` |
| Fig 11 (ours vs Qilin, 1-64 procs)     | :func:`repro.bench.cabinet.fig11_adaptive_vs_qilin` |
| Fig 12 (scaling by cabinets)           | :func:`repro.bench.scaling.fig12_cabinet_scaling` |
| Fig 13 (performance vs progress)       | :func:`repro.bench.scaling.fig13_progress` |
"""

from repro.bench.report import SeriesData, series_table
from repro.bench.dgemm_sweep import fig8_dgemm_sweep
from repro.bench.linpack_sweep import fig9_linpack_sweep, fig10_split_ratio
from repro.bench.cabinet import fig11_adaptive_vs_qilin
from repro.bench.scaling import fig12_cabinet_scaling, fig13_progress
from repro.bench.pipeline_trace import table1_trace, worked_example
from repro.bench.whatif import clock_sweep, endgame_fallback_study

__all__ = [
    "clock_sweep",
    "endgame_fallback_study",
    "SeriesData",
    "series_table",
    "fig8_dgemm_sweep",
    "fig9_linpack_sweep",
    "fig10_split_ratio",
    "fig11_adaptive_vs_qilin",
    "fig12_cabinet_scaling",
    "fig13_progress",
    "table1_trace",
    "worked_example",
]
