"""Fig. 8: DGEMM performance by matrix size for the five configurations.

Exact DES execution on one compute element.  Following Section VI.B: "The
performance from the adaptive method is the second run result and the first
run updates the databases" — adaptive configurations are warmed before the
measured run.  The standalone DGEMM benchmark uses ``beta=0`` (plain
``C = A x B``), matching vendor DGEMM benchmark conventions.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bench.report import SeriesData
from repro.core.adaptive import AdaptiveMapper
from repro.core.hybrid_dgemm import HybridDgemm, cpu_only_dgemm
from repro.core.static_map import StaticMapper
from repro.exec import evaluate_points
from repro.hpl.driver import CONFIG_LABELS
from repro.machine.node import ComputeElement
from repro.machine.presets import tianhe1_element
from repro.machine.variability import NO_VARIABILITY, VariabilitySpec
from repro.sim import Simulator
from repro.util.rng import RngStream
from repro.util.units import dgemm_flops

#: The default size grid (the paper plots up to ~16k; 8192 is the task knee).
DEFAULT_SIZES = (2048, 4096, 6144, 8192, 10240, 12288, 14336, 16384)

DGEMM_CONFIGS = {
    "cpu": None,  # handled specially: all four cores via MKL
    "acmlg": dict(mapper="gpu_only", pipelined=False),
    "acmlg_adaptive": dict(mapper="adaptive", pipelined=False),
    "acmlg_pipe": dict(mapper="gpu_only", pipelined=True),
    "acmlg_both": dict(mapper="adaptive", pipelined=True),
}


def _fresh_element(variability: VariabilitySpec, seed: int) -> ComputeElement:
    sim = Simulator()
    return ComputeElement(
        sim, tianhe1_element(), variability=variability, rng=RngStream(seed).child("fig8")
    )


def run_dgemm_config(
    config: str,
    n: int,
    variability: VariabilitySpec = NO_VARIABILITY,
    seed: int = 0,
    warm_runs: int = 2,
    k: Optional[int] = None,
) -> float:
    """Measured GFLOPS of one configuration at one size (square by default)."""
    k = n if k is None else k
    jitter = not variability.deterministic
    element = _fresh_element(variability, seed)
    if config == "cpu":
        sim = element.sim
        elapsed = sim.run(until=sim.process(cpu_only_dgemm(element, n, n, k, jitter=jitter)))
        return dgemm_flops(n, n, k) / elapsed / 1e9
    spec = DGEMM_CONFIGS[config]
    if spec["mapper"] == "adaptive":
        mapper = AdaptiveMapper(
            element.initial_gsplit, 3, max_workload=dgemm_flops(2 * n, 2 * n, 2 * k)
        )
    else:
        mapper = StaticMapper(1.0, 3)
    engine = HybridDgemm(element, mapper, pipelined=spec["pipelined"], jitter=jitter)
    result = None
    runs = (warm_runs if mapper.adapts_at_runtime else 0) + 1
    for _ in range(runs):
        result = engine.run_to_completion(n, n, k, beta_nonzero=False)
    return result.gflops


def fig8_dgemm_sweep(
    sizes: Sequence[int] = DEFAULT_SIZES,
    variability: VariabilitySpec = NO_VARIABILITY,
    seed: int = 0,
    configs: Sequence[str] = tuple(DGEMM_CONFIGS),
) -> SeriesData:
    """Regenerate Fig. 8 and the paper's three average-gain numbers."""
    data = SeriesData(
        title="Fig 8 — DGEMM performance by matrix size (GFLOPS, one compute element)",
        x_label="N",
        y_label="GFLOPS",
    )
    values: dict[str, dict[int, float]] = {c: {} for c in configs}
    flat = evaluate_points(
        "fig8.dgemm",
        run_dgemm_config,
        [
            dict(config=config, n=n, variability=variability, seed=seed)
            for n in sizes
            for config in configs
        ],
    )
    it = iter(flat)
    for n in sizes:
        for config in configs:
            gflops = next(it)
            values[config][n] = gflops
            data.add_point(CONFIG_LABELS[config], n, gflops)

    def gains(config: str, baseline: str, size_filter) -> list[float]:
        return [
            values[config][n] / values[baseline][n] - 1.0
            for n in sizes
            if size_filter(n) and baseline in values and config in values
        ]

    if "acmlg" in configs:
        if "acmlg_adaptive" in configs:
            data.summary["adaptive gain avg (paper +14.64%)"] = float(
                np.mean(gains("acmlg_adaptive", "acmlg", lambda n: True))
            )
        if "acmlg_pipe" in configs:
            above = gains("acmlg_pipe", "acmlg", lambda n: n > 8192)
            below = gains("acmlg_pipe", "acmlg", lambda n: n <= 8192)
            if above:
                data.summary["pipeline gain avg, N>8192 (paper +7.61%)"] = float(np.mean(above))
            if below:
                data.summary["pipeline gain avg, N<=8192 (paper ~0%)"] = float(np.mean(below))
        if "acmlg_both" in configs:
            both = gains("acmlg_both", "acmlg", lambda n: n > 8192)
            if both:
                data.summary["combined gain avg, N>8192 (paper +22.19%)"] = float(np.mean(both))
    return data
