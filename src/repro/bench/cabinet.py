"""Fig. 11: adaptive mapping vs Qilin within one cabinet (1-64 processes).

Both runs use identical hardware realisations; the only difference is the
mapping policy — Qilin's databases are trained before the run (and the
training time/energy is billed per Section VI.C), ours adapt on line.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.report import SeriesData
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.power import TIANHE1_POWER
from repro.machine.presets import STANDARD_CLOCK_MHZ, tianhe1_cluster
from repro.model import calibration as cal
from repro.session import Scenario, run
from repro.util.validation import require

DEFAULT_PROCS = (1, 2, 4, 8, 16, 32, 64)


def grid_for(procs: int) -> ProcessGrid:
    """The most-square P x Q grid for a process count (HPL convention)."""
    require(procs >= 1, "procs must be >= 1")
    p = int(np.sqrt(procs))
    while procs % p != 0:
        p -= 1
    return ProcessGrid(p, procs // p)


def problem_size_for(procs: int, per_element_n: int = 40000) -> int:
    """Memory-proportional N: constant local matrix per element."""
    return int(per_element_n * np.sqrt(procs))


def fig11_adaptive_vs_qilin(
    proc_counts: Sequence[int] = DEFAULT_PROCS,
    seeds: Sequence[int] = (1, 2, 3),
    per_element_n: int = 40000,
    cluster_seed: int = 2009,
) -> SeriesData:
    """Regenerate Fig. 11 plus the training-cost accounting."""
    cluster = Cluster(
        tianhe1_cluster(cabinets=1, gpu_clock_mhz=STANDARD_CLOCK_MHZ), seed=cluster_seed
    )
    data = SeriesData(
        title="Fig 11 — Linpack within one cabinet: adaptive vs Qilin (GFLOPS)",
        x_label="processes",
        y_label="GFLOPS",
    )
    final_gap = 0.0
    for procs in proc_counts:
        grid = grid_for(procs)
        n = problem_size_for(procs, per_element_n)
        ours, qilin = [], []
        for seed in seeds:
            ours.append(run(Scenario(scheduler="acmlg_both", n=n, cluster=cluster, grid=grid, seed=seed)).gflops)
            qilin.append(run(Scenario(scheduler="qilin", n=n, cluster=cluster, grid=grid, seed=seed)).gflops)
        ours_mean, qilin_mean = float(np.mean(ours)), float(np.mean(qilin))
        data.add_point("ours (adaptive)", procs, ours_mean)
        data.add_point("Qilin (trained)", procs, qilin_mean)
        final_gap = ours_mean / qilin_mean - 1.0
    data.summary[f"adaptive vs Qilin at {max(proc_counts)} procs (paper +15.56%)"] = final_gap
    # Section VI.C's energy argument: Qilin must train for ~2 h per cabinet
    # at the measured 18.5 kW cabinet draw.
    training_kwh = TIANHE1_POWER.energy_kwh(
        cabinets=1, seconds=cal.QILIN_TRAINING_HOURS_PER_CABINET * 3600
    )
    data.summary["Qilin training energy, 1 cabinet (paper 37 kWh)"] = training_kwh
    data.summary["Qilin training energy, 80 cabinets (paper 2960 kWh)"] = 80 * training_kwh
    data.summary["adaptive training energy"] = 0.0
    return data
