"""Full-machine BCAST sweep: Rmax per panel-broadcast algorithm.

The paper's headline number — 0.563 PFLOPS on the 2560-node, 64 x 80-grid
full system — was produced by HPL with a tuned ``BCAST`` setting.  This
bench runs the analytic stepper over the real mixed E5540/E5450 population
at the thermally-stable 575 MHz operating point once per algorithm in
:data:`repro.mpi.bcast.BCAST_ALGORITHMS` (the `bcast_algo` config knob) and
reports the Rmax each achieves against the paper's 563.1 TFLOPS.

At Q = 80 grid columns the choice is material: binomial pays
``ceil(log2 80) = 7`` full-panel message times per step, the rings pay ~2,
and ``long`` halves the volume again at the cost of 2(Q-1) latencies —
see ``docs/distributed.md`` for the closed forms.
"""

from __future__ import annotations

from repro.bench.report import SeriesData
from repro.bench.scaling import GRIDS, problem_size_for_cabinets
from repro.exec import evaluate_points
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.presets import FULL_SYSTEM_CABINETS, tianhe1_cluster
from repro.model import calibration as cal
from repro.mpi.bcast import BCAST_ALGORITHMS
from repro.session import Scenario, run

#: The paper's full-system Rmax (TFLOPS).
PAPER_RMAX_TFLOPS = cal.LINPACK_FULL_SYSTEM / 1e12


def _sweep_point(
    algo: str, n: int, cabinets: int, seed: int, cluster_seed: int
) -> float:
    """One algorithm's full-machine run (the pool/cache worker)."""
    cluster = Cluster(tianhe1_cluster(cabinets=cabinets), seed=cluster_seed)
    result = run(
        Scenario(
            scheduler="acmlg_both",
            n=n,
            cluster=cluster,
            grid=ProcessGrid(*GRIDS[cabinets]),
            seed=seed,
            overrides={"bcast_algo": algo},
        )
    )
    return result.tflops


def fullsystem_bcast_sweep(
    cabinets: int = FULL_SYSTEM_CABINETS,
    seed: int = 7,
    cluster_seed: int = 2009,
) -> SeriesData:
    """Sweep the BCAST family on the full machine (or a quick-mode prefix)."""
    if cabinets not in GRIDS:
        raise ValueError(f"no grid defined for {cabinets} cabinets (have {sorted(GRIDS)})")
    n = problem_size_for_cabinets(cabinets)
    data = SeriesData(
        title=(
            f"Full-system Linpack vs BCAST algorithm "
            f"({cabinets} cabinets, {GRIDS[cabinets][0]}x{GRIDS[cabinets][1]} grid, N={n})"
        ),
        x_label="BCAST algorithm (0=binomial, 1=1ring, 2=1rm, 3=long)",
        y_label="TFLOPS",
    )
    tflops = evaluate_points(
        "fullsystem.bcast",
        _sweep_point,
        [
            dict(algo=algo, n=n, cabinets=cabinets, seed=seed, cluster_seed=cluster_seed)
            for algo in BCAST_ALGORITHMS
        ],
    )
    results = dict(zip(BCAST_ALGORITHMS, tflops))
    for i, algo in enumerate(BCAST_ALGORITHMS):
        data.add_point("Rmax", float(i), results[algo])
        data.summary[f"{algo} Rmax (TFLOPS)"] = results[algo]
    best = max(results, key=results.get)
    data.summary["best algorithm"] = best
    if cabinets == FULL_SYSTEM_CABINETS:
        data.summary[f"best vs paper ({PAPER_RMAX_TFLOPS:.1f} TFLOPS)"] = (
            results[best] / PAPER_RMAX_TFLOPS
        )
    return data
