"""Execution policy: how many workers, whether results are cached.

The sweep generators in :mod:`repro.bench` and the differential matrix in
:mod:`repro.verify` are embarrassingly parallel — independent scenarios with
explicit seeds — but they must stay *deterministic*: the same invocation
yields the same figures whether it ran on one core or sixteen.  The policy
object is how callers opt into parallelism and caching without threading
flags through every generator:

* The **default policy** (no ambient policy installed) is serial with the
  cache off — library and test behaviour is byte-identical to a plain loop.
* The bench/verify **CLIs** install a policy built from ``--jobs`` /
  ``--no-cache`` around the whole figure, so every sweep inside picks it up
  ambiently (the same pattern as :func:`repro.obs.use`).

:class:`ExecStats` counts what actually happened (tasks run, tasks that went
through the pool, cache hits/misses) for the CLI's one-line summary; the
same counts are mirrored into the ambient :mod:`repro.obs` metrics registry
(``exec.tasks``, ``exec.parallel_tasks``, ``exec.cache.hits``,
``exec.cache.misses``) when telemetry is active, so tests and ``--metrics-out``
can assert on them.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from repro import obs

#: Where cached scenario results live unless the policy overrides it.
DEFAULT_CACHE_DIR = Path("benchmarks") / "out" / "cache"


@dataclass
class ExecStats:
    """Counters for one policy's lifetime (the CLI summary line)."""

    tasks: int = 0
    parallel_tasks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def count_task(self, parallel: bool) -> None:
        self.tasks += 1
        if parallel:
            self.parallel_tasks += 1
        telemetry = obs.current()
        if telemetry is not None:
            telemetry.metrics.counter("exec.tasks", "scenario evaluations dispatched").inc()
            if parallel:
                telemetry.metrics.counter(
                    "exec.parallel_tasks", "evaluations run in worker processes"
                ).inc()

    def count_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        telemetry = obs.current()
        if telemetry is not None:
            name = "exec.cache.hits" if hit else "exec.cache.misses"
            help_ = (
                "scenario evaluations served from the result cache"
                if hit
                else "scenario evaluations that had to run"
            )
            telemetry.metrics.counter(name, help_).inc()

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of cache lookups served without recomputation."""
        return self.cache_hits / self.cache_lookups if self.cache_lookups else 0.0

    def summary_line(self, jobs: int, cache: bool) -> str:
        """The CLI's one-liner: jobs, cache state, hit counts."""
        if cache:
            cache_part = (
                f"cache=on hits={self.cache_hits} misses={self.cache_misses}"
                + (f" ({self.hit_rate:.0%} hit)" if self.cache_lookups else "")
            )
        else:
            cache_part = "cache=off"
        return (
            f"exec: jobs={jobs} {cache_part} "
            f"tasks={self.tasks} (parallel {self.parallel_tasks})"
        )


@dataclass(frozen=True)
class ExecutionPolicy:
    """One sweep-execution configuration.

    ``jobs=None`` resolves to ``os.cpu_count()``; ``jobs=1`` forces the
    serial path (no pool, no subprocesses).  ``cache`` gates the on-disk
    result cache; ``vectorize`` gates the batch analytic stepper (sweeps
    fall back to the scalar oracle when off).  ``runtime="async"`` routes
    :func:`repro.exec.run_tasks` batches through the asyncio session
    runtime (:mod:`repro.session.runtime`) instead of the one-shot pool —
    same workers, same ordering contract, fair-share admission (the bench
    CLIs' ``--async`` flag).  ``stats`` is shared by everything executed
    under this policy.
    """

    jobs: Optional[int] = 1
    cache: bool = False
    cache_dir: Optional[Path] = None
    vectorize: bool = False
    runtime: Optional[str] = None
    stats: ExecStats = field(default_factory=ExecStats, compare=False)

    def __post_init__(self) -> None:
        if self.runtime not in (None, "async"):
            raise ValueError(
                f"unknown runtime {self.runtime!r} (valid: None, 'async')"
            )

    @property
    def resolved_jobs(self) -> int:
        if self.jobs is None:
            return os.cpu_count() or 1
        return max(1, int(self.jobs))

    @property
    def resolved_cache_dir(self) -> Path:
        return Path(self.cache_dir) if self.cache_dir is not None else DEFAULT_CACHE_DIR

    def summary_line(self) -> str:
        return self.stats.summary_line(self.resolved_jobs, self.cache)


#: The do-nothing-special policy: serial, uncached, scalar oracle.
SERIAL_POLICY = ExecutionPolicy()

_STACK: list[ExecutionPolicy] = []


def current() -> ExecutionPolicy:
    """The innermost active policy (the serial default when none is set)."""
    return _STACK[-1] if _STACK else SERIAL_POLICY


@contextmanager
def use(policy: Optional[ExecutionPolicy]) -> Iterator[ExecutionPolicy]:
    """Install *policy* as the ambient execution policy for the duration.

    ``use(None)`` is a no-op context yielding the current policy, so call
    sites can wrap unconditionally.
    """
    if policy is None:
        yield current()
        return
    _STACK.append(policy)
    try:
        yield policy
    finally:
        _STACK.pop()
