"""Content-addressed on-disk cache of scenario evaluations.

A sweep point is pure: (code, task name, arguments) fully determine the
result.  The cache key is therefore a SHA-256 over

* the **code version** — a digest of every ``repro`` source file, so *any*
  change to the package invalidates every entry (no stale-model hazard, no
  manual versioning to forget), and
* the **scenario hash** — the task name plus a canonical-JSON rendering of
  its arguments.

Entries live under ``benchmarks/out/cache/<k[:2]>/<k>.json`` (two-level
fan-out keeps directories small), each a self-describing JSON document with
the task name and arguments alongside the value, so a cache directory is
inspectable with nothing but ``cat``.  Writes are atomic
(:func:`repro.util.io.atomic_write_text`); a corrupt or unreadable entry is
treated as a miss and overwritten, never trusted.

Values must round-trip JSON — sweeps cache the scalar figures they plot
(GFLOPS per point) or structured dicts (divergence reports), not live
objects.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Optional, Tuple

from repro.util.io import atomic_write_text

#: Bumped when the entry layout (not the cached values) changes shape.
CACHE_FORMAT = 1

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of the installed ``repro`` package's source (cached per process).

    Hashes the *contents* of every ``.py`` file under the package root in
    sorted order, so editing any module — even a comment — retires every
    cache entry.  Cheap relative to a scenario run and computed once.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace drift)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=_jsonable)


def _jsonable(value: Any) -> Any:
    """Fallback encoder: dataclasses, paths, numpy scalars, enums."""
    import dataclasses
    import enum

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Path):
        return str(value)
    if hasattr(value, "tolist"):  # numpy array or scalar
        return value.tolist()
    if hasattr(value, "item"):  # other zero-dim array-likes
        return value.item()
    raise TypeError(f"cannot canonicalise {type(value).__name__} for a cache key")


def scenario_key(task: str, args: Any) -> str:
    """The content address of one evaluation: code version + task + args."""
    body = canonical_json({"format": CACHE_FORMAT, "code": code_version(),
                           "task": task, "args": args})
    return hashlib.sha256(body.encode()).hexdigest()


class ResultCache:
    """Get/put of JSON values keyed by :func:`scenario_key` digests."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; unreadable or malformed entries count as misses."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
            return True, entry["value"]
        except (OSError, ValueError, KeyError):
            return False, None

    def put(self, key: str, value: Any, task: str = "", args: Any = None) -> Path:
        """Store *value* (JSON-serialisable) under *key*, atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "format": CACHE_FORMAT,
            "code": code_version(),
            "task": task,
            "args": args,
            "value": value,
        }
        return atomic_write_text(path, canonical_json(document) + "\n")

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()
