"""The deterministic fan-out runner and the cache-aware sweep combinator.

:func:`run_tasks` maps a top-level callable over a list of keyword-argument
dicts, optionally across a process pool.  Determinism is the contract, not
an accident:

* **Ordering** — results come back in submission order regardless of which
  worker finished first, so a sweep's series are identical serial vs
  parallel.
* **Seeding** — tasks carry their seeds *in their arguments* (every
  :class:`~repro.session.Scenario` already does); workers never draw from
  shared RNG state.  :func:`repro.util.rng.derive_seed` derives stable
  per-task sub-seeds when a caller needs to split one seed across tasks.
* **Serial equivalence** — a worker process runs the same function on the
  same arguments as the serial loop would, so parallel output is
  bit-identical to serial output (asserted by ``benchmarks/bench_perf.py
  --check`` and the CI bench-smoke lane).

Telemetry in workers: when the ambient :class:`repro.obs.Telemetry` is
ledger-backed (``shard_dir`` set — see :class:`repro.obs.ledger.RunLedger`),
each worker process streams its spans into its own
``spans-worker-<pid>.jsonl`` shard in that directory and snapshots its
metrics to ``metrics-worker-<pid>.json``; the parent counts the shards into
``exec.telemetry_shards`` on join so a missing shard is visible, and the
ledger reader merges them back with worker labels.  Only a purely
in-memory telemetry (a :class:`~repro.obs.RecordingSink` with nowhere to
shard to) still forces the serial path — worker spans could not be merged
back, and dropping them silently would make ``--trace-out`` lie.  Running
*inside* a worker forces serial too (no nested pools).

:func:`evaluate_points` layers the result cache on top: look up every point,
fan the misses out, store what came back.  Cached values must round-trip
JSON; see :mod:`repro.exec.cache`.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro import obs
from repro.exec.cache import ResultCache, scenario_key
from repro.exec.policy import ExecutionPolicy, current

_IN_WORKER = False


def in_worker() -> bool:
    """True inside a pool worker process (nested pools are forbidden)."""
    return _IN_WORKER

#: The worker's own telemetry, created once per (process, shard_dir).
_WORKER_TELEMETRY: Optional[tuple[str, "obs.Telemetry"]] = None

#: Shard files this process has already counted into ``exec.telemetry_shards``.
_SEEN_SHARDS: set[str] = set()


def _mark_worker() -> None:
    """Pool initializer: workers must never spawn pools of their own."""
    global _IN_WORKER
    _IN_WORKER = True


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the imported package); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_telemetry(shard_dir: str) -> "obs.Telemetry":
    """This worker's shard-backed telemetry (one stream per process).

    ``fsync`` is off for worker shards — the parent outlives them and a
    worker death loses at most one unflushed buffer, while a syscall per
    flush on every worker would tax exactly the hot path the pool exists
    to speed up.
    """
    global _WORKER_TELEMETRY
    if _WORKER_TELEMETRY is None or _WORKER_TELEMETRY[0] != shard_dir:
        from repro.obs.stream import StreamingSink

        sink = StreamingSink(
            Path(shard_dir) / f"spans-worker-{os.getpid()}.jsonl",
            flush_records=64,
            flush_interval=1.0,
            fsync=False,
        )
        _WORKER_TELEMETRY = (shard_dir, obs.Telemetry(sink=sink))
    return _WORKER_TELEMETRY[1]


def _run_sharded(fn: Callable[..., Any], shard_dir: str, kwargs: dict) -> Any:
    """Worker-side wrapper: run *fn* under this worker's shard telemetry."""
    from repro.util.io import atomic_write_text

    telemetry = _worker_telemetry(shard_dir)
    with obs.use(telemetry):
        result = fn(**kwargs)
    telemetry.flush()
    atomic_write_text(
        Path(shard_dir) / f"metrics-worker-{os.getpid()}.json",
        telemetry.metrics.to_json() + "\n",
    )
    return result


def _register_shards(telemetry: "obs.Telemetry", shard_dir: Path) -> int:
    """Count newly appeared worker shards into ``exec.telemetry_shards``.

    Always touches the counter (even by zero) so "no shards arrived" shows
    up as an explicit 0 in the snapshot instead of a missing metric.
    """
    shards = sorted(str(p) for p in Path(shard_dir).glob("spans-worker-*.jsonl"))
    fresh = [s for s in shards if s not in _SEEN_SHARDS]
    _SEEN_SHARDS.update(fresh)
    telemetry.metrics.counter(
        "exec.telemetry_shards", "per-worker span shards written into the run ledger"
    ).inc(len(fresh))
    return len(shards)


class WorkerPool:
    """A persistent, submit-oriented twin of :func:`run_tasks`'s pool.

    :func:`run_tasks` opens a pool, fans one batch out, and tears it down —
    right for a sweep, wrong for a long-lived runtime that keeps thousands
    of scenarios in flight over hours.  ``WorkerPool`` keeps the executor
    (same fork-preferring context, same never-nest initializer) alive
    across submissions; :class:`repro.session.runtime.AsyncSession` drives
    it one job at a time as its fair-share scheduler grants slots.

    ``serial=True`` (or running inside a pool worker, where nesting is
    forbidden) degrades to inline execution: :meth:`submit` runs the
    callable immediately in the caller's process and returns an
    already-completed future.  Callers therefore never distinguish the two
    modes — but note that in serial mode a job can never be observed
    *running*, only *finished*, which is exactly why a cancel on the serial
    path must be a no-op completion rather than a hang.
    """

    def __init__(self, jobs: Optional[int] = None, *, serial: Optional[bool] = None) -> None:
        resolved = os.cpu_count() or 1 if jobs is None else max(1, int(jobs))
        if serial is None:
            serial = resolved <= 1 or _IN_WORKER
        self.size = 1 if serial else resolved
        self._executor: Optional[ProcessPoolExecutor] = None
        if not serial:
            self._executor = ProcessPoolExecutor(
                max_workers=self.size,
                mp_context=_pool_context(),
                initializer=_mark_worker,
            )
        self._closed = False

    @property
    def serial(self) -> bool:
        """True when submissions run inline in the caller's process."""
        return self._executor is None

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> "Future[Any]":
        """Run ``fn(*args, **kwargs)`` on a worker (or inline when serial).

        Always returns a :class:`concurrent.futures.Future`; on the serial
        path it is already resolved by the time it is returned.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._executor is not None:
            return self._executor.submit(fn, *args, **kwargs)
        future: "Future[Any]" = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as error:  # noqa: BLE001 - mirrored into the future
            future.set_exception(error)
        return future

    def shutdown(self, wait: bool = True) -> None:
        """Tear the executor down.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


def run_tasks(
    fn: Callable[..., Any],
    calls: Sequence[dict],
    *,
    policy: Optional[ExecutionPolicy] = None,
    label: str = "",
) -> list[Any]:
    """Evaluate ``fn(**call)`` for every call, in order; maybe in parallel.

    *fn* must be a module-level (picklable) callable and every value in the
    call dicts must be picklable.  The result list is ordered like *calls*.
    A failure in any task propagates as the original exception.
    """
    policy = policy if policy is not None else current()
    calls = list(calls)
    if not calls:
        return []
    if policy.runtime == "async" and not _IN_WORKER:
        import asyncio

        try:
            asyncio.get_running_loop()
        except RuntimeError:
            # No loop in this thread: route the batch through the async
            # session runtime (fair-share scheduler over the same worker
            # contract).  Inside a running loop we fall through to the
            # classic pool — run_tasks must stay callable from sync code
            # that an async application drove via an executor thread.
            from repro.session.runtime import map_tasks

            return map_tasks(fn, calls, policy=policy, label=label)
    jobs = min(policy.resolved_jobs, len(calls))
    telemetry = obs.current()
    shard_dir = telemetry.shard_dir if telemetry is not None else None
    parallel = (
        jobs > 1 and not _IN_WORKER and (telemetry is None or shard_dir is not None)
    )
    for _ in calls:
        policy.stats.count_task(parallel)
    if not parallel:
        return [fn(**kwargs) for kwargs in calls]
    if telemetry is not None:
        # Flush the parent stream before forking so the child never holds
        # (or replays) buffered parent records.
        telemetry.flush()
    with ProcessPoolExecutor(
        max_workers=jobs, mp_context=_pool_context(), initializer=_mark_worker
    ) as executor:
        if shard_dir is not None:
            futures = [
                executor.submit(_run_sharded, fn, str(shard_dir), kwargs)
                for kwargs in calls
            ]
        else:
            futures = [executor.submit(fn, **kwargs) for kwargs in calls]
        results = [future.result() for future in futures]
    if telemetry is not None and shard_dir is not None:
        _register_shards(telemetry, shard_dir)
    return results


def evaluate_points(
    task: str,
    fn: Callable[..., Any],
    points: Sequence[dict],
    *,
    policy: Optional[ExecutionPolicy] = None,
) -> list[Any]:
    """Cache-aware sweep: serve hits from disk, fan the misses out, store.

    *task* names the evaluation for the cache key (changing what *fn*
    computes without renaming it is already covered by the code-version
    digest).  When the policy's cache is off this degrades to
    :func:`run_tasks`.  Results are ordered like *points* either way.
    """
    policy = policy if policy is not None else current()
    points = list(points)
    if not policy.cache:
        return run_tasks(fn, points, policy=policy, label=task)
    cache = ResultCache(policy.resolved_cache_dir)
    results: list[Any] = [None] * len(points)
    missing: list[tuple[int, str, dict]] = []
    for i, point in enumerate(points):
        key = scenario_key(task, point)
        hit, value = cache.get(key)
        policy.stats.count_cache(hit)
        if hit:
            results[i] = value
        else:
            missing.append((i, key, point))
    if missing:
        computed = run_tasks(
            fn, [point for _, _, point in missing], policy=policy, label=task
        )
        for (i, key, point), value in zip(missing, computed):
            results[i] = value
            cache.put(key, value, task=task, args=point)
    return results
