"""The deterministic fan-out runner and the cache-aware sweep combinator.

:func:`run_tasks` maps a top-level callable over a list of keyword-argument
dicts, optionally across a process pool.  Determinism is the contract, not
an accident:

* **Ordering** — results come back in submission order regardless of which
  worker finished first, so a sweep's series are identical serial vs
  parallel.
* **Seeding** — tasks carry their seeds *in their arguments* (every
  :class:`~repro.session.Scenario` already does); workers never draw from
  shared RNG state.  :func:`repro.util.rng.derive_seed` derives stable
  per-task sub-seeds when a caller needs to split one seed across tasks.
* **Serial equivalence** — a worker process runs the same function on the
  same arguments as the serial loop would, so parallel output is
  bit-identical to serial output (asserted by ``benchmarks/bench_perf.py
  --check`` and the CI bench-smoke lane).

Two situations force the serial path regardless of the policy: ambient
telemetry (worker-process spans/metrics cannot be merged back, and dropping
them silently would make ``--trace-out`` lie) and running *inside* a worker
(no nested pools).

:func:`evaluate_points` layers the result cache on top: look up every point,
fan the misses out, store what came back.  Cached values must round-trip
JSON; see :mod:`repro.exec.cache`.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Optional, Sequence

from repro import obs
from repro.exec.cache import ResultCache, scenario_key
from repro.exec.policy import ExecutionPolicy, current

_IN_WORKER = False


def _mark_worker() -> None:
    """Pool initializer: workers must never spawn pools of their own."""
    global _IN_WORKER
    _IN_WORKER = True


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the imported package); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_tasks(
    fn: Callable[..., Any],
    calls: Sequence[dict],
    *,
    policy: Optional[ExecutionPolicy] = None,
    label: str = "",
) -> list[Any]:
    """Evaluate ``fn(**call)`` for every call, in order; maybe in parallel.

    *fn* must be a module-level (picklable) callable and every value in the
    call dicts must be picklable.  The result list is ordered like *calls*.
    A failure in any task propagates as the original exception.
    """
    policy = policy if policy is not None else current()
    calls = list(calls)
    if not calls:
        return []
    jobs = min(policy.resolved_jobs, len(calls))
    telemetry = obs.current()
    parallel = jobs > 1 and not _IN_WORKER and telemetry is None
    for _ in calls:
        policy.stats.count_task(parallel)
    if not parallel:
        return [fn(**kwargs) for kwargs in calls]
    with ProcessPoolExecutor(
        max_workers=jobs, mp_context=_pool_context(), initializer=_mark_worker
    ) as executor:
        futures = [executor.submit(fn, **kwargs) for kwargs in calls]
        return [future.result() for future in futures]


def evaluate_points(
    task: str,
    fn: Callable[..., Any],
    points: Sequence[dict],
    *,
    policy: Optional[ExecutionPolicy] = None,
) -> list[Any]:
    """Cache-aware sweep: serve hits from disk, fan the misses out, store.

    *task* names the evaluation for the cache key (changing what *fn*
    computes without renaming it is already covered by the code-version
    digest).  When the policy's cache is off this degrades to
    :func:`run_tasks`.  Results are ordered like *points* either way.
    """
    policy = policy if policy is not None else current()
    points = list(points)
    if not policy.cache:
        return run_tasks(fn, points, policy=policy, label=task)
    cache = ResultCache(policy.resolved_cache_dir)
    results: list[Any] = [None] * len(points)
    missing: list[tuple[int, str, dict]] = []
    for i, point in enumerate(points):
        key = scenario_key(task, point)
        hit, value = cache.get(key)
        policy.stats.count_cache(hit)
        if hit:
            results[i] = value
        else:
            missing.append((i, key, point))
    if missing:
        computed = run_tasks(
            fn, [point for _, _, point in missing], policy=policy, label=task
        )
        for (i, key, point), value in zip(missing, computed):
            results[i] = value
            cache.put(key, value, task=task, args=point)
    return results
