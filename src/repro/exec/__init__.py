"""Parallel, cached, deterministic sweep execution.

The layer between "one scenario" (:mod:`repro.session`) and "a figure's
worth of scenarios" (:mod:`repro.bench`, :mod:`repro.verify`):

* :class:`ExecutionPolicy` + :func:`use`/:func:`current` — the ambient
  jobs/cache/vectorize configuration (serial and uncached by default; the
  CLIs install a real policy from ``--jobs``/``--no-cache``).
* :func:`run_tasks` — ordered, deterministic process-pool fan-out.
* :class:`WorkerPool` / :func:`in_worker` — the persistent, submit-oriented
  pool the async session runtime (:mod:`repro.session.runtime`) keeps alive
  across thousands of submissions, with the same fork/nesting contract.
* :func:`evaluate_points` — the cache-aware sweep combinator.
* :class:`ResultCache` / :func:`scenario_key` / :func:`code_version` — the
  content-addressed on-disk result store under ``benchmarks/out/cache/``.

See ``docs/performance.md`` for cache-key semantics and the parallel
determinism guarantees.
"""

from repro.exec.cache import ResultCache, canonical_json, code_version, scenario_key
from repro.exec.policy import (
    DEFAULT_CACHE_DIR,
    ExecStats,
    ExecutionPolicy,
    SERIAL_POLICY,
    current,
    use,
)
from repro.exec.pool import WorkerPool, evaluate_points, in_worker, run_tasks

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ExecStats",
    "ExecutionPolicy",
    "SERIAL_POLICY",
    "ResultCache",
    "WorkerPool",
    "canonical_json",
    "code_version",
    "current",
    "evaluate_points",
    "in_worker",
    "run_tasks",
    "scenario_key",
    "use",
]
