"""The seedable virtual-time fault state machine.

One :class:`FaultInjector` is built per run from a frozen
:class:`~repro.faults.spec.FaultSpec`.  The consuming engine drives it with
three calls per step (or per transfer on the DES path):

* :meth:`advance` — move the schedule to virtual time ``t``: fire throttles
  and dropouts whose ``at`` has passed, open/close straggler windows.
* :meth:`gpu_factor` / :meth:`gpu_alive` / :meth:`cpu_factor` — the current
  per-element degradation state as numpy arrays, ready to multiply into the
  vectorized rate models of :mod:`repro.hpl.analytic`.
* :meth:`note_load` — report the GSplit each element actually applied this
  step.  This is the graceful-degradation feedback path: a throttled GPU
  whose load stays shed accumulates cooling credit and eventually recovers
  its clock, while one that keeps being fed never does.

PCIe faults use the injector's own seeded stream
(:meth:`pcie_transfer_fails`), so a run with the same spec and seed draws
the identical failure sequence — fault schedules are exactly reproducible.

Everything the injector observes is published to telemetry (counters on
``faults.*``, instants on the ``faults`` track of the Chrome trace) and to
the :class:`~repro.faults.spec.DegradedMode` summary.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.faults.spec import (
    DegradedMode,
    FaultEvent,
    FaultSpec,
    GpuThrottle,
    PcieFaultSpec,
)
from repro.obs.telemetry import current as _ambient_telemetry
from repro.util.rng import RngStream
from repro.util.validation import require


class _ThrottleState:
    """Runtime state of one GpuThrottle event."""

    def __init__(self, spec: GpuThrottle, n_elements: int) -> None:
        self.spec = spec
        self.fired = False
        self.recovered = False
        # Accumulated shed-load (cooling) seconds per affected element.
        self.shed_s = np.zeros(n_elements)

    def elements(self, n: int) -> np.ndarray:
        """Boolean mask of the elements this throttle touches."""
        mask = np.zeros(n, dtype=bool)
        if self.spec.element is None:
            mask[:] = True
        else:
            mask[self.spec.element] = True
        return mask

    @property
    def active(self) -> bool:
        return self.fired and not self.recovered


class FaultInjector:
    """Seedable runtime fault state for one run over ``n_elements``."""

    def __init__(
        self,
        spec: Optional[FaultSpec],
        n_elements: int,
        seed: int = 0,
        telemetry=None,
    ) -> None:
        require(n_elements >= 1, "n_elements must be >= 1")
        self.spec = spec if spec is not None else FaultSpec()
        require(
            self.spec.max_element() < n_elements,
            f"fault spec names element {self.spec.max_element()}, "
            f"but the run has only {n_elements} elements",
        )
        self.n_elements = n_elements
        self._rng = RngStream(seed).child("faults").generator()
        self.telemetry = telemetry if telemetry is not None else _ambient_telemetry()
        self._now = 0.0
        self._last_note_t: Optional[float] = None

        self._throttles = [_ThrottleState(t, n_elements) for t in self.spec.throttles]
        self._dropped = np.zeros(n_elements, dtype=bool)
        self._dropout_fired = [False] * len(self.spec.dropouts)
        self._failsafe = np.ones(n_elements)
        self._straggler_on = [False] * len(self.spec.stragglers)
        self.degraded = DegradedMode()

    # -- schedule ----------------------------------------------------------------
    def advance(self, t: float) -> None:
        """Fire every scheduled transition with a trigger time <= *t*."""
        self._now = t
        for state in self._throttles:
            if not state.fired and t >= state.spec.at:
                state.fired = True
                self.degraded.gpu_throttled = True
                self._emit("gpu_throttle", state.spec.element, state.spec.clock_factor, t)
        for i, drop in enumerate(self.spec.dropouts):
            if not self._dropout_fired[i] and t >= drop.at:
                self._dropout_fired[i] = True
                self._dropped[drop.element] = True
                self._failsafe[drop.element] = min(
                    self._failsafe[drop.element], drop.failsafe_factor
                )
                self.degraded.gpu_lost = True
                self._emit("gpu_dropout", drop.element, drop.failsafe_factor, t)
        for i, strag in enumerate(self.spec.stragglers):
            was_on = self._straggler_on[i]
            now_on = t >= strag.at and (strag.until is None or t < strag.until)
            if now_on and not was_on:
                self._straggler_on[i] = True
                self.degraded.straggling = True
                self._emit("straggler_on", strag.element, strag.factor, t)
            elif was_on and not now_on:
                self._straggler_on[i] = False
                self._emit("straggler_off", strag.element, 1.0, t)

    def note_load(self, gsplit: np.ndarray, t: float) -> None:
        """Feed back the GSplit each element applied at virtual time *t*.

        Cooling credit accrues (non-consecutively — thermal mass integrates)
        for every active recoverable throttle on elements whose applied
        split is at or below the shed threshold; once ``recovery_s`` seconds
        accumulate, the clock is restored.
        """
        gsplit = np.asarray(gsplit, dtype=float).ravel()
        require(len(gsplit) == self.n_elements, "note_load shape mismatch")
        dt = 0.0 if self._last_note_t is None else max(0.0, t - self._last_note_t)
        self._last_note_t = t
        if dt <= 0.0:
            return
        for state in self._throttles:
            if not state.active or state.spec.recovery_s is None:
                continue
            mask = state.elements(self.n_elements)
            shed = mask & (gsplit <= state.spec.shed_threshold)
            state.shed_s[shed] += dt
            # The throttle recovers once *every* affected element has cooled
            # (a cluster-wide thermal event lifts only when the room does).
            if np.all(state.shed_s[mask] >= state.spec.recovery_s):
                state.recovered = True
                self._emit("gpu_clock_restored", state.spec.element, 1.0, t)

    # -- current state -----------------------------------------------------------
    def gpu_factor(self) -> np.ndarray:
        """Per-element GPU rate multiplier (throttle x straggler x failsafe)."""
        factor = np.ones(self.n_elements)
        for state in self._throttles:
            if state.active:
                mask = state.elements(self.n_elements)
                factor[mask] *= state.spec.clock_factor
        for i, strag in enumerate(self.spec.stragglers):
            if self._straggler_on[i] and strag.side in ("gpu", "both"):
                factor[strag.element] *= strag.factor
        # Dead GPUs run at the crippled failsafe rate for any mapping that
        # keeps offloading to them; adaptive mappings consult gpu_alive()
        # instead and never assign them work.
        factor[self._dropped] *= self._failsafe[self._dropped]
        return factor

    def gpu_alive(self) -> np.ndarray:
        """Per-element liveness mask (False once a dropout fired)."""
        return ~self._dropped

    def cpu_factor(self) -> np.ndarray:
        """Per-element CPU rate multiplier (stragglers only)."""
        factor = np.ones(self.n_elements)
        for i, strag in enumerate(self.spec.stragglers):
            if self._straggler_on[i] and strag.side in ("cpu", "both"):
                factor[strag.element] *= strag.factor
        return factor

    def transfer_inflation(self, t: float) -> float:
        """Expected PCIe slowdown at *t* for the closed-form analytic path."""
        pcie = self.spec.pcie
        if pcie is None or not pcie.active(t):
            return 1.0
        self.degraded.pcie_degraded = True
        return pcie.expected_inflation()

    # -- DES-path PCIe faults ------------------------------------------------------
    @property
    def pcie(self) -> Optional[PcieFaultSpec]:
        return self.spec.pcie

    def pcie_transfer_fails(self, t: float) -> bool:
        """Seeded draw: does the transfer completing at *t* fail?"""
        pcie = self.spec.pcie
        if pcie is None or not pcie.active(t) or pcie.fail_probability <= 0.0:
            return False
        return bool(self._rng.random() < pcie.fail_probability)

    def record_pcie_retry(self, t: float) -> None:
        """Count one retried transfer (called by the executors)."""
        self.degraded.pcie_degraded = True
        self.degraded.pcie_retries += 1
        self._emit("pcie_retry", None, 1.0, t)

    def record_pcie_exhausted(self, t: float) -> None:
        """Count one transfer that ran out of retries (about to raise)."""
        self._emit("pcie_exhausted", None, 0.0, t)

    # -- reporting -----------------------------------------------------------------
    @property
    def events(self) -> list[FaultEvent]:
        return self.degraded.events

    def degraded_mode(self) -> Optional[DegradedMode]:
        """The DegradedMode marker, or None if nothing ever degraded."""
        return self.degraded if self.degraded else None

    def _emit(self, kind: str, element: Optional[int], factor: float, t: float) -> None:
        self.degraded.events.append(FaultEvent(time=t, kind=kind, element=element, factor=factor))
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.metrics.counter(
                "faults.events", "fault-injection events by kind"
            ).inc(kind=kind)
            if kind == "pcie_retry":
                telemetry.metrics.counter(
                    "faults.pcie_retries", "PCIe transfers retried after a fault"
                ).inc()
            where = "all" if element is None else element
            telemetry.sink.instant("faults", kind, t, element=where, factor=factor)
