"""Fault injection and graceful degradation.

A seedable, virtual-time fault subsystem: declare *what* breaks in a frozen
:class:`FaultSpec` (GPU thermal throttles and dropouts, per-element
stragglers, probabilistic PCIe transfer failures), hand it to a run via
``Scenario(faults=...)`` (see :mod:`repro.session`), and the
:class:`FaultInjector` replays the schedule deterministically against the
virtual clock.  Recovery semantics live with the consumers:

* the analytic HPL stepper folds the degraded per-element rates into every
  per-step max, clamps an adaptive mapping's GSplit to 0 on GPU loss (the
  ``cpu_only_dgemm`` fallback), and lets load-shedding cool a throttled GPU
  back to full clock — while static/Qilin mappings, which cannot react,
  ride the fault all the way down;
* the DES pipeline executors retry failed PCIe transfers with bounded
  exponential backoff and raise :class:`PcieTransferError` when the budget
  is exhausted.

Runs that met any fault carry a :class:`DegradedMode` marker and publish
``faults.*`` counters plus ``faults``-track instants through
:mod:`repro.obs`.  See ``docs/faults.md``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.spec import (
    NO_FAULTS,
    PAPER_THROTTLE_FACTOR,
    DegradedMode,
    FaultEvent,
    FaultSpec,
    GpuDropout,
    GpuThrottle,
    PcieFaultSpec,
    PcieTransferError,
    Straggler,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "FaultEvent",
    "GpuThrottle",
    "GpuDropout",
    "Straggler",
    "PcieFaultSpec",
    "PcieTransferError",
    "DegradedMode",
    "NO_FAULTS",
    "PAPER_THROTTLE_FACTOR",
]
