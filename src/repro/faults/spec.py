"""Declarative fault model: what goes wrong, when, and how hard.

The repro's variability layer (:mod:`repro.machine.variability`) covers
*benign* drift — jitter, manufacturing spread, slow thermal creep.  This
module adds the hard events a petascale run actually meets (Sections IV and
VI.A of the paper, and the degraded-hardware experiments HeSP-style
simulators run to validate scheduling policies):

* :class:`GpuThrottle` — a thermal emergency downclocks the GPU mid-run
  (the paper's 750 -> 575 MHz story).  Throttling is *load-dependent*: a
  GPU whose mapping keeps feeding it a full workload share stays hot and
  stays throttled, while one whose load is shed below ``shed_threshold``
  (an adaptive mapper rebalancing away from the slow device) cools and
  recovers its clock after ``recovery_s`` of accumulated shed time.  This
  is what makes the adaptive-vs-static gap measurable: only a mapping that
  reacts can ever un-throttle.
* :class:`GpuDropout` — a GPU fails permanently (driver wedge, ECC storm,
  dead board).  An adaptive mapping clamps GSplit to 0 and continues on
  the CPU path (:func:`repro.core.hybrid_dgemm.cpu_only_dgemm` semantics);
  a mapping that cannot react keeps offloading into a device that now runs
  at ``failsafe_factor`` of its rate.
* :class:`Straggler` — one element's CPU and/or GPU slows by ``factor``
  over a window (sick DIMM, noisy neighbour, failing fan).
* :class:`PcieFaultSpec` — individual PCIe transfers fail with a given
  probability; the pipeline executors retry with bounded exponential
  backoff and raise :class:`PcieTransferError` on exhaustion.

All times are **virtual seconds** on the simulation clock.  A
:class:`FaultSpec` is pure data — frozen, hashable, seed-free; the runtime
state machine lives in :class:`repro.faults.injector.FaultInjector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.util.validation import (
    require,
    require_fraction,
    require_nonnegative,
    require_positive,
)

#: The paper's thermal operating points: 750 MHz (110 C, unstable for long
#: runs) down to 575 MHz (92 C).  Default throttle depth = 575/750.
PAPER_THROTTLE_FACTOR = 575.0 / 750.0


class PcieTransferError(RuntimeError):
    """A PCIe transfer kept failing after the bounded retry budget."""


@dataclass(frozen=True)
class GpuThrottle:
    """A load-dependent thermal downclock of one (or every) GPU.

    Fires at virtual time ``at``; the affected GPUs run at ``clock_factor``
    of their configured clock.  If ``recovery_s`` is set, a throttled GPU
    whose applied GSplit stays at or below ``shed_threshold`` accumulates
    cooling credit; once ``recovery_s`` seconds of shed load add up, the
    clock is restored.  ``recovery_s=None`` makes the throttle permanent
    regardless of load (the paper's full-system run simply stayed at 575).
    """

    at: float
    clock_factor: float = PAPER_THROTTLE_FACTOR
    element: Optional[int] = None  # None = every element
    shed_threshold: float = 0.86
    recovery_s: Optional[float] = None

    def __post_init__(self) -> None:
        require_nonnegative(self.at, "at")
        require(0.0 < self.clock_factor < 1.0, "clock_factor must be in (0, 1)")
        require_fraction(self.shed_threshold, "shed_threshold")
        if self.recovery_s is not None:
            require_positive(self.recovery_s, "recovery_s")


@dataclass(frozen=True)
class GpuDropout:
    """A permanent GPU failure on one element at virtual time ``at``.

    ``failsafe_factor`` is the crippled rate (bus timeouts, software
    fallback) seen by a mapping that keeps offloading to the dead device;
    an adaptive mapping instead clamps GSplit to 0 and reclaims the
    transfer core (the ``cpu_only_dgemm`` fallback).
    """

    at: float
    element: int = 0
    failsafe_factor: float = 0.02

    def __post_init__(self) -> None:
        require_nonnegative(self.at, "at")
        require(self.element >= 0, "element must be >= 0")
        require(0.0 < self.failsafe_factor < 1.0, "failsafe_factor must be in (0, 1)")


@dataclass(frozen=True)
class Straggler:
    """One element slowed to ``factor`` of its rate over ``[at, until)``."""

    at: float
    element: int = 0
    factor: float = 0.5
    until: Optional[float] = None  # None = persistent
    side: str = "cpu"  # "cpu" | "gpu" | "both"

    def __post_init__(self) -> None:
        require_nonnegative(self.at, "at")
        require(self.element >= 0, "element must be >= 0")
        require(0.0 < self.factor <= 1.0, "factor must be in (0, 1]")
        require(self.side in ("cpu", "gpu", "both"), f"unknown straggler side {self.side!r}")
        if self.until is not None:
            require(self.until > self.at, "until must be > at")


@dataclass(frozen=True)
class PcieFaultSpec:
    """Per-transfer PCIe failure model with a bounded retry policy.

    Each individual transfer fails independently with
    ``fail_probability`` while the window ``[at, until)`` is active.  The
    executor retries a failed transfer after ``backoff_s`` (doubled — or
    ``backoff_multiplier``-ed — per attempt) up to ``max_retries`` times,
    then raises :class:`PcieTransferError`.  On the closed-form analytic
    path the same model appears as its expectation: transfer terms are
    inflated by ``1 / (1 - p)`` while the window is active.
    """

    fail_probability: float = 0.1
    at: float = 0.0
    until: Optional[float] = None
    max_retries: int = 3
    backoff_s: float = 1e-3
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        require(0.0 <= self.fail_probability < 1.0, "fail_probability must be in [0, 1)")
        require_nonnegative(self.at, "at")
        require(self.max_retries >= 0, "max_retries must be >= 0")
        require_nonnegative(self.backoff_s, "backoff_s")
        require(self.backoff_multiplier >= 1.0, "backoff_multiplier must be >= 1")
        if self.until is not None:
            require(self.until > self.at, "until must be > at")

    def active(self, t: float) -> bool:
        """Whether the fault window covers virtual time *t*."""
        return t >= self.at and (self.until is None or t < self.until)

    def expected_inflation(self) -> float:
        """Expected transfer-time multiplier: mean attempts = 1/(1-p)."""
        return 1.0 / (1.0 - self.fail_probability)


@dataclass(frozen=True)
class FaultSpec:
    """The complete fault schedule of one run (pure data, seed-free)."""

    throttles: tuple[GpuThrottle, ...] = ()
    dropouts: tuple[GpuDropout, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    pcie: Optional[PcieFaultSpec] = None

    def __bool__(self) -> bool:
        return bool(self.throttles or self.dropouts or self.stragglers or self.pcie)

    def max_element(self) -> int:
        """Highest element index any event names (-1 when none do)."""
        indices = [t.element for t in self.throttles if t.element is not None]
        indices += [d.element for d in self.dropouts]
        indices += [s.element for s in self.stragglers]
        return max(indices, default=-1)


#: The empty schedule (also what ``faults=None`` means everywhere).
NO_FAULTS = FaultSpec()


@dataclass(frozen=True)
class FaultEvent:
    """One thing that happened at run time (the injector's audit log)."""

    time: float
    kind: str  # gpu_throttle | gpu_clock_restored | gpu_dropout | straggler_on
    #           | straggler_off | pcie_retry | pcie_exhausted
    element: Optional[int] = None
    factor: float = 1.0


@dataclass
class DegradedMode:
    """Marker summarising every degradation a run went through.

    Attached to :class:`repro.hpl.analytic.AnalyticResult` (and surfaced on
    :class:`repro.hpl.driver.LinpackResult`) and to
    :class:`repro.core.pipeline.PipelineResult`; ``None`` on those objects
    means the run saw no fault at all.
    """

    gpu_throttled: bool = False
    gpu_lost: bool = False
    straggling: bool = False
    pcie_degraded: bool = False
    pcie_retries: int = 0
    events: list[FaultEvent] = field(default_factory=list)

    def __bool__(self) -> bool:
        return (
            self.gpu_throttled
            or self.gpu_lost
            or self.straggling
            or self.pcie_degraded
            or self.pcie_retries > 0
        )

    def describe(self) -> str:
        """One-line human summary (for reports and exceptions)."""
        parts = []
        if self.gpu_throttled:
            parts.append("gpu-throttled")
        if self.gpu_lost:
            parts.append("gpu-lost")
        if self.straggling:
            parts.append("straggler")
        if self.pcie_degraded or self.pcie_retries:
            parts.append(f"pcie-retries={self.pcie_retries}")
        return "degraded[" + ",".join(parts) + "]" if parts else "healthy"
