"""The bench trajectory and the perf-regression sentinel.

``BENCH_perf.json`` is a snapshot — overwritten on every run, so the repo
never knew whether the DES engine got slower last week.  This module keeps
the *trajectory*: every ``benchmarks/bench_perf.py`` run appends one line
to ``benchmarks/BENCH_history.jsonl`` (flat metrics plus enough context to
compare like with like), and ``python -m repro.obs regress`` flags the
latest entry against a rolling window of its predecessors.

Comparisons are scoped to entries with the same ``quick`` flag and the
same ``cpu_count`` — a laptop run never regresses against a CI runner.
Each tracked metric carries a direction (throughput up is good, seconds
down is good); a regression is a relative move in the bad direction larger
than the threshold.  The sentinel is advisory by default in CI
(``--warn-only``) because shared runners are noisy; locally it is a hard
gate.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Any, Iterable, Optional, Union

from repro.obs.stream import iter_jsonl
from repro.util.tables import TextTable

#: Where the bench trajectory lives (one JSON line per bench_perf run).
DEFAULT_HISTORY_PATH = Path("benchmarks") / "BENCH_history.jsonl"

#: Tracked metric → direction ("higher" is better, or "lower" is better).
#: Keys are dotted paths into the ``bench_perf`` report.
TRACKED_METRICS: dict[str, str] = {
    # Headline: the batched device-completion storm through the calendar
    # queue (entries before the calendar-queue engine measured the scalar
    # mix under this key; direction-aware detection treats the jump as an
    # improvement, and the scalar path keeps its own key below).
    "des_engine.events_per_second": "higher",
    "des_engine.scalar_events_per_second": "higher",
    # The "largest DES-feasible machine" tracker (grid-scale crossval
    # cells verified inside the wall budget): shrinking grids regress.
    "des_feasibility.largest_feasible_ranks": "higher",
    "fig9_sweep.serial_seconds": "lower",
    "fig9_sweep.parallel_seconds": "lower",
    "fig9_sweep.vectorized_seconds": "lower",
    "crossval.serial_seconds": "lower",
    "crossval.parallel_seconds": "lower",
    "cache.cold_seconds": "lower",
    "cache.warm_seconds": "lower",
    # The raw streamed wall time, not the overhead *ratio*: the ratio
    # hovers around zero at quick sizes, where a relative comparison is
    # pure noise (the absolute gate lives in bench_perf --check).
    "telemetry_overhead.streaming_seconds": "lower",
    # From bench_tournament.py: the fraction of tournament cells the paper's
    # adaptive scheduler wins; a drop means a scheduler-zoo change shifted
    # the competitive landscape (bench_perf entries simply lack the key).
    "tournament.adaptive_win_rate": "higher",
    # From bench_whatif_service.py: the warm-path throughput gate of the
    # what-if query service (HTTP, 8 keep-alive connections, single
    # process) and its per-request tail latency.
    "whatif_service.warm_queries_per_second": "higher",
    "whatif_service.p99_latency_ms": "lower",
}

#: Default regression threshold: worse by more than this fraction flags.
DEFAULT_THRESHOLD = 0.25

#: Default rolling-window size (prior comparable entries consulted).
DEFAULT_WINDOW = 5


def _dig(payload: dict[str, Any], dotted: str) -> Optional[float]:
    node: Any = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def entry_from_report(report: dict[str, Any], *, wall_unix: float) -> dict[str, Any]:
    """Flatten one ``bench_perf`` report into a history line."""
    meta = report.get("meta", {})
    metrics = {
        name: value
        for name in TRACKED_METRICS
        if (value := _dig(report, name)) is not None
    }
    return {
        "wall_unix": wall_unix,
        "quick": bool(meta.get("quick", False)),
        "jobs": meta.get("jobs"),
        "cpu_count": meta.get("cpu_count"),
        "code_version": meta.get("code_version"),
        "metrics": metrics,
    }


def append_entry(entry: dict[str, Any], path: Union[str, Path] = DEFAULT_HISTORY_PATH) -> Path:
    """Append one history line durably (append + flush + fsync)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, default=str) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return path


def load_history(path: Union[str, Path] = DEFAULT_HISTORY_PATH) -> list[dict[str, Any]]:
    """All parseable history entries, in file order (truncated tail skipped)."""
    path = Path(path)
    if not path.exists():
        return []
    return [record for record, ok in iter_jsonl(path) if ok]


@dataclass(frozen=True)
class Regression:
    """One metric that moved in the bad direction past the threshold."""

    metric: str
    direction: str
    baseline: float
    value: float
    change: float  # signed relative move; positive = worse

    def describe(self) -> str:
        arrow = "fell" if self.direction == "higher" else "rose"
        return (
            f"{self.metric} {arrow} {self.change:+.1%} against the rolling "
            f"baseline ({self.baseline:.6g} -> {self.value:.6g})"
        )


def _comparable(entry: dict[str, Any], latest: dict[str, Any]) -> bool:
    return (
        entry.get("quick") == latest.get("quick")
        and entry.get("cpu_count") == latest.get("cpu_count")
    )


def detect_regressions(
    entries: Iterable[dict[str, Any]],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> tuple[list[Regression], str]:
    """Compare the last entry against the rolling median of its predecessors.

    Returns ``(regressions, note)`` — the note explains an empty result
    ("not enough history", "no comparable baseline entries") so CI logs are
    self-describing.
    """
    entries = list(entries)
    if len(entries) < 2:
        return [], f"not enough history ({len(entries)} entr{'y' if len(entries) == 1 else 'ies'}; need 2)"
    latest = entries[-1]
    baseline_pool = [e for e in entries[:-1] if _comparable(e, latest)]
    if not baseline_pool:
        return [], "no comparable baseline entries (quick/cpu_count mismatch)"
    baseline_pool = baseline_pool[-window:]

    regressions: list[Regression] = []
    for metric, direction in TRACKED_METRICS.items():
        value = latest.get("metrics", {}).get(metric)
        if value is None:
            continue
        prior = [
            e["metrics"][metric]
            for e in baseline_pool
            if e.get("metrics", {}).get(metric) is not None
        ]
        if not prior:
            continue
        baseline = float(median(prior))
        if baseline == 0.0:
            continue
        rel = (float(value) - baseline) / abs(baseline)
        worse = -rel if direction == "higher" else rel
        if worse > threshold:
            regressions.append(
                Regression(metric, direction, baseline, float(value), worse)
            )
    note = f"compared against {len(baseline_pool)} comparable prior entr" + (
        "y" if len(baseline_pool) == 1 else "ies"
    )
    return regressions, note


def render_trend(
    entries: Iterable[dict[str, Any]], *, window: int = DEFAULT_WINDOW
) -> str:
    """A compact table of each tracked metric's latest value vs its baseline."""
    entries = list(entries)
    if not entries:
        return "no history recorded"
    latest = entries[-1]
    baseline_pool = [e for e in entries[:-1] if _comparable(e, latest)][-window:]
    table = TextTable(
        ["metric", "direction", "baseline(median)", "latest", "change"],
        title=f"bench trajectory ({len(entries)} entries)",
    )
    for metric, direction in TRACKED_METRICS.items():
        value = latest.get("metrics", {}).get(metric)
        if value is None:
            continue
        prior = [
            e["metrics"][metric]
            for e in baseline_pool
            if e.get("metrics", {}).get(metric) is not None
        ]
        if prior:
            baseline = float(median(prior))
            change = (
                f"{(float(value) - baseline) / abs(baseline):+.1%}"
                if baseline
                else "-"
            )
            baseline_text = f"{baseline:.6g}"
        else:
            baseline_text, change = "-", "-"
        table.add_row(metric, direction, baseline_text, f"{float(value):.6g}", change)
    return table.render()
