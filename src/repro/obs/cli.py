"""``python -m repro.obs`` — the read side of the streaming telemetry stack.

Subcommands::

    list      show run ledgers under the runs root (status, spans, name)
    summary   one run's manifest, stream health, metrics and summary
    tail      the last N streamed records of a run (works on dead runs)
    diff      metric-by-metric comparison of two runs
    trace     export a run's merged spans as Chrome trace-event JSON
    regress   perf sentinel: flag the latest BENCH_history.jsonl entry
              against its rolling baseline (exit 1 on regression unless
              ``--warn-only``)

``RUN`` arguments accept a run directory path, a run id under ``--root``,
or the literal ``latest``.  Every reader tolerates the debris of a crashed
run — a truncated stream tail is reported, never fatal — so this is also
the post-mortem tool: ``python -m repro.obs summary latest`` on a ledger
whose process was ``SIGKILL``-ed shows everything up to the last flush.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.obs import history as history_mod
from repro.obs.ledger import (
    DEFAULT_RUNS_ROOT,
    LedgerView,
    load_run,
    resolve_run,
    run_dirs,
)
from repro.util.io import atomic_write_text
from repro.util.tables import TextTable


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="inspect streamed run ledgers and gate perf regressions",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=DEFAULT_RUNS_ROOT,
        help=f"runs root directory (default: {DEFAULT_RUNS_ROOT})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list run ledgers under the runs root")

    p = sub.add_parser("summary", help="one run's manifest, streams and summary")
    p.add_argument("run", help="run directory, run id, or 'latest'")

    p = sub.add_parser("tail", help="the last N streamed records of a run")
    p.add_argument("run", help="run directory, run id, or 'latest'")
    p.add_argument("-n", "--lines", type=int, default=20, help="records to show")

    p = sub.add_parser("diff", help="metric-by-metric comparison of two runs")
    p.add_argument("run_a", help="baseline run")
    p.add_argument("run_b", help="candidate run")

    p = sub.add_parser("trace", help="export merged spans as Chrome trace JSON")
    p.add_argument("run", help="run directory, run id, or 'latest'")
    p.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default: <run>/trace.json)",
    )

    p = sub.add_parser("regress", help="flag perf regressions in the bench history")
    p.add_argument(
        "--history",
        type=Path,
        default=history_mod.DEFAULT_HISTORY_PATH,
        help=f"history file (default: {history_mod.DEFAULT_HISTORY_PATH})",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=history_mod.DEFAULT_THRESHOLD,
        help="relative move in the bad direction that flags "
        f"(default: {history_mod.DEFAULT_THRESHOLD})",
    )
    p.add_argument(
        "--window",
        type=int,
        default=history_mod.DEFAULT_WINDOW,
        help=f"rolling baseline window (default: {history_mod.DEFAULT_WINDOW})",
    )
    p.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (CI on shared runners)",
    )
    p.add_argument(
        "--block",
        action="append",
        default=None,
        metavar="METRIC",
        help="metric that exits 1 even under --warn-only (repeatable; "
        "the bench-smoke lane blocks on des_engine.events_per_second)",
    )
    return parser


def _load(args: argparse.Namespace, spec: str) -> LedgerView:
    return load_run(resolve_run(spec, args.root))


def _cmd_list(args: argparse.Namespace) -> int:
    directories = run_dirs(args.root)
    if not directories:
        print(f"no run ledgers under {args.root}")
        return 0
    table = TextTable(
        ["run_id", "name", "status", "spans", "shards", "truncated"],
        title=f"run ledgers in {args.root}",
    )
    for directory in directories:
        try:
            view = load_run(directory)
        except FileNotFoundError:
            continue
        table.add_row(
            view.run_id,
            view.name,
            view.status,
            len(view.spans),
            len(view.shards),
            "yes" if view.truncated else "",
        )
    print(table.render())
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    view = _load(args, args.run)
    manifest = view.manifest
    print(f"run      {view.run_id}")
    print(f"name     {view.name}")
    print(f"status   {view.status}")
    print(f"created  {manifest.get('created', '?')}  pid {manifest.get('pid', '?')}")
    print(f"code     {manifest.get('code_version', '?')}  python {manifest.get('python', '?')}")
    if manifest.get("config"):
        print(f"config   {json.dumps(manifest['config'], sort_keys=True, default=str)}")
    if manifest.get("scenario_hash"):
        print(f"scenario {manifest['scenario_hash']}")
    print(
        f"streams  {len(view.spans)} spans, {len(view.instants)} instants, "
        f"{len(view.shards)} worker shard(s)"
        + ("  [TRUNCATED TAIL — crashed or still writing]" if view.truncated else "")
    )
    counts = view.span_counts()
    if counts:
        table = TextTable(["track", "spans"], title="spans by track")
        for track, count in sorted(counts.items(), key=lambda kv: -kv[1])[:20]:
            table.add_row(track, count)
        print(table.render())
    last = view.last_metrics()
    if last:
        table = TextTable(["metric", "value"], title="last metrics checkpoint")
        for key, value in sorted(last.items()):
            table.add_row(key, value)
        print(table.render())
    if view.summary is not None:
        body = view.summary.get("summary") or {}
        print(
            f"summary  status={view.status} wall={view.summary.get('wall_seconds', 0):.3f}s "
            f"records={view.summary.get('records_written', '?')}"
        )
        for key, value in sorted(body.items()):
            print(f"  {key}: {value}")
    else:
        print("summary  (none — run is in flight or died; data above is the partial record)")
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    view = _load(args, args.run)
    records = [("span", s.start, s) for s in view.spans]
    records += [("instant", i.ts, i) for i in view.instants]
    records.sort(key=lambda item: item[1])
    for kind, _, record in records[-max(1, args.lines):]:
        if kind == "span":
            extra = f" {record.args}" if record.args else ""
            print(
                f"span    {record.track:28s} {record.name:20s} "
                f"[{record.start:.6g} .. {record.end:.6g}]{extra}"
            )
        else:
            extra = f" {record.args}" if record.args else ""
            print(f"instant {record.track:28s} {record.name:20s} @{record.ts:.6g}{extra}")
    if view.truncated:
        print("(stream tail truncated — crashed or still writing)", file=sys.stderr)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    a, b = _load(args, args.run_a), _load(args, args.run_b)
    metrics_a, metrics_b = a.last_metrics(), b.last_metrics()
    keys = sorted(set(metrics_a) | set(metrics_b))
    table = TextTable(
        ["metric", a.run_id[:24], b.run_id[:24], "change"],
        title="last metrics checkpoint, A vs B",
    )
    for key in keys:
        va, vb = metrics_a.get(key), metrics_b.get(key)
        change = ""
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)) and va:
            change = f"{(vb - va) / abs(va):+.1%}"
        table.add_row(key, "-" if va is None else va, "-" if vb is None else vb, change)
    print(table.render())
    print(
        f"spans: {len(a.spans)} vs {len(b.spans)}   "
        f"status: {a.status} vs {b.status}"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    view = _load(args, args.run)
    out = args.out if args.out is not None else view.directory / "trace.json"
    atomic_write_text(
        out, json.dumps(view.chrome_trace_events(), indent=1, default=str) + "\n"
    )
    print(f"wrote {len(view.spans)} spans / {len(view.instants)} instants to {out}")
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    entries = history_mod.load_history(args.history)
    regressions, note = history_mod.detect_regressions(
        entries, threshold=args.threshold, window=args.window
    )
    print(history_mod.render_trend(entries, window=args.window))
    print(f"regress: {note}; threshold {args.threshold:.0%}")
    if not regressions:
        print("regress: no regressions")
        return 0
    for regression in regressions:
        print(f"REGRESSION: {regression.describe()}", file=sys.stderr)
    blocking = [r for r in regressions if r.metric in set(args.block or ())]
    if blocking:
        # Promoted metrics gate unconditionally: --warn-only covers runner
        # noise on advisory metrics, not the hot-path throughput contract.
        for regression in blocking:
            print(f"regress: {regression.metric} is blocking", file=sys.stderr)
        return 1
    if args.warn_only:
        print("regress: --warn-only set; exiting 0", file=sys.stderr)
        return 0
    return 1


_COMMANDS = {
    "list": _cmd_list,
    "summary": _cmd_summary,
    "tail": _cmd_tail,
    "diff": _cmd_diff,
    "trace": _cmd_trace,
    "regress": _cmd_regress,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    except BrokenPipeError:
        # `obs summary | head` closing the pipe early is not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
