"""Span/event telemetry: sinks, the combined :class:`Telemetry` handle,
and the ambient-telemetry context.

A *span* is a named interval on a *track*.  Track names use the
``"group/lane"`` convention — ``"element0/CT"``, ``"hpl/step"`` — which the
Chrome-trace exporter maps to one ``pid`` per group and one ``tid`` per lane,
so a pipeline trace opens in Perfetto with one process per compute element
and one thread per controller/task, exactly the shape of the paper's Table I.

Zero-cost discipline: every instrumented call site is guarded by a plain
``is not None`` / ``enabled`` check, and :class:`NullSink` methods are
no-ops, so a run with telemetry disabled executes the identical arithmetic
(and consumes the identical RNG stream) as an uninstrumented build.
Timestamps are *supplied by the caller* — virtual time inside simulations,
wall time only in the bench harness — so recording never reads a clock on a
simulated path.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class SpanRecord:
    """One closed interval on a track."""

    track: str
    name: str
    start: float
    end: float
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class InstantRecord:
    """One point event on a track."""

    track: str
    name: str
    ts: float
    args: dict[str, Any] = field(default_factory=dict)


class TelemetrySink:
    """Receiver interface for spans and instants.

    The base class *is* the null sink: every method is a no-op and
    ``enabled`` is False, so hot paths can keep a sink reference
    unconditionally and only pay an attribute check.
    """

    enabled = False

    def begin(self, track: str, name: str, ts: float, **args: Any) -> None:
        """Open a span on *track* at *ts*."""

    def end(self, track: str, name: str, ts: float, **args: Any) -> None:
        """Close the innermost open span named *name* on *track*."""

    def complete(self, track: str, name: str, start: float, end: float, **args: Any) -> None:
        """Record an already-closed span in one call."""

    def instant(self, track: str, name: str, ts: float, **args: Any) -> None:
        """Record a point event."""


class NullSink(TelemetrySink):
    """Explicit no-op sink (identical to the base, named for readability)."""


#: Shared no-op sink for defaulting.
NULL_SINK = NullSink()


#: Ring-buffer cap for :class:`RecordingSink` — generous for any figure run,
#: but bounded, so a runaway DES run degrades to "oldest spans dropped"
#: instead of unbounded memory growth.  Pass ``max_records=None`` to opt out.
DEFAULT_MAX_RECORDS = 1_000_000


class RecordingSink(TelemetrySink):
    """Collects spans and instants in memory for export after the run.

    Both stores are ring buffers capped at *max_records* entries each
    (:data:`DEFAULT_MAX_RECORDS` unless overridden): once full, the oldest
    record is dropped and ``dropped`` incremented.  The drop count surfaces
    in the metrics snapshot as ``obs.sink.dropped`` via
    :meth:`Telemetry.sync_sink_metrics`, so capped telemetry is visible,
    never silent.  For runs that must keep everything, stream to disk
    instead (:class:`repro.obs.stream.StreamingSink`).
    """

    enabled = True

    def __init__(self, max_records: Optional[int] = DEFAULT_MAX_RECORDS) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1 or None (got {max_records})")
        self.max_records = max_records
        self.spans: "deque[SpanRecord]" = deque(maxlen=max_records)
        self.instants: "deque[InstantRecord]" = deque(maxlen=max_records)
        self.dropped = 0
        self._open: dict[tuple[str, str], list[tuple[float, dict[str, Any]]]] = {}

    def _append(self, store: deque, record: Any) -> None:
        if store.maxlen is not None and len(store) == store.maxlen:
            self.dropped += 1
        store.append(record)

    def begin(self, track: str, name: str, ts: float, **args: Any) -> None:
        self._open.setdefault((track, name), []).append((ts, dict(args)))

    def end(self, track: str, name: str, ts: float, **args: Any) -> None:
        stack = self._open.get((track, name))
        if not stack:
            raise ValueError(f"no open span {name!r} on track {track!r}")
        start, start_args = stack.pop()
        start_args.update(args)
        self._append(self.spans, SpanRecord(track, name, start, ts, start_args))

    def complete(self, track: str, name: str, start: float, end: float, **args: Any) -> None:
        self._append(self.spans, SpanRecord(track, name, start, end, dict(args)))

    def instant(self, track: str, name: str, ts: float, **args: Any) -> None:
        self._append(self.instants, InstantRecord(track, name, ts, dict(args)))

    def open_spans(self) -> list[tuple[str, str]]:
        """(track, name) of spans begun but not yet ended — a leak check."""
        return [key for key, stack in self._open.items() if stack]

    def tracks(self) -> list[str]:
        """All track names seen, in first-appearance order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track, None)
        for inst in self.instants:
            seen.setdefault(inst.track, None)
        return list(seen)


class Telemetry:
    """One handle bundling a span sink and a metrics registry.

    This is what instrumented layers accept (``telemetry=None`` everywhere),
    what the bench CLI constructs for ``--trace-out``/``--metrics-out``, and
    what :func:`use` installs as the ambient default.
    """

    def __init__(
        self,
        sink: Optional[TelemetrySink] = None,
        metrics: Optional[MetricsRegistry] = None,
        shard_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.sink = sink if sink is not None else RecordingSink()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Directory worker processes may write per-worker span shards into
        #: (set by :class:`repro.obs.ledger.RunLedger`).  When present,
        #: :func:`repro.exec.pool.run_tasks` keeps parallelism on under
        #: ambient telemetry instead of falling back to the serial path.
        self.shard_dir = Path(shard_dir) if shard_dir is not None else None

    @property
    def enabled(self) -> bool:
        return self.sink.enabled

    def _recording_sink(self) -> Optional[RecordingSink]:
        """The first :class:`RecordingSink` in the sink tree (tee-aware)."""
        queue: list[TelemetrySink] = [self.sink]
        while queue:
            sink = queue.pop(0)
            if isinstance(sink, RecordingSink):
                return sink
            queue.extend(getattr(sink, "sinks", ()))
            child = getattr(sink, "sink", None)
            if isinstance(child, TelemetrySink):
                queue.append(child)
        return None

    def flush(self) -> None:
        """Flush a streaming/tee sink through to disk (no-op otherwise)."""
        flush = getattr(self.sink, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        """Close a streaming/tee sink (no-op otherwise)."""
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()

    def sync_sink_metrics(self) -> None:
        """Mirror sink health (record counts, drops) into the metrics registry.

        Called before every metrics export so ``obs.sink.dropped`` makes a
        capped :class:`RecordingSink` (or a sampled stream) visible in the
        snapshot rather than silently truncating the record.
        """
        recording = self._recording_sink()
        if recording is not None:
            gauge = self.metrics.gauge
            gauge("obs.sink.spans", "spans held in the recording ring").set(
                len(recording.spans)
            )
            gauge("obs.sink.instants", "instants held in the recording ring").set(
                len(recording.instants)
            )
            gauge(
                "obs.sink.dropped",
                "records dropped by the recording ring's max_records cap",
            ).set(recording.dropped)
        written = getattr(self.sink, "records_written", None)
        if written is not None:
            self.metrics.gauge(
                "obs.sink.records_written", "records streamed to disk"
            ).set(written)

    # -- wall-clock spans (bench harness only; never on simulated paths) ------
    @contextmanager
    def wall_span(self, track: str, name: str, **args: Any) -> Iterator[None]:
        """Record a span timed with ``time.perf_counter``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.sink.complete(track, name, start, time.perf_counter(), **args)

    # -- simulator bookkeeping -------------------------------------------------
    def record_simulator(self, sim, prefix: str = "sim") -> None:
        """Publish a :class:`repro.sim.engine.Simulator`'s stats as gauges."""
        stats = sim.stats()
        gauge = self.metrics.gauge
        gauge(f"{prefix}.now", "virtual clock at capture (s)").set(stats.now)
        gauge(f"{prefix}.events_processed", "events processed").set(stats.events_processed)
        gauge(f"{prefix}.events_scheduled", "events scheduled").set(stats.events_scheduled)
        gauge(f"{prefix}.queue_depth", "calendar depth at capture").set(stats.queue_depth)
        gauge(f"{prefix}.max_queue_depth", "peak calendar depth").set(stats.max_queue_depth)
        gauge(f"{prefix}.wall_seconds", "wall time spent in run()").set(stats.wall_seconds)
        gauge(f"{prefix}.sim_per_wall", "virtual seconds per wall second").set(
            stats.sim_per_wall
        )

    # -- export ---------------------------------------------------------------
    def chrome_trace(self) -> list[dict[str, Any]]:
        """The recorded spans/instants as Chrome trace-event dicts."""
        from repro.obs.export import chrome_trace_events

        recording = self._recording_sink()
        if recording is None:
            return []
        return chrome_trace_events(list(recording.spans), list(recording.instants))

    def write_chrome_trace(self, path: Union[str, Path]) -> Path:
        """Write the Chrome trace-event JSON array (Perfetto-loadable)."""
        path = Path(path)
        path.write_text(json.dumps(self.chrome_trace(), indent=1, default=str) + "\n")
        return path

    def write_metrics(self, path: Union[str, Path]) -> Path:
        """Write the metrics snapshot as JSON (sink health included)."""
        self.sync_sink_metrics()
        path = Path(path)
        path.write_text(self.metrics.to_json() + "\n")
        return path

    def flame_summary(self) -> str:
        """Plain-text flamegraph-style summary of the recorded spans."""
        from repro.obs.export import flame_summary

        recording = self._recording_sink()
        if recording is None:
            return ""
        return flame_summary(list(recording.spans))


# -- ambient telemetry --------------------------------------------------------
#
# Layers that sit too deep to thread a handle through every constructor
# (the bench figures build simulators and mappers many frames down) consult
# ``current()`` when their explicit ``telemetry`` argument is None.  The
# default is None — not a null object — so the `is not None` guard keeps the
# disabled path free of any call.

_STACK: list[Telemetry] = []


def current() -> Optional[Telemetry]:
    """The innermost active telemetry, or None when disabled."""
    return _STACK[-1] if _STACK else None


@contextmanager
def use(telemetry: Optional[Telemetry]) -> Iterator[Optional[Telemetry]]:
    """Install *telemetry* as the ambient default for the duration.

    ``use(None)`` is a no-op context, so call sites can wrap unconditionally.
    """
    if telemetry is None:
        yield None
        return
    _STACK.append(telemetry)
    try:
        yield telemetry
    finally:
        _STACK.pop()
