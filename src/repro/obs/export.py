"""Exporters: Chrome trace-event JSON and a plain-text flamegraph summary.

The Chrome trace-event format (the JSON-array flavour) is what
``chrome://tracing`` and Perfetto load directly: a list of event dicts with
``ph`` phase codes — ``"X"`` complete spans, ``"i"`` instants, ``"M"``
metadata.  Track names ``"group/lane"`` become one ``pid`` per group and one
``tid`` per lane, with ``process_name``/``thread_name`` metadata so the
viewer shows real names — one process per compute element, one thread per
controller or task, the shape of the paper's Table I and Fig. 7.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence, Union

from repro.obs.telemetry import InstantRecord, SpanRecord
from repro.util.tables import TextTable

#: Trace-event timestamps are microseconds; ours are seconds.
_US = 1e6


def _track_ids(tracks: Iterable[str]) -> dict[str, tuple[int, int, str, str]]:
    """Assign (pid, tid) per track from the ``group/lane`` convention."""
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    out: dict[str, tuple[int, int, str, str]] = {}
    for track in tracks:
        if track in out:
            continue
        group, sep, lane = track.partition("/")
        if not sep:
            group, lane = track, "main"
        pid = pids.setdefault(group, len(pids) + 1)
        tid = tids.setdefault((group, lane), sum(1 for g, _ in tids if g == group) + 1)
        out[track] = (pid, tid, group, lane)
    return out


def chrome_trace_events(
    spans: Sequence[SpanRecord], instants: Sequence[InstantRecord] = ()
) -> list[dict[str, Any]]:
    """Render spans/instants as a Chrome trace-event list (``ph: X/i/M``)."""
    ids = _track_ids([s.track for s in spans] + [i.track for i in instants])
    events: list[dict[str, Any]] = []
    named_threads: set[tuple[int, int]] = set()
    named_processes: set[int] = set()
    for track, (pid, tid, group, lane) in ids.items():
        if pid not in named_processes:
            named_processes.add(pid)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": group},
                }
            )
        if (pid, tid) not in named_threads:
            named_threads.add((pid, tid))
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
    for span in spans:
        pid, tid, _, _ = ids[span.track]
        events.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "pid": pid,
                "tid": tid,
                "args": dict(span.args),
            }
        )
    for inst in instants:
        pid, tid, _, _ = ids[inst.track]
        events.append(
            {
                "name": inst.name,
                "cat": "instant",
                "ph": "i",
                "s": "t",
                "ts": inst.ts * _US,
                "pid": pid,
                "tid": tid,
                "args": dict(inst.args),
            }
        )
    return events


def write_chrome_trace(
    path: Union[str, Path],
    spans: Sequence[SpanRecord],
    instants: Sequence[InstantRecord] = (),
) -> Path:
    """Write the trace-event JSON array to *path*."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace_events(spans, instants), indent=1, default=str) + "\n")
    return path


def flame_summary(spans: Sequence[SpanRecord], bar_width: int = 30) -> str:
    """Aggregate span time by (track, name) into a flamegraph-style table.

    One row per distinct (track, name), sorted by total time descending,
    with an inline bar scaled to the busiest row — the quick "where did the
    time go" view for terminals without a trace viewer.
    """
    totals: dict[tuple[str, str], list[float]] = {}
    for span in spans:
        entry = totals.setdefault((span.track, span.name), [0.0, 0.0])
        entry[0] += span.duration
        entry[1] += 1
    if not totals:
        return "no spans recorded"
    horizon = max(max(s.end for s in spans) - min(s.start for s in spans), 1e-12)
    busiest = max(entry[0] for entry in totals.values())
    table = TextTable(
        ["track", "span", "count", "total_s", "mean_s", "busy%", ""],
        title="span time by track (flamegraph summary)",
    )
    for (track, name), (total, count) in sorted(
        totals.items(), key=lambda item: -item[1][0]
    ):
        bar = "#" * max(1, int(round(bar_width * total / busiest)))
        table.add_row(
            track,
            name,
            int(count),
            f"{total:.6g}",
            f"{total / count:.6g}",
            f"{100.0 * total / horizon:.1f}",
            bar,
        )
    return table.render()
