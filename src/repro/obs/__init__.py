"""Unified telemetry: metrics registry, span tracing, Chrome-trace export.

The observability layer the ROADMAP's "fast as the hardware allows" goal
rests on — you cannot optimize hot paths you cannot see.  Three pieces:

* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Series` / :class:`Histogram` behind a :class:`MetricsRegistry`
  with labeled series, snapshot/reset and JSON/CSV/table rendering.
* :mod:`repro.obs.telemetry` — span/event sinks (:class:`RecordingSink`,
  no-op :class:`NullSink`), the combined :class:`Telemetry` handle, and the
  ambient :func:`current` / :func:`use` context that lets deep layers find
  the active telemetry without threading it through every constructor.
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and a plain-text flamegraph-style summary.
* :mod:`repro.obs.stream` — incremental JSONL span/metric sinks
  (:class:`StreamingSink` with bounded buffers, periodic flush+fsync and
  rotation) plus the composable :class:`TeeSink` / :class:`SamplingSink`
  wrappers, so a crashed run's telemetry is readable up to the last flush.
* :mod:`repro.obs.ledger` — the per-run flight recorder under
  ``benchmarks/out/runs/<run_id>/``: manifest, streamed span/metric shards
  (including per-worker shards from :mod:`repro.exec.pool`), final summary.
* :mod:`repro.obs.history` / :mod:`repro.obs.cli` — the bench trajectory
  (``benchmarks/BENCH_history.jsonl``) and the ``python -m repro.obs`` CLI:
  ``tail`` / ``summary`` / ``diff`` / ``trace`` / ``regress``.

Instrumented layers: :class:`repro.sim.engine.Simulator` (event counts,
queue depth, sim-vs-wall time), :class:`repro.core.adaptive.AdaptiveMapper`
(GSplit/CSplit series, bin hits/misses, update overhead),
:mod:`repro.core.pipeline` / :mod:`repro.core.taskqueue` (stage occupancy,
CT/NT transitions, bounce-corner reuse), and :mod:`repro.hpl`
(per-panel spans, running GFLOPS, progress callbacks).  Every hook is a
no-op when telemetry is disabled.  See ``docs/observability.md``.
"""

from repro.obs.export import chrome_trace_events, flame_summary, write_chrome_trace
from repro.obs.ledger import (
    DEFAULT_RUNS_ROOT,
    LedgerView,
    RunLedger,
    latest_run,
    load_run,
    resolve_run,
    run_dirs,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    Series,
)
from repro.obs.stream import (
    SamplingSink,
    StreamingSink,
    TeeSink,
    merge_streams,
    read_stream,
)
from repro.obs.telemetry import (
    DEFAULT_MAX_RECORDS,
    NULL_SINK,
    InstantRecord,
    NullSink,
    RecordingSink,
    SpanRecord,
    Telemetry,
    TelemetrySink,
    current,
    use,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "Series",
    "InstantRecord",
    "SpanRecord",
    "TelemetrySink",
    "NullSink",
    "NULL_SINK",
    "RecordingSink",
    "Telemetry",
    "current",
    "use",
    "chrome_trace_events",
    "write_chrome_trace",
    "flame_summary",
    "DEFAULT_MAX_RECORDS",
    "StreamingSink",
    "TeeSink",
    "SamplingSink",
    "read_stream",
    "merge_streams",
    "DEFAULT_RUNS_ROOT",
    "RunLedger",
    "LedgerView",
    "load_run",
    "run_dirs",
    "latest_run",
    "resolve_run",
]
