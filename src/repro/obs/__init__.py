"""Unified telemetry: metrics registry, span tracing, Chrome-trace export.

The observability layer the ROADMAP's "fast as the hardware allows" goal
rests on — you cannot optimize hot paths you cannot see.  Three pieces:

* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Series` / :class:`Histogram` behind a :class:`MetricsRegistry`
  with labeled series, snapshot/reset and JSON/CSV/table rendering.
* :mod:`repro.obs.telemetry` — span/event sinks (:class:`RecordingSink`,
  no-op :class:`NullSink`), the combined :class:`Telemetry` handle, and the
  ambient :func:`current` / :func:`use` context that lets deep layers find
  the active telemetry without threading it through every constructor.
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and a plain-text flamegraph-style summary.

Instrumented layers: :class:`repro.sim.engine.Simulator` (event counts,
queue depth, sim-vs-wall time), :class:`repro.core.adaptive.AdaptiveMapper`
(GSplit/CSplit series, bin hits/misses, update overhead),
:mod:`repro.core.pipeline` / :mod:`repro.core.taskqueue` (stage occupancy,
CT/NT transitions, bounce-corner reuse), and :mod:`repro.hpl`
(per-panel spans, running GFLOPS, progress callbacks).  Every hook is a
no-op when telemetry is disabled.  See ``docs/observability.md``.
"""

from repro.obs.export import chrome_trace_events, flame_summary, write_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    Series,
)
from repro.obs.telemetry import (
    NULL_SINK,
    InstantRecord,
    NullSink,
    RecordingSink,
    SpanRecord,
    Telemetry,
    TelemetrySink,
    current,
    use,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "Series",
    "InstantRecord",
    "SpanRecord",
    "TelemetrySink",
    "NullSink",
    "NULL_SINK",
    "RecordingSink",
    "Telemetry",
    "current",
    "use",
    "chrome_trace_events",
    "write_chrome_trace",
    "flame_summary",
]
