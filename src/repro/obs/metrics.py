"""Labeled metrics: counters, gauges, time series, histograms.

The paper argues from *measured* run-time behaviour — per-DGEMM rates
``P_G``/``P_C`` driving GSplit (Section IV), stage occupancy in the software
pipeline (Table I), panel-by-panel Linpack progress (Fig. 13).  This module
gives every layer one place to put those numbers: a :class:`MetricsRegistry`
of named metrics, each holding one value (or series) per label combination.

Design constraints, in order:

* **Cheap.**  A metric update is a dict lookup and a float add; the
  instrumented hot paths (one update per DGEMM, per pipeline state change,
  per Linpack panel) follow the paper's own ~1 microsecond overhead
  discipline for the adaptive update itself.
* **Deterministic.**  Metrics never read clocks or RNGs; recording them can
  never perturb a simulation.  Time-series x values are supplied by the
  caller (virtual time, update index, panel number).
* **Renderable.**  ``snapshot()`` is plain JSON; ``table()`` renders through
  :class:`repro.util.tables.TextTable` like every other report in the repo.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Iterator, Optional, Sequence

from repro.util.tables import TextTable

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base: a named family of labeled series."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._data: dict[LabelKey, Any] = {}

    def labels(self) -> list[dict[str, str]]:
        """All label combinations seen so far, in first-appearance order."""
        return [dict(key) for key in self._data]

    def clear(self) -> None:
        """Drop all recorded data (the registration itself survives)."""
        self._data.clear()

    # -- rendering hooks (overridden per kind) --------------------------------
    def _series_snapshot(self, value: Any) -> Any:
        return value

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dict: kind, help and one entry per label combination."""
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": self._series_snapshot(value)}
                for key, value in self._data.items()
            ],
        }


class Counter(Metric):
    """A monotonically increasing sum (events, bytes, seconds)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        key = _label_key(labels)
        self._data[key] = self._data.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return float(self._data.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every label combination."""
        return float(sum(self._data.values()))


class Gauge(Metric):
    """A point-in-time value that can move both ways (queue depth, GSplit)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._data[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels)
        self._data[key] = self._data.get(key, 0.0) + amount

    def value(self, **labels: Any) -> Optional[float]:
        got = self._data.get(_label_key(labels))
        return None if got is None else float(got)


class Series(Metric):
    """An append-only ``(x, y)`` time series (GSplit per update, GFLOPS per panel)."""

    kind = "series"

    def append(self, x: float, y: float, **labels: Any) -> None:
        self._data.setdefault(_label_key(labels), []).append((float(x), float(y)))

    def points(self, **labels: Any) -> list[tuple[float, float]]:
        return list(self._data.get(_label_key(labels), []))

    def last(self, **labels: Any) -> Optional[tuple[float, float]]:
        pts = self._data.get(_label_key(labels))
        return pts[-1] if pts else None

    def _series_snapshot(self, value: list[tuple[float, float]]) -> list[list[float]]:
        return [[x, y] for x, y in value]


#: Default histogram bucket upper bounds — decade-ish spacing that covers
#: microsecond pipeline stages up to hour-long Linpack runs.
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1e3, 1e4)


class Histogram(Metric):
    """Counts of observations in fixed buckets, plus count/sum/min/max."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        state = self._data.get(key)
        if state is None:
            state = {
                "count": 0,
                "sum": 0.0,
                "min": float("inf"),
                "max": float("-inf"),
                "bucket_counts": [0] * (len(self.buckets) + 1),
            }
            self._data[key] = state
        state["count"] += 1
        state["sum"] += value
        state["min"] = min(state["min"], value)
        state["max"] = max(state["max"], value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                state["bucket_counts"][i] += 1
                return
        state["bucket_counts"][-1] += 1  # overflow bucket

    def count(self, **labels: Any) -> int:
        state = self._data.get(_label_key(labels))
        return 0 if state is None else int(state["count"])

    def mean(self, **labels: Any) -> float:
        state = self._data.get(_label_key(labels))
        if state is None or state["count"] == 0:
            return 0.0
        return state["sum"] / state["count"]

    def _series_snapshot(self, value: dict[str, Any]) -> dict[str, Any]:
        out = dict(value)
        out["buckets"] = list(self.buckets)
        return out


class MetricsRegistry:
    """Get-or-create store of named metrics; the unit of snapshot/reset.

    Registering the same name twice returns the same object (and rejects a
    kind mismatch), so instrumented layers can grab their metrics wherever
    they run without threading objects through every constructor.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs: Any) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} is a {existing.kind}, requested {cls.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def series(self, name: str, help: str = "") -> Series:
        return self._get_or_create(Series, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Explicitly drop all recorded data, keeping registrations.

        This is the *only* way metric state disappears — persistence
        deliberately never serialises metrics, so a restored component either
        starts from a registry reset here or accumulates on top of live data,
        never from silent half-state.
        """
        for metric in self._metrics.values():
            metric.clear()

    # -- rendering -------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """All metrics as one JSON-ready dict, keyed by metric name."""
        return {name: metric.snapshot() for name, metric in sorted(self._metrics.items())}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, default=float)

    def to_csv(self) -> str:
        """Flat CSV: one row per (metric, labels) with a scalar summary."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["metric", "kind", "labels", "value"])
        for name, metric in sorted(self._metrics.items()):
            for entry in metric.snapshot()["series"]:
                labels = ";".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
                writer.writerow([name, metric.kind, labels, _scalar(metric, entry["value"])])
        return buffer.getvalue()

    def table(self) -> TextTable:
        """Aligned text table of every labeled series — the report section."""
        table = TextTable(["metric", "kind", "labels", "value"], title="telemetry metrics")
        for name, metric in sorted(self._metrics.items()):
            for entry in metric.snapshot()["series"]:
                labels = ";".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
                table.add_row(name, metric.kind, labels, _scalar(metric, entry["value"]))
        return table

    def render(self) -> str:
        return self.table().render()

    def scalar_summary(self) -> dict[str, Any]:
        """Compact ``{name[{labels}]: scalar}`` view for report summaries."""
        out: dict[str, Any] = {}
        for name, metric in sorted(self._metrics.items()):
            for entry in metric.snapshot()["series"]:
                labels = ";".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
                key = f"{name}{{{labels}}}" if labels else name
                out[key] = _scalar(metric, entry["value"])
        return out


def _scalar(metric: Metric, value: Any) -> Any:
    """One representative number for a series entry (for tables/CSV)."""
    if metric.kind == "series":
        return value[-1][1] if value else ""
    if metric.kind == "histogram":
        count = value.get("count", 0)
        return f"n={count} mean={value['sum'] / count:.4g}" if count else "n=0"
    return value
