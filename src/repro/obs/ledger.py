"""The run ledger: a per-run flight recorder under ``benchmarks/out/runs/``.

Every recorded run gets one directory::

    benchmarks/out/runs/<run_id>/
        manifest.json            # written first: who/what/when, code version
        spans-main.jsonl         # streamed spans/instants (rotates at max_bytes)
        spans-worker-<pid>.jsonl # per-worker shards from repro.exec.pool
        metrics-worker-<pid>.json
        metrics.jsonl            # metrics-registry checkpoints, one per flush
        summary.json             # written last — its absence means the run died

The manifest lands *before* the run starts and every span/metric record is
flushed incrementally (:mod:`repro.obs.stream`), so a crashed, killed, or
still-in-flight run is readable at any moment: :func:`load_run` merges the
main stream with any worker shards (tracks prefixed ``worker-<pid>/`` so a
Chrome trace shows one process group per worker), tolerates a truncated
tail, and reports ``status`` as ``completed`` / ``failed`` / ``in-flight``
depending on what ``summary.json`` says — or whether it exists at all.

Adopted by :class:`repro.session.Session` (``ledger=`` argument), the bench
CLI (``--ledger``), ``python -m repro.verify crossval --ledger``, and the
perf harness (``benchmarks/bench_perf.py`` records its telemetry-overhead
measurement into a ledger).  ``python -m repro.obs`` is the read side.
"""

from __future__ import annotations

import json
import os
import re
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import (
    DEFAULT_FLUSH_INTERVAL,
    DEFAULT_FLUSH_RECORDS,
    StreamingSink,
    iter_jsonl,
    merge_streams,
)
from repro.obs.telemetry import Telemetry
from repro.util.io import atomic_write_text

#: Where run ledgers live unless the caller overrides it.
DEFAULT_RUNS_ROOT = Path("benchmarks") / "out" / "runs"

MANIFEST_NAME = "manifest.json"
SPANS_NAME = "spans-main.jsonl"
METRICS_NAME = "metrics.jsonl"
SUMMARY_NAME = "summary.json"

_SLUG_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def _slug(text: str) -> str:
    return _SLUG_RE.sub("-", text).strip("-") or "run"


def _code_version() -> str:
    """The repo-wide source digest (lazy import: obs must not pull exec)."""
    from repro.exec.cache import code_version

    return code_version()


class RunLedger:
    """One run's flight recorder: manifest up front, streams while running,
    summary on clean exit.

    Construct through :meth:`open`; pass ``ledger.telemetry`` to (or install
    ambiently around) whatever you are running.  Workers of
    :func:`repro.exec.pool.run_tasks` discover the directory through
    ``Telemetry.shard_dir`` and write their own ``spans-worker-<pid>``
    shards into it.
    """

    def __init__(self, directory: Path, manifest: dict[str, Any], sink: StreamingSink) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self.sink = sink
        self.telemetry = Telemetry(
            sink=sink, metrics=MetricsRegistry(), shard_dir=self.directory
        )
        self._started = time.monotonic()
        self._metric_checkpoints = 0
        self._finished = False
        sink.on_flush = self._checkpoint_metrics

    # -- lifecycle -------------------------------------------------------------
    @classmethod
    def open(
        cls,
        name: str,
        *,
        root: Union[str, Path] = DEFAULT_RUNS_ROOT,
        run_id: Optional[str] = None,
        config: Optional[dict[str, Any]] = None,
        flush_records: int = DEFAULT_FLUSH_RECORDS,
        flush_interval: Optional[float] = DEFAULT_FLUSH_INTERVAL,
        fsync: bool = True,
        max_bytes: Optional[int] = None,
    ) -> "RunLedger":
        """Create the run directory, write the manifest, start streaming."""
        root = Path(root)
        if run_id is None:
            run_id = f"{time.strftime('%Y%m%d-%H%M%S')}-{_slug(name)}-{os.getpid()}"
        directory = root / _slug(run_id)
        suffix = 0
        while directory.exists():
            suffix += 1
            directory = root / f"{_slug(run_id)}-{suffix}"
        directory.mkdir(parents=True)
        manifest = {
            "run_id": directory.name,
            "name": name,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "created_unix": time.time(),
            "pid": os.getpid(),
            "argv": list(sys.argv),
            "python": sys.version.split()[0],
            "code_version": _code_version(),
            "config": dict(config or {}),
        }
        atomic_write_text(directory / MANIFEST_NAME, json.dumps(manifest, indent=2, default=str) + "\n")
        sink = StreamingSink(
            directory / SPANS_NAME,
            flush_records=flush_records,
            flush_interval=flush_interval,
            fsync=fsync,
            max_bytes=max_bytes,
        )
        return cls(directory, manifest, sink)

    @property
    def run_id(self) -> str:
        return self.manifest["run_id"]

    def annotate(self, **fields: Any) -> None:
        """Merge *fields* into the manifest and rewrite it atomically.

        Used for facts only known after opening — the scenario hash, the
        machine preset, the resolved execution policy.
        """
        self.manifest.update(fields)
        atomic_write_text(
            self.directory / MANIFEST_NAME,
            json.dumps(self.manifest, indent=2, default=str) + "\n",
        )

    def _checkpoint_metrics(self) -> None:
        """Append one metrics-registry checkpoint line (called per flush)."""
        if not len(self.telemetry.metrics):
            return
        self._metric_checkpoints += 1
        line = json.dumps(
            {
                "seq": self._metric_checkpoints,
                "wall": time.time(),
                "metrics": self.telemetry.metrics.scalar_summary(),
            },
            default=str,
        )
        with open(self.directory / METRICS_NAME, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            if self.sink.fsync:
                os.fsync(handle.fileno())

    def worker_shards(self) -> list[Path]:
        """The per-worker span shards present in the run directory."""
        return sorted(self.directory.glob("spans-worker-*.jsonl"))

    def finish(
        self, summary: Optional[dict[str, Any]] = None, status: str = "completed"
    ) -> Path:
        """Close the stream and write ``summary.json`` — the clean-exit marker."""
        if self._finished:
            return self.directory / SUMMARY_NAME
        self.telemetry.sync_sink_metrics()
        self.sink.close()
        self._checkpoint_metrics()
        document = {
            "status": status,
            "finished": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "wall_seconds": time.monotonic() - self._started,
            "records_written": self.sink.records_written,
            "flushes": self.sink.flushes,
            "rotations": self.sink.rotations,
            "worker_shards": [p.name for p in self.worker_shards()],
            "summary": dict(summary or {}),
        }
        path = atomic_write_text(
            self.directory / SUMMARY_NAME, json.dumps(document, indent=2, default=str) + "\n"
        )
        self._finished = True
        return path

    def fail(self, error: str) -> Path:
        """Record an orderly failure (the run raised but did not die)."""
        return self.finish({"error": error}, status="failed")

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.fail(f"{exc_type.__name__}: {exc}")
        elif not self._finished:
            self.finish()


# -- reading ------------------------------------------------------------------


@dataclass
class LedgerView:
    """A parsed run ledger — everything readable, even from a dead run."""

    directory: Path
    manifest: dict[str, Any]
    summary: Optional[dict[str, Any]]
    spans: list = field(default_factory=list)
    instants: list = field(default_factory=list)
    metrics: list[dict[str, Any]] = field(default_factory=list)
    worker_metrics: dict[str, dict[str, Any]] = field(default_factory=dict)
    shards: list[str] = field(default_factory=list)
    truncated: bool = False

    @property
    def run_id(self) -> str:
        return str(self.manifest.get("run_id", self.directory.name))

    @property
    def name(self) -> str:
        return str(self.manifest.get("name", ""))

    @property
    def status(self) -> str:
        """``completed`` / ``failed`` from the summary; ``in-flight`` without one.

        ``in-flight`` covers both a live run and a crashed one — the ledger
        cannot tell them apart (that is the point: nothing at death time is
        required for the record to be readable).
        """
        if self.summary is None:
            return "in-flight"
        return str(self.summary.get("status", "completed"))

    def last_metrics(self) -> dict[str, Any]:
        """The most recent metrics checkpoint's scalar summary."""
        return dict(self.metrics[-1].get("metrics", {})) if self.metrics else {}

    def span_counts(self) -> dict[str, int]:
        """Span counts per track, first-appearance order."""
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.track] = counts.get(span.track, 0) + 1
        return counts

    def chrome_trace_events(self) -> list[dict[str, Any]]:
        from repro.obs.export import chrome_trace_events

        return chrome_trace_events(self.spans, self.instants)


def load_run(directory: Union[str, Path]) -> LedgerView:
    """Parse one run directory, tolerating everything a crash leaves behind.

    Requires only ``manifest.json`` (written before the run starts);
    missing or truncated streams, absent summaries and half-written worker
    shards all degrade to partial data plus the ``truncated`` flag.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError) as error:
        raise FileNotFoundError(f"{directory} is not a run ledger: {error}") from None

    summary: Optional[dict[str, Any]] = None
    try:
        summary = json.loads((directory / SUMMARY_NAME).read_text())
    except (OSError, ValueError):
        summary = None

    shards: list[tuple[str, Path]] = [("", directory / SPANS_NAME)]
    shard_names: list[str] = []
    for shard in sorted(directory.glob("spans-worker-*.jsonl")):
        label = shard.name[len("spans-") : -len(".jsonl")]
        shards.append((label, shard))
        shard_names.append(shard.name)
    spans, instants, truncated = merge_streams(shards)

    metrics: list[dict[str, Any]] = []
    metrics_path = directory / METRICS_NAME
    if metrics_path.exists():
        for record, ok in iter_jsonl(metrics_path):
            if ok:
                metrics.append(record)
            else:
                truncated = True

    worker_metrics: dict[str, dict[str, Any]] = {}
    for snapshot in sorted(directory.glob("metrics-worker-*.json")):
        try:
            worker_metrics[snapshot.stem[len("metrics-") :]] = json.loads(
                snapshot.read_text()
            )
        except (OSError, ValueError):
            truncated = True

    return LedgerView(
        directory=directory,
        manifest=manifest,
        summary=summary,
        spans=spans,
        instants=instants,
        metrics=metrics,
        worker_metrics=worker_metrics,
        shards=shard_names,
        truncated=truncated,
    )


def run_dirs(root: Union[str, Path] = DEFAULT_RUNS_ROOT) -> list[Path]:
    """All run directories under *root* (those holding a manifest), sorted."""
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(p for p in root.iterdir() if (p / MANIFEST_NAME).is_file())


def latest_run(root: Union[str, Path] = DEFAULT_RUNS_ROOT) -> Optional[Path]:
    """The most recently created run directory under *root*, or None."""
    candidates = run_dirs(root)
    if not candidates:
        return None

    def created(path: Path) -> float:
        try:
            return float(json.loads((path / MANIFEST_NAME).read_text())["created_unix"])
        except (OSError, ValueError, KeyError, TypeError):
            return (path / MANIFEST_NAME).stat().st_mtime

    return max(candidates, key=created)


def resolve_run(spec: str, root: Union[str, Path] = DEFAULT_RUNS_ROOT) -> Path:
    """Map a CLI run argument — a path, a run id, or ``latest`` — to a directory."""
    if spec == "latest":
        found = latest_run(root)
        if found is None:
            raise FileNotFoundError(f"no run ledgers under {root}")
        return found
    as_path = Path(spec)
    if (as_path / MANIFEST_NAME).is_file():
        return as_path
    candidate = Path(root) / spec
    if (candidate / MANIFEST_NAME).is_file():
        return candidate
    raise FileNotFoundError(f"no run ledger named {spec!r} (looked in {root})")
