"""Streaming telemetry: incremental JSONL sinks, rotation, tee and sampling.

The :class:`~repro.obs.telemetry.RecordingSink` keeps everything in memory
and exports at exit — fine for a figure, fatal for a multi-hour sweep: a
killed run loses every span it ever recorded.  :class:`StreamingSink`
inverts the trade: records are appended to a JSON-lines file through a
small bounded buffer that is flushed (and optionally ``fsync``-ed) every
*flush_records* records or *flush_interval* wall seconds, so a crashed or
``SIGKILL``-ed run is readable up to the last flush.  Files rotate at
*max_bytes* (``spans.jsonl`` → ``spans.jsonl.1`` …), keeping any single
shard tail-able.

The record format is one JSON object per line::

    {"t": "span",    "track": ..., "name": ..., "start": ..., "end": ..., "args": {...}}
    {"t": "instant", "track": ..., "name": ..., "ts": ..., "args": {...}}

:func:`read_stream` is the tolerant reader: it walks rotated shards in
order, parses every complete line, and treats a truncated or garbled tail
(the signature of a crash mid-write) as end-of-stream rather than an error
— reported via the ``truncated`` flag, never an exception.

Two composable wrappers round the family out: :class:`TeeSink` fans every
record out to several sinks (stream to disk *and* keep a bounded in-memory
ring for the end-of-run report), and :class:`SamplingSink` deterministically
keeps every *n*-th record per ``(track, name)`` — counter-based, never
random, so sampled telemetry is reproducible run to run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from repro.obs.telemetry import InstantRecord, SpanRecord, TelemetrySink

#: Flush after this many buffered records unless configured otherwise.
DEFAULT_FLUSH_RECORDS = 256

#: Flush at least this often (wall seconds) while records keep arriving.
DEFAULT_FLUSH_INTERVAL = 2.0


def _span_line(track: str, name: str, start: float, end: float, args: dict) -> str:
    return json.dumps(
        {"t": "span", "track": track, "name": name, "start": start, "end": end,
         "args": args},
        default=str,
    )


def _instant_line(track: str, name: str, ts: float, args: dict) -> str:
    return json.dumps(
        {"t": "instant", "track": track, "name": name, "ts": ts, "args": args},
        default=str,
    )


class StreamingSink(TelemetrySink):
    """Appends span/instant records to a JSONL file as they close.

    Parameters
    ----------
    path:
        The active shard.  Rotated-out predecessors get numeric suffixes
        (``path.1``, ``path.2`` …); :func:`stream_paths` lists the family
        in write order.
    flush_records / flush_interval:
        Flush the buffer after this many records or this many wall seconds
        since the last flush, whichever comes first.  ``flush_interval=None``
        disables the timer (count-only flushing, fully deterministic for
        tests).
    fsync:
        ``os.fsync`` after every flush so the bytes survive an OS-level
        crash, not just a process kill.  Costs a syscall per flush; workers
        writing high-rate shards may turn it off.
    max_bytes:
        Rotate the active file once it exceeds this size.  ``None`` never
        rotates.
    on_flush:
        Called (with no arguments) after every successful flush — the run
        ledger uses it to checkpoint the metrics registry alongside the
        spans.
    """

    enabled = True

    def __init__(
        self,
        path: Union[str, Path],
        *,
        flush_records: int = DEFAULT_FLUSH_RECORDS,
        flush_interval: Optional[float] = DEFAULT_FLUSH_INTERVAL,
        fsync: bool = True,
        max_bytes: Optional[int] = None,
        on_flush: Optional[Callable[[], None]] = None,
    ) -> None:
        if flush_records < 1:
            raise ValueError(f"flush_records must be >= 1 (got {flush_records})")
        self.path = Path(path)
        self.flush_records = int(flush_records)
        self.flush_interval = flush_interval
        self.fsync = bool(fsync)
        self.max_bytes = max_bytes
        self.on_flush = on_flush
        self.records_written = 0
        self.flushes = 0
        self.rotations = 0
        self._buffer: list[str] = []
        self._open_spans: dict[tuple[str, str], list[tuple[float, dict]]] = {}
        self._last_flush = time.monotonic()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self._closed = False

    # -- sink interface --------------------------------------------------------
    def begin(self, track: str, name: str, ts: float, **args: Any) -> None:
        self._open_spans.setdefault((track, name), []).append((ts, dict(args)))

    def end(self, track: str, name: str, ts: float, **args: Any) -> None:
        stack = self._open_spans.get((track, name))
        if not stack:
            raise ValueError(f"no open span {name!r} on track {track!r}")
        start, start_args = stack.pop()
        start_args.update(args)
        self._emit(_span_line(track, name, start, ts, start_args))

    def complete(self, track: str, name: str, start: float, end: float, **args: Any) -> None:
        self._emit(_span_line(track, name, start, end, dict(args)))

    def instant(self, track: str, name: str, ts: float, **args: Any) -> None:
        self._emit(_instant_line(track, name, ts, dict(args)))

    # -- buffering / durability ------------------------------------------------
    def _emit(self, line: str) -> None:
        if self._closed:
            raise ValueError(f"StreamingSink({self.path}) is closed")
        self._buffer.append(line)
        self.records_written += 1
        if len(self._buffer) >= self.flush_records:
            self.flush()
        elif (
            self.flush_interval is not None
            and time.monotonic() - self._last_flush >= self.flush_interval
        ):
            self.flush()

    def flush(self) -> None:
        """Write the buffer through to disk (and fsync when configured)."""
        if self._buffer:
            self._file.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self._last_flush = time.monotonic()
        self.flushes += 1
        if self.max_bytes is not None and self._file.tell() >= self.max_bytes:
            self._rotate()
        if self.on_flush is not None:
            self.on_flush()

    def _rotate(self) -> None:
        """Shift the active file to the next numeric suffix and reopen."""
        self._file.close()
        self.rotations += 1
        self.path.rename(self.path.with_name(f"{self.path.name}.{self.rotations}"))
        self._file = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        """Flush everything and close the file.  Idempotent."""
        if self._closed:
            return
        self.flush()
        self._file.close()
        self._closed = True

    def open_spans(self) -> list[tuple[str, str]]:
        """(track, name) of spans begun but not yet ended — a leak check."""
        return [key for key, stack in self._open_spans.items() if stack]

    def __enter__(self) -> "StreamingSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class TeeSink(TelemetrySink):
    """Fans every record out to several child sinks.

    The canonical composition: stream to disk for crash safety *and* keep a
    (capped) :class:`~repro.obs.telemetry.RecordingSink` so the end-of-run
    flame summary and Chrome trace still work without re-reading the file.
    """

    def __init__(self, *sinks: TelemetrySink) -> None:
        self.sinks = tuple(sinks)

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return any(sink.enabled for sink in self.sinks)

    def begin(self, track: str, name: str, ts: float, **args: Any) -> None:
        for sink in self.sinks:
            sink.begin(track, name, ts, **args)

    def end(self, track: str, name: str, ts: float, **args: Any) -> None:
        for sink in self.sinks:
            sink.end(track, name, ts, **args)

    def complete(self, track: str, name: str, start: float, end: float, **args: Any) -> None:
        for sink in self.sinks:
            sink.complete(track, name, start, end, **args)

    def instant(self, track: str, name: str, ts: float, **args: Any) -> None:
        for sink in self.sinks:
            sink.instant(track, name, ts, **args)

    def flush(self) -> None:
        for sink in self.sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class SamplingSink(TelemetrySink):
    """Deterministically forwards every *n*-th record per ``(track, name)``.

    Sampling is decided when a span *closes* (so ``begin``/``end`` pairs
    stay paired in the child) by a plain per-key counter — no RNG, so the
    kept subset is identical run to run.  The first record of every key is
    always kept; ``dropped`` counts what was not forwarded.
    """

    def __init__(self, sink: TelemetrySink, every: int) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1 (got {every})")
        self.sink = sink
        self.every = int(every)
        self.dropped = 0
        self._counts: dict[tuple[str, str, str], int] = {}
        self._open_spans: dict[tuple[str, str], list[tuple[float, dict]]] = {}

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return self.sink.enabled

    def _keep(self, kind: str, track: str, name: str) -> bool:
        key = (kind, track, name)
        count = self._counts.get(key, 0)
        self._counts[key] = count + 1
        if count % self.every == 0:
            return True
        self.dropped += 1
        return False

    def begin(self, track: str, name: str, ts: float, **args: Any) -> None:
        self._open_spans.setdefault((track, name), []).append((ts, dict(args)))

    def end(self, track: str, name: str, ts: float, **args: Any) -> None:
        stack = self._open_spans.get((track, name))
        if not stack:
            raise ValueError(f"no open span {name!r} on track {track!r}")
        start, start_args = stack.pop()
        start_args.update(args)
        if self._keep("span", track, name):
            self.sink.complete(track, name, start, ts, **start_args)

    def complete(self, track: str, name: str, start: float, end: float, **args: Any) -> None:
        if self._keep("span", track, name):
            self.sink.complete(track, name, start, end, **args)

    def instant(self, track: str, name: str, ts: float, **args: Any) -> None:
        if self._keep("instant", track, name):
            self.sink.instant(track, name, ts, **args)

    def flush(self) -> None:
        flush = getattr(self.sink, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()


# -- reading ------------------------------------------------------------------


def stream_paths(path: Union[str, Path]) -> list[Path]:
    """The shard family for *path*, rotated-out files first, in write order."""
    path = Path(path)
    rotated = []
    for candidate in path.parent.glob(f"{path.name}.*"):
        suffix = candidate.name[len(path.name) + 1 :]
        if suffix.isdigit():
            rotated.append((int(suffix), candidate))
    ordered = [p for _, p in sorted(rotated)]
    if path.exists():
        ordered.append(path)
    return ordered


def iter_jsonl(path: Union[str, Path]) -> Iterator[tuple[Optional[dict], bool]]:
    """Yield ``(record, ok)`` per line; a malformed line yields ``(None, False)``.

    A file truncated mid-line (the crash signature) produces exactly one
    trailing ``(None, False)`` — callers decide whether that is an error.
    Empty lines are skipped silently.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                yield None, False
            else:
                yield record, True


def read_stream(
    path: Union[str, Path],
) -> tuple[list[SpanRecord], list[InstantRecord], bool]:
    """Parse a streamed shard family into records.

    Returns ``(spans, instants, truncated)`` where *truncated* is True when
    any shard ended in an incomplete or garbled line — expected after a
    crash, and the readable prefix is still returned in full.
    """
    spans: list[SpanRecord] = []
    instants: list[InstantRecord] = []
    truncated = False
    for shard in stream_paths(path):
        for record, ok in iter_jsonl(shard):
            if not ok:
                truncated = True
                continue
            kind = record.get("t")
            try:
                if kind == "span":
                    spans.append(
                        SpanRecord(
                            record["track"], record["name"],
                            float(record["start"]), float(record["end"]),
                            dict(record.get("args") or {}),
                        )
                    )
                elif kind == "instant":
                    instants.append(
                        InstantRecord(
                            record["track"], record["name"], float(record["ts"]),
                            dict(record.get("args") or {}),
                        )
                    )
            except (KeyError, TypeError, ValueError):
                truncated = True
    return spans, instants, truncated


def merge_streams(
    shards: Sequence[tuple[str, Union[str, Path]]],
) -> tuple[list[SpanRecord], list[InstantRecord], bool]:
    """Merge labeled shard families into one record set.

    *shards* is ``[(label, path), ...]``; a non-empty label is prefixed onto
    every track (``"hpl/panel"`` → ``"w123/hpl/panel"``) so the Chrome-trace
    exporter shows one process group per worker.  Spans are ordered by start
    time across shards, instants by timestamp.
    """
    spans: list[SpanRecord] = []
    instants: list[InstantRecord] = []
    truncated = False
    for label, path in shards:
        shard_spans, shard_instants, shard_truncated = read_stream(path)
        truncated = truncated or shard_truncated
        if label:
            shard_spans = [
                SpanRecord(f"{label}/{s.track}", s.name, s.start, s.end, s.args)
                for s in shard_spans
            ]
            shard_instants = [
                InstantRecord(f"{label}/{i.track}", i.name, i.ts, i.args)
                for i in shard_instants
            ]
        spans.extend(shard_spans)
        instants.extend(shard_instants)
    spans.sort(key=lambda s: (s.start, s.end))
    instants.sort(key=lambda i: i.ts)
    return spans, instants, truncated
