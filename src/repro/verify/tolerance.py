"""Declared tolerances: every comparison in :mod:`repro.verify` names one.

A :class:`Tolerance` bundles a relative and an absolute bound; a comparison
passes when **either** bound covers the error (the usual ``isclose``
semantics), so a tolerance can be tight in relative terms without rejecting
near-zero values.  A :class:`Band` bounds a *ratio* instead — the right
shape for analytic-vs-DES comparisons, where the closed form deliberately
sits on one side of the exact-DES run (it assumes converged splits and
hides the pipeline prologue) and the declared knowledge is "DES lands
between 1.0x and 2.0x of the analytic step", not "they agree to 5%".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import require, require_nonnegative


@dataclass(frozen=True)
class Tolerance:
    """``|actual - expected| <= max(rel * |expected|, abs)``."""

    rel: float = 0.0
    abs: float = 0.0

    def __post_init__(self) -> None:
        require_nonnegative(self.rel, "rel")
        require_nonnegative(self.abs, "abs")

    def ok(self, expected: float, actual: float) -> bool:
        if math.isnan(expected) or math.isnan(actual):
            return False
        return abs(actual - expected) <= max(self.rel * abs(expected), self.abs)

    def error(self, expected: float, actual: float) -> float:
        """The violation margin (0 when within tolerance)."""
        return max(0.0, abs(actual - expected) - max(self.rel * abs(expected), self.abs))

    def describe(self) -> str:
        parts = []
        if self.rel:
            parts.append(f"rel={self.rel:g}")
        if self.abs:
            parts.append(f"abs={self.abs:g}")
        return "tol(" + ", ".join(parts or ["exact"]) + ")"


@dataclass(frozen=True)
class Band:
    """``low <= actual / expected <= high`` (expected must be nonzero)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        require(self.low <= self.high, "band low must be <= high")

    def ok(self, expected: float, actual: float) -> bool:
        if expected == 0.0:
            return actual == 0.0
        ratio = actual / expected
        return self.low <= ratio <= self.high

    def describe(self) -> str:
        return f"ratio in [{self.low:g}, {self.high:g}]"


#: Aggregates of a deterministic seeded rerun should reproduce almost
#: bit-for-bit; the slack absorbs summation-order differences across
#: numpy/BLAS builds, nothing more.  A perturbed model constant moves
#: results by orders of magnitude more than this.
EXACT = Tolerance(rel=1e-6, abs=1e-12)
