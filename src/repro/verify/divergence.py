"""Structured divergence reporting.

Every checker in :mod:`repro.verify` — differential, invariant, golden —
reports failures as :class:`Divergence` records collected into a
:class:`DivergenceReport`, so a CI failure names the trace, the step, the
metric, both values and the declared tolerance instead of burying a bare
``assert`` deep in a comparison loop.  The report renders as a readable
table and serialises to JSON (the artifact CI uploads on failure).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union


@dataclass(frozen=True)
class Divergence:
    """One metric, in one trace, outside its declared tolerance."""

    trace: str  # which run/trace diverged ("fig8_acmlg_both", "e5450/clean", ...)
    metric: str  # which quantity ("gflops", "step_time", "gsplit", ...)
    expected: Optional[float]
    actual: Optional[float]
    tolerance: str  # the declared tolerance, as text ("tol(rel=1e-06)", ...)
    step: Optional[int] = None  # panel step, when the metric is per-step
    detail: str = ""  # free-form context ("invariant: flop conservation", ...)

    def describe(self) -> str:
        where = f"{self.trace}" + (f" step {self.step}" if self.step is not None else "")
        exp = "None" if self.expected is None else f"{self.expected:.10g}"
        act = "None" if self.actual is None else f"{self.actual:.10g}"
        line = f"{where}: {self.metric} expected {exp}, got {act} ({self.tolerance})"
        if self.detail:
            line += f" — {self.detail}"
        return line


@dataclass
class DivergenceReport:
    """Every divergence one verification pass found (empty means pass)."""

    divergences: list[Divergence] = field(default_factory=list)
    #: Trace names that were checked (including the ones that passed).
    checked: list[str] = field(default_factory=list)

    def add(self, divergence: Divergence) -> None:
        self.divergences.append(divergence)

    def extend(self, divergences: "list[Divergence] | DivergenceReport") -> None:
        if isinstance(divergences, DivergenceReport):
            self.divergences.extend(divergences.divergences)
            self.checked.extend(divergences.checked)
        else:
            self.divergences.extend(divergences)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def __bool__(self) -> bool:
        return self.ok

    def __len__(self) -> int:
        return len(self.divergences)

    def traces(self) -> list[str]:
        """Trace names with at least one divergence, in first-hit order."""
        seen: dict[str, None] = {}
        for d in self.divergences:
            seen.setdefault(d.trace, None)
        return list(seen)

    def render(self) -> str:
        """Human-readable summary — what a failing CI log shows."""
        lines = [
            f"verification: {len(self.checked)} trace(s) checked, "
            f"{len(self.divergences)} divergence(s)"
        ]
        for d in self.divergences:
            lines.append("  DIVERGED " + d.describe())
        if self.ok and self.checked:
            lines.append("  all traces within declared tolerances")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "checked": list(self.checked),
            "divergences": [
                {
                    "trace": d.trace,
                    "metric": d.metric,
                    "step": d.step,
                    "expected": d.expected,
                    "actual": d.actual,
                    "tolerance": d.tolerance,
                    "detail": d.detail,
                }
                for d in self.divergences
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DivergenceReport":
        """Rebuild a report from :meth:`to_dict` output (cache round-trip)."""
        report = cls(checked=list(payload.get("checked", ())))
        for d in payload.get("divergences", ()):
            report.add(
                Divergence(
                    trace=d["trace"],
                    metric=d["metric"],
                    expected=d["expected"],
                    actual=d["actual"],
                    tolerance=d["tolerance"],
                    step=d.get("step"),
                    detail=d.get("detail", ""),
                )
            )
        return report

    def write_json(self, path: Union[str, Path]) -> Path:
        from repro.util.io import atomic_write_text

        return atomic_write_text(path, json.dumps(self.to_dict(), indent=2) + "\n")

    def raise_if_diverged(self) -> None:
        if not self.ok:
            raise VerificationError(self)


class VerificationError(AssertionError):
    """A verification pass found divergences; carries the full report."""

    def __init__(self, report: DivergenceReport) -> None:
        super().__init__(report.render())
        self.report = report
