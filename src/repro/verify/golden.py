"""The golden-trace store: recorded canonical runs gating CI on drift.

``record`` runs every canonical scenario (:mod:`repro.verify.scenarios`)
and writes one JSON trace per scenario into ``tests/golden/``; ``check``
re-runs them and compares aggregates, the per-step trajectory, and the
fault summary against the recorded values within each scenario's declared
tolerances — then pushes the fresh result through the invariant catalogue.
Any divergence is a structured :class:`~repro.verify.divergence.Divergence`
naming the trace, step and metric, so perf-model drift is an explicit,
reviewed event (re-record + commit) instead of a silent shift.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Sequence

from repro.session import Session
from repro.verify import scenarios as scenario_catalogue
from repro.verify.divergence import Divergence, DivergenceReport
from repro.verify.invariants import check_run
from repro.verify.scenarios import GoldenScenario
from repro.verify.tolerance import Tolerance

FORMAT_VERSION = 1
#: Default on-disk home of the golden traces, relative to the repo root.
DEFAULT_GOLDEN_DIR = Path("tests/golden")

#: Per-step fields compared between recorded and fresh runs.
STEP_FIELDS = ("step_time", "update_time", "panel_time", "comm_time", "mean_gsplit")


def _run(entry: GoldenScenario):
    scenario = entry.scenario()
    return scenario, Session(scenario).run()


def _trace_payload(entry: GoldenScenario) -> dict:
    scenario, result = _run(entry)
    degraded = result.degraded
    return {
        "version": FORMAT_VERSION,
        "name": entry.name,
        "description": entry.description,
        "scenario": {
            "configuration": scenario.scheduler_name,
            "n": scenario.n,
            "grid": list(result.grid),
            "seed": scenario.seed,
            "faults": bool(scenario.faults),
        },
        "tolerances": {
            "aggregate": asdict(entry.aggregate_tol),
            "step": asdict(entry.step_tol),
        },
        "recorded": {
            "gflops": result.gflops,
            "elapsed": result.elapsed,
            "degraded": degraded.describe() if degraded is not None else None,
            "fault_events": (
                [e.kind for e in degraded.events] if degraded is not None else []
            ),
            "steps": [
                {field: getattr(step, field) for field in STEP_FIELDS}
                for step in result.analytic.steps
            ],
        },
    }


def trace_path(name: str, golden_dir: Path) -> Path:
    return Path(golden_dir) / f"{name}.json"


def _resolve(names: Optional[Sequence[str]]) -> list[GoldenScenario]:
    if not names:
        return [scenario_catalogue.get(n) for n in scenario_catalogue.names()]
    return [scenario_catalogue.get(n) for n in names]


def record(
    names: Optional[Sequence[str]] = None,
    golden_dir: Path = DEFAULT_GOLDEN_DIR,
) -> list[Path]:
    """Run the canonical scenarios and (re)write their golden traces."""
    golden_dir = Path(golden_dir)
    golden_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for entry in _resolve(names):
        payload = _trace_payload(entry)
        path = trace_path(entry.name, golden_dir)
        path.write_text(json.dumps(payload, indent=1) + "\n")
        written.append(path)
    return written


def _compare_trace(entry: GoldenScenario, recorded: dict) -> list[Divergence]:
    """Fresh run vs one recorded payload, within the *declared* tolerances.

    Tolerances come from the code's catalogue entry, not the JSON file —
    a hand-edited file cannot quietly loosen its own gate.  (The recorded
    copy is informational, for reviewers reading a diff.)
    """
    name = entry.name
    out: list[Divergence] = []
    _, result = _run(entry)
    agg_tol, step_tol = entry.aggregate_tol, entry.step_tol
    rec = recorded["recorded"]

    for metric, actual in (("gflops", result.gflops), ("elapsed", result.elapsed)):
        expected = rec[metric]
        if not agg_tol.ok(expected, actual):
            out.append(Divergence(
                trace=name, metric=metric, expected=expected, actual=actual,
                tolerance=agg_tol.describe(),
                detail="golden aggregate drifted — re-record if intended",
            ))

    degraded = result.degraded
    actual_degraded = degraded.describe() if degraded is not None else None
    if actual_degraded != rec["degraded"]:
        out.append(Divergence(
            trace=name, metric="degraded", expected=None, actual=None,
            tolerance="exact",
            detail=f"fault summary changed: recorded {rec['degraded']!r}, "
                   f"got {actual_degraded!r}",
        ))
    actual_events = [e.kind for e in degraded.events] if degraded is not None else []
    if actual_events != rec.get("fault_events", []):
        out.append(Divergence(
            trace=name, metric="fault_events", expected=None, actual=None,
            tolerance="exact",
            detail=f"fault event sequence changed: recorded "
                   f"{rec.get('fault_events')}, got {actual_events}",
        ))

    steps = result.analytic.steps
    if len(steps) != len(rec["steps"]):
        out.append(Divergence(
            trace=name, metric="n_steps", expected=float(len(rec["steps"])),
            actual=float(len(steps)), tolerance="exact",
            detail="panel count changed",
        ))
    else:
        for i, (step, rec_step) in enumerate(zip(steps, rec["steps"])):
            for field in STEP_FIELDS:
                expected = rec_step[field]
                actual = getattr(step, field)
                if not step_tol.ok(expected, actual):
                    out.append(Divergence(
                        trace=name, metric=field, expected=expected, actual=actual,
                        tolerance=step_tol.describe(), step=i,
                        detail="golden per-step trajectory drifted",
                    ))

    # The fresh result must also satisfy the invariant catalogue — golden
    # agreement is necessary, internal consistency is too.
    out.extend(check_run(result, trace=name).divergences)
    return out


def check(
    names: Optional[Sequence[str]] = None,
    golden_dir: Path = DEFAULT_GOLDEN_DIR,
) -> DivergenceReport:
    """Re-run the canonical scenarios and compare against the stored traces."""
    golden_dir = Path(golden_dir)
    report = DivergenceReport()
    for entry in _resolve(names):
        report.checked.append(entry.name)
        path = trace_path(entry.name, golden_dir)
        if not path.exists():
            report.add(Divergence(
                trace=entry.name, metric="trace_file", expected=None, actual=None,
                tolerance="file exists",
                detail=f"no golden trace at {path}; run `python -m repro.verify "
                       f"record --only {entry.name}` and commit it",
            ))
            continue
        recorded = json.loads(path.read_text())
        if recorded.get("version") != FORMAT_VERSION:
            report.add(Divergence(
                trace=entry.name, metric="version",
                expected=float(FORMAT_VERSION),
                actual=float(recorded.get("version") or 0), tolerance="exact",
                detail="golden trace format version mismatch; re-record",
            ))
            continue
        report.extend(_compare_trace(entry, recorded))
    return report


def diff_rows(
    names: Optional[Sequence[str]] = None,
    golden_dir: Path = DEFAULT_GOLDEN_DIR,
) -> list[dict]:
    """Recorded-vs-fresh aggregate comparison rows (the ``diff`` CLI view)."""
    golden_dir = Path(golden_dir)
    rows = []
    for entry in _resolve(names):
        path = trace_path(entry.name, golden_dir)
        recorded = json.loads(path.read_text()) if path.exists() else None
        _, result = _run(entry)
        rows.append({
            "name": entry.name,
            "recorded_gflops": recorded["recorded"]["gflops"] if recorded else None,
            "fresh_gflops": result.gflops,
            "recorded_elapsed": recorded["recorded"]["elapsed"] if recorded else None,
            "fresh_elapsed": result.elapsed,
            "degraded": result.degraded.describe() if result.degraded else None,
        })
    return rows


def declared_tolerance(entry: GoldenScenario) -> tuple[Tolerance, Tolerance]:
    """(aggregate, step) tolerances the check pass will apply to *entry*."""
    return entry.aggregate_tol, entry.step_tol
