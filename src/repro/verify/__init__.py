"""Differential verification: cross-validation, invariants, golden traces.

Three layers keep the model honest:

- :mod:`repro.verify.differential` runs the same seeded scenario through
  the analytic stepper and its exact-DES twin and asserts agreement within
  declared tolerance bands.
- :mod:`repro.verify.invariants` is a catalogue of reusable checkers
  (flop conservation, split bounds and convergence, pipeline-state
  legality, fault-event consistency, monotone virtual clock) that can wrap
  any run via telemetry hooks (:func:`~repro.verify.invariants.watch`).
- :mod:`repro.verify.golden` records canonical seeded runs into
  ``tests/golden/`` and gates CI on tolerance-based comparison
  (``python -m repro.verify {record,check,diff}``).

Failures everywhere are structured :class:`Divergence` records naming the
trace, step, metric, both values and the declared tolerance.
"""

from repro.verify.differential import (
    MATRIX,
    DifferentialCase,
    DifferentialOutcome,
    DifferentialTolerances,
    run_case,
    run_matrix,
)
from repro.verify.divergence import Divergence, DivergenceReport, VerificationError
from repro.verify.golden import check, diff_rows, record
from repro.verify.invariants import RunWatcher, check_run, watch
from repro.verify.scenarios import CATALOGUE, GoldenScenario, get, names
from repro.verify.tolerance import EXACT, Band, Tolerance

__all__ = [
    "Band",
    "CATALOGUE",
    "Divergence",
    "DivergenceReport",
    "DifferentialCase",
    "DifferentialOutcome",
    "DifferentialTolerances",
    "EXACT",
    "GoldenScenario",
    "MATRIX",
    "RunWatcher",
    "Tolerance",
    "VerificationError",
    "check",
    "check_run",
    "diff_rows",
    "get",
    "names",
    "record",
    "run_case",
    "run_matrix",
    "watch",
]
