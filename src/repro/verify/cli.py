"""``python -m repro.verify`` — the golden-trace and cross-validation CLI.

Subcommands::

    list      show the canonical scenario catalogue (and trace status)
    record    run the canonical scenarios and (re)write tests/golden/*.json
    check     re-run and compare against the stored traces; exit 1 on drift
    diff      recorded-vs-fresh aggregate table (no gating)
    crossval  run the analytic-vs-DES differential matrix; exit 1 on drift

``check`` and ``crossval`` accept ``--report-out`` to write the structured
divergence report as JSON — CI uploads that file as an artifact when the
gate fails, so the drift is reviewable without re-running anything.
``crossval`` additionally accepts ``--jobs N`` (fan the independent matrix
cells across worker processes) and ``--no-cache`` (skip the on-disk result
cache); a one-line ``exec:`` summary on stderr reports what happened.

``crossval`` also runs the grid-scale DES cells (2x2 up to 8x8 process
grids through the full Simulator/SimMPI/DistributedLU stack, checked for
network-independence bit-identity, HPL residual, and an analytic elapsed
band): ``--no-grid`` skips them, ``--grid-slow`` adds the 16x16 tier.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.ledger import DEFAULT_RUNS_ROOT
from repro.verify import differential, golden
from repro.verify import scenarios as scenario_catalogue
from repro.verify.divergence import DivergenceReport


def _add_common(parser: argparse.ArgumentParser, *, report: bool = False) -> None:
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="restrict to this scenario (repeatable)",
    )
    parser.add_argument(
        "--golden-dir",
        type=Path,
        default=golden.DEFAULT_GOLDEN_DIR,
        help=f"golden trace directory (default: {golden.DEFAULT_GOLDEN_DIR})",
    )
    if report:
        parser.add_argument(
            "--report-out",
            type=Path,
            default=None,
            metavar="PATH",
            help="also write the divergence report as JSON to PATH",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="golden-trace regression gating and analytic-vs-DES cross-validation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="show the canonical scenario catalogue")
    _add_common(p)

    p = sub.add_parser("record", help="run the scenarios and (re)write golden traces")
    _add_common(p)

    p = sub.add_parser("check", help="compare fresh runs against the stored traces")
    _add_common(p, report=True)

    p = sub.add_parser("diff", help="recorded-vs-fresh aggregate table")
    _add_common(p)

    p = sub.add_parser("crossval", help="run the analytic-vs-DES differential matrix")
    p.add_argument(
        "--scheduler",
        action="append",
        default=None,
        metavar="NAME",
        help="re-run the matrix with this HPL-capable scheduler instead of "
        "the default adaptive framework (repeatable; see "
        "'python -m repro.sched list')",
    )
    p.add_argument(
        "--report-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the divergence report as JSON to PATH",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for independent matrix cells (default: all cores)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    p.add_argument(
        "--ledger",
        nargs="?",
        const=str(DEFAULT_RUNS_ROOT),
        default=None,
        metavar="RUNS_DIR",
        help="stream the matrix run into a ledger under RUNS_DIR "
        f"(default root: {DEFAULT_RUNS_ROOT}) for 'python -m repro.obs'",
    )
    p.add_argument(
        "--no-grid",
        action="store_true",
        help="skip the grid-scale DES cells (distributed LU on 2x2..8x8 grids)",
    )
    p.add_argument(
        "--grid-slow",
        action="store_true",
        help="also run the slow grid tier (the 16x16 / 256-rank cell)",
    )
    return parser


def _finish(report: DivergenceReport, report_out: Optional[Path]) -> int:
    print(report.render())
    if report_out is not None:
        path = report.write_json(report_out)
        print(f"report written to {path}")
    return 0 if report.ok else 1


def _cmd_list(args: argparse.Namespace) -> int:
    names = args.only or scenario_catalogue.names()
    for name in names:
        entry = scenario_catalogue.get(name)
        path = golden.trace_path(name, args.golden_dir)
        status = "recorded" if path.exists() else "NOT RECORDED"
        print(f"{name:24s} [{status:12s}] {entry.description}")
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    written = golden.record(args.only, golden_dir=args.golden_dir)
    for path in written:
        print(f"recorded {path}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    return _finish(golden.check(args.only, golden_dir=args.golden_dir), args.report_out)


def _cmd_diff(args: argparse.Namespace) -> int:
    rows = golden.diff_rows(args.only, golden_dir=args.golden_dir)
    header = f"{'trace':24s} {'rec GFLOPS':>12s} {'fresh GFLOPS':>12s} {'rec elapsed':>12s} {'fresh elapsed':>14s}"
    print(header)
    for row in rows:
        rec_g = "-" if row["recorded_gflops"] is None else f"{row['recorded_gflops']:.3f}"
        rec_e = "-" if row["recorded_elapsed"] is None else f"{row['recorded_elapsed']:.4f}"
        line = (
            f"{row['name']:24s} {rec_g:>12s} {row['fresh_gflops']:>12.3f} "
            f"{rec_e:>12s} {row['fresh_elapsed']:>14.4f}"
        )
        if row["degraded"]:
            line += f"  ({row['degraded']})"
        print(line)
    return 0


def _cmd_crossval(args: argparse.Namespace) -> int:
    from repro import exec as exec_policy
    from repro import obs

    ledger = None
    telemetry = None
    if args.ledger is not None:
        ledger = obs.RunLedger.open(
            "verify-crossval",
            root=args.ledger,
            config={"jobs": args.jobs, "cache": not args.no_cache},
        )
        telemetry = ledger.telemetry
        print(f"ledger: {ledger.directory}", file=sys.stderr)

    cases = None
    if args.scheduler:
        try:
            cases = differential.cases_for_schedulers(args.scheduler)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2

    grid_cases: tuple = ()
    if not args.no_grid:
        from repro.verify import gridcases

        grid_cases = gridcases.GRID_MATRIX
        if args.grid_slow:
            grid_cases = grid_cases + gridcases.GRID_MATRIX_SLOW

    def _run_full() -> DivergenceReport:
        full = differential.run_matrix(cases)
        if grid_cases:
            from repro.verify import gridcases

            full.extend(gridcases.run_grid_matrix(grid_cases))
        return full

    policy = exec_policy.ExecutionPolicy(jobs=args.jobs, cache=not args.no_cache)
    try:
        with obs.use(telemetry), exec_policy.use(policy):
            if telemetry is not None:
                with telemetry.wall_span("verify", "crossval"):
                    report = _run_full()
            else:
                report = _run_full()
    except BaseException as error:
        if ledger is not None:
            ledger.fail(f"{type(error).__name__}: {error}")
        raise
    status = _finish(report, args.report_out)
    if ledger is not None:
        ledger.finish(
            {"ok": report.ok, "exec": policy.summary_line()},
            status="completed" if report.ok else "failed",
        )
    print(policy.summary_line(), file=sys.stderr)
    return status


_COMMANDS = {
    "list": _cmd_list,
    "record": _cmd_record,
    "check": _cmd_check,
    "diff": _cmd_diff,
    "crossval": _cmd_crossval,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
