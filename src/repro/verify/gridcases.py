"""Grid-scale DES crossval cells: distributed LU on real process grids.

The differential matrix (:mod:`repro.verify.differential`) cross-validates
the analytic stepper against its single-element DES twin; these cells grow
the DES side to *real process grids*.  Each cell runs the full numeric
distributed LU (:class:`~repro.hpl.dist.DistributedLU`) over simulated MPI
on a P x Q grid with a :class:`~repro.hpl.dist.FlopsEngine` per rank, and
checks three independently-derivable properties:

* **Network independence of the numerics** — the pivots and the factored
  matrix must be bit-identical between a run over the QDR interconnect and
  a zero-time reference run with no network at all.  Timing machinery that
  leaks into the math (an event reordering changing a pivot decision, a
  payload aliased by the transport) is exactly the class of bug the
  calendar/mailbox hot paths could introduce.
* **HPL residual** — the factorization solves ``A x = b`` and must pass the
  official Top500 acceptance test, on every grid size.
* **Elapsed sanity band** — the simulated elapsed time must be at least the
  critical rank's pure-compute time (nothing in the model runs faster than
  its own devices) and at most the *fully serialised* bound: every rank's
  compute plus every message traversing the network one at a time.  A
  scheduler bug that loses parallelism or a calendar bug that drops
  concurrency lands outside this band long before it corrupts numerics.

The default matrix runs 2x2 through **8x8** (64 ranks — the "largest
DES-feasible machine" floor the bench tracker pins); the slow tier adds
16x16 (256 ranks).  ``python -m repro.verify crossval`` appends these cells
to the differential matrix unless ``--no-grid`` is passed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hpl.dist import DistributedLU, FactorResult, FlopsEngine, InstantEngine
from repro.hpl.grid import ProcessGrid
from repro.hpl.solve import HPL_THRESHOLD, hpl_residual_ok, solve_from_factorization
from repro.machine.interconnect import Interconnect
from repro.machine.presets import QDR_INFINIBAND
from repro.mpi.comm import SimMPI
from repro.sim import SimStats, Simulator
from repro.verify.divergence import Divergence, DivergenceReport
from repro.verify.scenarios import GOLDEN_SEED


@dataclass(frozen=True)
class GridCase:
    """One grid-scale DES cell: a P x Q process grid factoring an N x N matrix."""

    name: str
    nprow: int
    npcol: int
    n: int
    nb: int
    bcast_algo: str = "binomial"
    seed: int = GOLDEN_SEED
    #: Slack multiplier on the serialised upper bound (absorbs the alpha-beta
    #: model's per-hop framing; the bound itself is already conservative).
    elapsed_slack: float = 1.05

    @property
    def ranks(self) -> int:
        return self.nprow * self.npcol


#: Default matrix: every size the fast crossval lane runs.  The 8x8 cell is
#: the acceptance floor — the DES matrix must include >= one 64-rank grid.
GRID_MATRIX: tuple[GridCase, ...] = (
    GridCase(name="grid2x2", nprow=2, npcol=2, n=64, nb=8),
    GridCase(name="grid4x4", nprow=4, npcol=4, n=128, nb=8),
    GridCase(name="grid8x8", nprow=8, npcol=8, n=256, nb=8),
    GridCase(name="grid8x8/1rm", nprow=8, npcol=8, n=256, nb=8, bcast_algo="1rm"),
)

#: Slow tier (CI full lane / ``--grid-slow``): the 256-rank grid.
GRID_MATRIX_SLOW: tuple[GridCase, ...] = (
    GridCase(name="grid16x16", nprow=16, npcol=16, n=512, nb=8),
)


@dataclass
class GridOutcome:
    """One cell's timed run, reference run, and structured comparison."""

    case: GridCase
    timed: FactorResult
    reference: FactorResult
    sim_stats: SimStats
    report: DivergenceReport

    @property
    def ok(self) -> bool:
        return self.report.ok


def _factor(case: GridCase, with_network: bool) -> tuple[FactorResult, SimStats]:
    sim = Simulator()
    grid = ProcessGrid(case.nprow, case.npcol)
    network = Interconnect(sim, QDR_INFINIBAND, grid.size) if with_network else None
    world = SimMPI(sim, grid.size, network)
    engines = (
        [FlopsEngine() for _ in range(grid.size)]
        if with_network
        else [InstantEngine()] * grid.size
    )
    lu = DistributedLU(
        sim, grid, case.nb, world, engines=engines, bcast_algorithm=case.bcast_algo
    )
    rng = np.random.default_rng(case.seed)
    a = rng.standard_normal((case.n, case.n))
    return lu.factor(a), sim.stats()


def run_grid_case(case: GridCase) -> GridOutcome:
    """Run one grid cell (timed + no-network reference) and compare."""
    timed, sim_stats = _factor(case, with_network=True)
    reference, _ = _factor(case, with_network=False)
    report = DivergenceReport(checked=[case.name])

    # 1. Network independence: pivots and factored locals bit-identical.
    if not np.array_equal(timed.piv, reference.piv):
        report.add(Divergence(
            trace=case.name, metric="piv",
            expected=float(len(reference.piv)),
            actual=float(np.count_nonzero(timed.piv == reference.piv)),
            tolerance="bit-identical",
            detail="pivot sequence differs between networked and reference runs",
        ))
    mismatched = sum(
        0 if np.array_equal(t, r) else 1
        for t, r in zip(timed.locals_, reference.locals_)
    )
    if mismatched:
        report.add(Divergence(
            trace=case.name, metric="locals", expected=0.0,
            actual=float(mismatched), tolerance="bit-identical",
            detail="factored local blocks differ between networked and reference runs",
        ))

    # 2. The official HPL acceptance test.
    grid = ProcessGrid(case.nprow, case.npcol)
    b = np.random.default_rng(case.seed + 1).standard_normal(case.n)
    a = np.random.default_rng(case.seed).standard_normal((case.n, case.n))
    x = solve_from_factorization(grid, timed, case.n, case.nb, b)
    residual, ok = hpl_residual_ok(a, x, b)
    if not ok:
        report.add(Divergence(
            trace=case.name, metric="residual", expected=HPL_THRESHOLD,
            actual=residual, tolerance=f"< {HPL_THRESHOLD:g}",
            detail="factorization fails the official HPL residual test",
        ))

    # 3. Elapsed sanity band: critical-rank compute <= elapsed <= serialised.
    per_rank = [s.update_time + s.cpu_phase_time for s in timed.stats]
    lower = max(per_rank)
    serialised_comm = (
        timed.messages * QDR_INFINIBAND.latency
        + timed.bytes_sent / QDR_INFINIBAND.bandwidth
    )
    upper = (sum(per_rank) + serialised_comm) * case.elapsed_slack
    if not lower <= timed.elapsed:
        report.add(Divergence(
            trace=case.name, metric="elapsed_lb", expected=lower,
            actual=timed.elapsed, tolerance="elapsed >= critical-rank compute",
            detail="simulated run finished faster than its own devices allow",
        ))
    if not timed.elapsed <= upper:
        report.add(Divergence(
            trace=case.name, metric="elapsed_ub", expected=upper,
            actual=timed.elapsed, tolerance="elapsed <= fully-serialised bound",
            detail="simulated run slower than executing everything serially",
        ))
    return GridOutcome(
        case=case, timed=timed, reference=reference,
        sim_stats=sim_stats, report=report,
    )


def _grid_case_report(case: GridCase) -> dict:
    """One cell's report as a dict (the pool/cache worker for the matrix)."""
    return run_grid_case(case).report.to_dict()


def run_grid_matrix(
    cases: Optional[tuple[GridCase, ...]] = None,
) -> DivergenceReport:
    """Run the grid matrix; one aggregated report (pool/cache-aware)."""
    from repro.exec import evaluate_points

    cases = tuple(cases if cases is not None else GRID_MATRIX)
    report = DivergenceReport()
    for payload in evaluate_points(
        "verify.crossval.grid", _grid_case_report, [dict(case=case) for case in cases]
    ):
        report.extend(DivergenceReport.from_dict(payload))
    return report
