"""The canonical seeded scenario matrix the golden-trace store records.

Golden traces are rebuilt from *names*, not from serialized machine objects:
each entry here owns a builder returning a fully-seeded
:class:`~repro.session.Scenario`, so ``record`` and ``check`` are guaranteed
to run the identical experiment, and a JSON file can never smuggle in a
stale machine description.  The set covers the paper's figure configurations
(Fig. 8/9 single-element builds, the Fig. 13 progress run), a heterogeneous
E5540/E5450 population, and one scenario per fault class — small problem
orders keep a full ``check`` pass under a few seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.faults.spec import FaultSpec, GpuDropout, GpuThrottle, PcieFaultSpec, Straggler
from repro.hpl.driver import Configuration
from repro.machine.cluster import Cluster
from repro.machine.presets import (
    DEFAULT_VARIABILITY,
    QDR_INFINIBAND,
    STANDARD_CLOCK_MHZ,
    XEON_E5450,
    XEON_E5540,
    tianhe1_node,
)
from repro.machine.specs import ClusterSpec, CPUSpec
from repro.mpi.bcast import BCAST_ALGORITHMS
from repro.session import Scenario
from repro.verify.tolerance import EXACT, Tolerance

#: Seed shared by every canonical scenario (pinned; changing it is a
#: deliberate re-record event).
GOLDEN_SEED = 11
#: Cluster construction seed (element static spread realisation).
GOLDEN_CLUSTER_SEED = 2009


def small_cluster(
    cpus: "tuple[CPUSpec, ...]" = (XEON_E5540,),
    gpu_clock_mhz: float = STANDARD_CLOCK_MHZ,
    seed: int = GOLDEN_CLUSTER_SEED,
) -> Cluster:
    """A one-cabinet cluster with one node per CPU spec (2 elements each).

    The workhorse for mixed-population golden traces: ``(E5540, E5450)``
    yields four elements — two of each population — exactly the Section III
    mix at test scale.
    """
    spec = ClusterSpec(
        name="golden[" + ",".join(c.name for c in cpus) + "]",
        cabinets=1,
        nodes_per_cabinet=len(cpus),
        node_specs=tuple(
            (i, tianhe1_node(cpu, gpu_clock_mhz)) for i, cpu in enumerate(cpus)
        ),
        interconnect=QDR_INFINIBAND,
        variability=DEFAULT_VARIABILITY,
    )
    return Cluster(spec, seed=seed)


@dataclass(frozen=True)
class GoldenScenario:
    """One named, seeded experiment plus its declared comparison tolerances."""

    name: str
    description: str
    build: Callable[[], Scenario] = field(repr=False)
    #: Aggregate tolerances (gflops, elapsed).  Deterministic seeded reruns
    #: reproduce almost exactly; see :data:`repro.verify.tolerance.EXACT`.
    aggregate_tol: Tolerance = EXACT
    #: Per-step tolerances (step_time, update/panel/comm, mean_gsplit).
    step_tol: Tolerance = EXACT

    def scenario(self) -> Scenario:
        scenario = self.build()
        if not scenario.collect_steps:
            scenario = replace(scenario, collect_steps=True)
        return scenario


def _single(configuration: Configuration, n: int, **kw) -> Callable[[], Scenario]:
    def build() -> Scenario:
        return Scenario(
            scheduler=configuration,
            n=n,
            seed=GOLDEN_SEED,
            cluster_seed=GOLDEN_CLUSTER_SEED,
            collect_steps=True,
            **kw,
        )

    return build


def _hetero(
    n: int,
    faults: Optional[FaultSpec] = None,
    overrides: Optional[dict] = None,
) -> Callable[[], Scenario]:
    def build() -> Scenario:
        return Scenario(
            scheduler=Configuration.ACMLG_BOTH,
            n=n,
            grid=(2, 2),
            cluster=small_cluster((XEON_E5540, XEON_E5450)),
            seed=GOLDEN_SEED,
            collect_steps=True,
            faults=faults,
            overrides=overrides,
        )

    return build


#: Mid-run recoverable thermal throttle (the ``repro.bench faults`` shape,
#: pinned to absolute virtual times so the trace is self-contained).
THROTTLE_FAULTS = FaultSpec(
    throttles=(
        GpuThrottle(at=3.0, clock_factor=0.55, shed_threshold=0.86, recovery_s=1.5),
    )
)
DROPOUT_FAULTS = FaultSpec(dropouts=(GpuDropout(at=2.0),))
PCIE_FAULTS = FaultSpec(pcie=PcieFaultSpec(fail_probability=0.3, at=1.0, until=6.0))
STRAGGLER_FAULTS = FaultSpec(stragglers=(Straggler(at=1.0, element=1, factor=0.5, side="both"),))


def _catalogue() -> list[GoldenScenario]:
    entries: list[GoldenScenario] = []
    # Fig. 8/9: the five single-element builds plus the two comparison
    # mappings, at a size that exercises several panel steps per run.
    for config in Configuration:
        entries.append(
            GoldenScenario(
                name=f"fig8_{config.value}",
                description=f"single element, {config.label} build, N=9000",
                build=_single(config, 9000),
            )
        )
    entries.append(
        GoldenScenario(
            name="fig13_progress",
            description="single element, full framework, N=18000 (progress curve)",
            build=_single(Configuration.ACMLG_BOTH, 18000),
        )
    )
    entries.append(
        GoldenScenario(
            name="hetero_2x2",
            description="mixed E5540/E5450 population on a 2x2 grid, N=14000",
            build=_hetero(14000),
        )
    )
    # 4-rank distributed run per HPL BCAST algorithm: same seeded mixed
    # population, only the panel-broadcast cost model varies.  Guards the
    # bcast_algo knob end to end (Session overrides -> AnalyticConfig ->
    # panel_bcast_time) against silent cost-formula drift.
    for algo in BCAST_ALGORITHMS:
        entries.append(
            GoldenScenario(
                name=f"dist4_bcast_{algo}",
                description=(
                    f"mixed E5540/E5450 population on a 2x2 grid, N=14000, "
                    f"{algo} panel broadcast"
                ),
                build=_hetero(14000, overrides={"bcast_algo": algo}),
            )
        )
    entries.append(
        GoldenScenario(
            name="fault_throttle",
            description="recoverable mid-run GPU thermal throttle (adaptive sheds and recovers)",
            build=_single(
                Configuration.ACMLG_BOTH, 12000, faults=THROTTLE_FAULTS
            ),
        )
    )
    entries.append(
        GoldenScenario(
            name="fault_throttle_static",
            description="the same throttle against the static peak-trained split",
            build=_single(
                Configuration.STATIC_PEAK, 12000, faults=THROTTLE_FAULTS
            ),
        )
    )
    entries.append(
        GoldenScenario(
            name="fault_dropout",
            description="permanent GPU dropout; adaptive falls back to the CPU path",
            build=_single(
                Configuration.ACMLG_BOTH, 9000, faults=DROPOUT_FAULTS
            ),
        )
    )
    entries.append(
        GoldenScenario(
            name="fault_pcie",
            description="PCIe fault window; analytic transfer-term inflation",
            build=_single(Configuration.ACMLG_PIPE, 9000, faults=PCIE_FAULTS),
        )
    )
    entries.append(
        GoldenScenario(
            name="fault_straggler_hetero",
            description="one straggling element inside the mixed population",
            build=_hetero(14000, faults=STRAGGLER_FAULTS),
        )
    )
    return entries


#: Name -> GoldenScenario for the whole canonical matrix.
CATALOGUE: dict[str, GoldenScenario] = {s.name: s for s in _catalogue()}


def get(name: str) -> GoldenScenario:
    """Look up one canonical scenario; unknown names list the valid ones."""
    try:
        return CATALOGUE[name]
    except KeyError:
        valid = ", ".join(sorted(CATALOGUE))
        raise KeyError(f"unknown golden scenario {name!r}; valid: {valid}") from None


def names() -> list[str]:
    return list(CATALOGUE)
