"""The invariant catalogue: properties every run must satisfy.

Each checker inspects one layer's output and returns a list of
:class:`~repro.verify.divergence.Divergence` records (empty = invariant
holds), so the same functions serve the property-based suites, the golden
``check`` pass, and ad-hoc debugging.  The catalogue (see
``docs/testing.md``):

* **flop conservation** — per-step flops follow the LU schedule exactly and
  sum to ``2/3 N^3``; GSplit partitions work without loss
  (:func:`split_conservation`).
* **split bounds** — GSplit in ``[0, 1]`` everywhere (per-step grid means,
  stored database bins) and CSplit a valid partition of unity.
* **monotone virtual clock** — step times positive, cumulative time equal
  to the prefix sums, elapsed >= the sum of steps.
* **pipeline legality** — CT/NT controller transitions restricted to the
  Table I state machine (``Idle -> Input -> EO``, ``N-Idle -> N-Input``)
  with a non-decreasing clock.
* **fault/degraded-mode consistency** — the :class:`DegradedMode` flags
  match its event log, and events are time-ordered.
* **adaptive convergence** — under stationary rates the stored GSplit
  converges to ``P_G / (P_G + P_C)`` (:func:`stationary_gsplit`,
  :func:`check_convergence`).

:func:`watch` wraps any run via the telemetry hooks: it installs a
recording telemetry, and on exit checks the published spans and series
against the catalogue without touching the run's results.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.core.adaptive import AdaptiveMapper, converged_gsplit
from repro.core.pipeline import EO, IDLE, INPUT, N_IDLE, N_INPUT, StateRecord
from repro.faults.spec import DegradedMode
from repro.obs.telemetry import RecordingSink, Telemetry
from repro.util.units import lu_flops
from repro.verify.divergence import Divergence, DivergenceReport
from repro.verify.tolerance import Tolerance

#: Numerical slack for conservation laws (pure arithmetic identities).
CONSERVATION = Tolerance(rel=1e-9, abs=1e-6)
#: Fractions live in [0, 1] up to float noise.
FRACTION = Tolerance(abs=1e-12)

#: Legal controller transitions (Section V.C / Table I).  CT may skip INPUT
#: when NT prefetched the task; NT re-enters N-Input per prefetched task.
LEGAL_TRANSITIONS = {
    "CT": {
        IDLE: (INPUT, EO, IDLE),
        INPUT: (EO,),
        EO: (IDLE,),
    },
    "NT": {
        N_IDLE: (N_INPUT,),
        N_INPUT: (N_INPUT, N_IDLE),
    },
}


def _bad(trace, metric, expected, actual, tol, step=None, detail="") -> Divergence:
    return Divergence(
        trace=trace,
        metric=metric,
        expected=expected,
        actual=actual,
        tolerance=tol,
        step=step,
        detail=detail,
    )


# -- flop conservation ---------------------------------------------------------


def check_flop_conservation(result, trace: str = "run") -> list[Divergence]:
    """LU flop accounting on an Analytic/LinpackResult with collected steps.

    The trailing-update schedule must conserve work exactly: each step's
    flops equal ``2/3 ((N-j)^3 - (N-j-jbw)^3)``, the cumulative column is
    the prefix sum, and the total is ``lu_flops(N)`` (factorization plus
    the ``2 N^2`` backsolve).
    """
    analytic = getattr(result, "analytic", result)
    steps = analytic.steps
    out: list[Divergence] = []
    n = analytic.n
    if not steps:
        return [_bad(trace, "steps", None, 0, "collect_steps=True required",
                     detail="invariant: flop conservation needs collected steps")]
    cum = 0.0
    for s in steps:
        expected = (2.0 / 3.0) * ((n - s.j) ** 3 - float(s.trailing) ** 3)
        if not CONSERVATION.ok(expected, s.flops):
            out.append(_bad(trace, "step_flops", expected, s.flops,
                            CONSERVATION.describe(), step=s.step,
                            detail="invariant: flop conservation"))
        cum += s.flops
        if not CONSERVATION.ok(cum, s.cum_flops):
            out.append(_bad(trace, "cum_flops", cum, s.cum_flops,
                            CONSERVATION.describe(), step=s.step,
                            detail="invariant: cumulative flops are the prefix sum"))
    total = lu_flops(n)
    if not CONSERVATION.ok(total - 2.0 * n * n, cum):
        out.append(_bad(trace, "total_flops", total - 2.0 * n * n, cum,
                        CONSERVATION.describe(),
                        detail="invariant: steps sum to 2/3 N^3"))
    if not CONSERVATION.ok(total, analytic.flops):
        out.append(_bad(trace, "flops", total, analytic.flops,
                        CONSERVATION.describe(),
                        detail="invariant: reported flops are the HPL count"))
    return out


def split_conservation(m: int, row_splits: Sequence[int], trace: str = "split") -> list[Divergence]:
    """A row partition (GPU share + per-core shares) must cover m exactly."""
    total = int(sum(row_splits))
    if total != m or any(r < 0 for r in row_splits):
        return [_bad(trace, "rows", float(m), float(total), "exact",
                     detail=f"invariant: row partition {list(row_splits)} must cover m")]
    return []


# -- split bounds --------------------------------------------------------------


def check_gsplit_bounds(result, trace: str = "run") -> list[Divergence]:
    """Every per-step grid-mean GSplit lies in [0, 1]."""
    analytic = getattr(result, "analytic", result)
    out: list[Divergence] = []
    for s in analytic.steps:
        g = s.mean_gsplit if hasattr(s, "mean_gsplit") else s.gsplit
        if not (-FRACTION.abs <= g <= 1.0 + FRACTION.abs):
            out.append(_bad(trace, "gsplit", None, g, "in [0, 1]", step=s.step if hasattr(s, "step") else None,
                            detail="invariant: GSplit bounds"))
    return out


def check_mapper_databases(mapper: AdaptiveMapper, trace: str = "mapper") -> list[Divergence]:
    """Stored GSplit bins in [0, 1]; CSplit a partition of unity >= floor."""
    out: list[Divergence] = []
    values = mapper.database_g.values()
    for idx, value in enumerate(values):
        if not (0.0 <= value <= 1.0):
            out.append(_bad(trace, "database_g", None, float(value), "in [0, 1]",
                            step=idx, detail="invariant: stored GSplit bounds"))
    csplits = mapper.database_c.lookup()
    if not Tolerance(abs=1e-6).ok(1.0, float(csplits.sum())):
        out.append(_bad(trace, "database_c_sum", 1.0, float(csplits.sum()),
                        "tol(abs=1e-06)", detail="invariant: CSplit partition of unity"))
    if np.any(csplits < -1e-12):
        out.append(_bad(trace, "database_c_min", 0.0, float(csplits.min()),
                        ">= 0", detail="invariant: CSplit nonnegative"))
    return out


# -- monotone virtual clock ----------------------------------------------------


def check_monotone_clock(result, trace: str = "run") -> list[Divergence]:
    """Step times positive; cumulative time the prefix sum; elapsed covers it."""
    analytic = getattr(result, "analytic", result)
    out: list[Divergence] = []
    cum = 0.0
    last = 0.0
    for s in analytic.steps:
        if s.step_time < 0:
            out.append(_bad(trace, "step_time", None, s.step_time, ">= 0",
                            step=s.step, detail="invariant: monotone virtual clock"))
        cum += s.step_time
        if hasattr(s, "cum_time"):
            if not CONSERVATION.ok(cum, s.cum_time):
                out.append(_bad(trace, "cum_time", cum, s.cum_time,
                                CONSERVATION.describe(), step=s.step,
                                detail="invariant: cumulative time is the prefix sum"))
            if s.cum_time < last:
                out.append(_bad(trace, "cum_time_monotone", last, s.cum_time,
                                "non-decreasing", step=s.step,
                                detail="invariant: monotone virtual clock"))
            last = s.cum_time
    if analytic.steps and analytic.elapsed + 1e-9 < cum:
        out.append(_bad(trace, "elapsed", cum, analytic.elapsed,
                        ">= sum of steps", detail="invariant: elapsed covers every step"))
    return out


# -- pipeline state-machine legality -------------------------------------------


def check_pipeline_legality(state_log: Sequence[StateRecord], trace: str = "pipeline") -> list[Divergence]:
    """The CT/NT log must follow Table I's state machine on a monotone clock."""
    out: list[Divergence] = []
    last_state: dict[str, str] = {}
    last_time = None
    for i, rec in enumerate(state_log):
        if rec.controller not in LEGAL_TRANSITIONS:
            out.append(_bad(trace, "controller", None, None, "CT|NT", step=i,
                            detail=f"invariant: unknown controller {rec.controller!r}"))
            continue
        legal = LEGAL_TRANSITIONS[rec.controller]
        if rec.state not in legal:
            out.append(_bad(trace, "state", None, None, "Table I states", step=i,
                            detail=f"invariant: unknown {rec.controller} state {rec.state!r}"))
            continue
        if last_time is not None and rec.time < last_time - 1e-12:
            out.append(_bad(trace, "state_time", last_time, rec.time,
                            "non-decreasing", step=i,
                            detail="invariant: monotone controller clock"))
        last_time = rec.time if last_time is None else max(last_time, rec.time)
        prev = last_state.get(rec.controller)
        if prev is not None and rec.state not in legal[prev]:
            out.append(_bad(trace, "transition", None, None, "Table I transitions",
                            step=i,
                            detail=f"invariant: illegal {rec.controller} transition "
                                   f"{prev} -> {rec.state}"))
        last_state[rec.controller] = rec.state
    return out


# -- fault / degraded-mode consistency -----------------------------------------


def check_fault_consistency(degraded: Optional[DegradedMode], trace: str = "run") -> list[Divergence]:
    """DegradedMode flags must match its own event log (and vice versa)."""
    if degraded is None:
        return []
    out: list[Divergence] = []
    kinds = [e.kind for e in degraded.events]
    flag_to_kinds = {
        "gpu_throttled": {"gpu_throttle"},
        "gpu_lost": {"gpu_dropout"},
        "straggling": {"straggler_on"},
    }
    for flag, expected_kinds in flag_to_kinds.items():
        has_flag = getattr(degraded, flag)
        has_event = any(k in expected_kinds for k in kinds)
        if has_flag != has_event:
            out.append(_bad(trace, flag, float(has_event), float(has_flag),
                            "flag == event presence",
                            detail="invariant: fault flags match the event log"))
    n_retries = kinds.count("pcie_retry")
    if degraded.pcie_retries != n_retries:
        out.append(_bad(trace, "pcie_retries", float(n_retries),
                        float(degraded.pcie_retries), "exact",
                        detail="invariant: retry counter matches retry events"))
    times = [e.time for e in degraded.events]
    if times != sorted(times):
        out.append(_bad(trace, "event_order", None, None, "non-decreasing",
                        detail="invariant: fault events are time-ordered"))
    if not degraded and degraded.events:
        out.append(_bad(trace, "degraded_bool", 1.0, 0.0, "truthy when events exist",
                        detail="invariant: a run with events is degraded"))
    return out


# -- adaptive convergence ------------------------------------------------------


def stationary_gsplit(p_g: float, p_c: float) -> float:
    """The fixed point of the paper's update rule under stationary rates."""
    if p_g + p_c <= 0:
        return 0.0
    return p_g / (p_g + p_c)


def check_convergence(
    history: Sequence[float],
    p_g: float,
    p_c: float,
    tol: Tolerance = Tolerance(abs=0.02),
    trace: str = "mapper",
) -> list[Divergence]:
    """Stored splits must settle on ``P_G / (P_G + P_C)`` for stationary rates."""
    expected = stationary_gsplit(p_g, p_c)
    actual = converged_gsplit(history)
    if not tol.ok(expected, actual):
        return [_bad(trace, "converged_gsplit", expected, actual, tol.describe(),
                     detail="invariant: convergence to the rate ratio")]
    return []


# -- run-level aggregate -------------------------------------------------------


def check_run(result, trace: str = "run") -> DivergenceReport:
    """Every result-level invariant on one Analytic/LinpackResult."""
    report = DivergenceReport(checked=[trace])
    report.extend(check_flop_conservation(result, trace))
    report.extend(check_gsplit_bounds(result, trace))
    report.extend(check_monotone_clock(result, trace))
    analytic = getattr(result, "analytic", result)
    report.extend(check_fault_consistency(analytic.degraded, trace))
    return report


# -- telemetry-hook wrapper ----------------------------------------------------


class RunWatcher:
    """Invariant checking attached to a run through the telemetry hooks.

    Pass :attr:`telemetry` to any instrumented layer (``Session.run``,
    ``HybridDgemm``, the executors); after the run, :meth:`verify` replays
    the published spans and series through the catalogue.  The hooks only
    *read* what the run publishes, so watching cannot change results.
    """

    def __init__(self, trace: str = "run") -> None:
        self.trace = trace
        self.telemetry = Telemetry(sink=RecordingSink())
        self.report = DivergenceReport(checked=[trace])

    def verify(self) -> DivergenceReport:
        trace = self.trace
        sink = self.telemetry.sink
        report = self.report
        for track, name in sink.open_spans():
            report.add(_bad(trace, "open_span", None, None, "all spans closed",
                            detail=f"invariant: span {name!r} on {track!r} never ended"))
        last_end: dict[str, float] = {}
        for span in sink.spans:
            if span.end < span.start:
                report.add(_bad(trace, "span_duration", span.start, span.end,
                                "end >= start",
                                detail=f"invariant: span {span.name!r} on {span.track!r}"))
            if span.start < 0:
                report.add(_bad(trace, "span_start", 0.0, span.start, ">= 0",
                                detail=f"invariant: span {span.name!r} on {span.track!r}"))
            last_end[span.track] = max(last_end.get(span.track, 0.0), span.end)
        metrics = self.telemetry.metrics
        for series_name in ("hpl.mean_gsplit", "adaptive.gsplit"):
            metric = metrics.get(series_name)
            if metric is None:
                continue
            for labels in metric.labels():
                for step, value in metric.points(**labels):
                    if not (-1e-12 <= value <= 1.0 + 1e-12):
                        report.add(_bad(trace, series_name, None, value, "in [0, 1]",
                                        step=int(step),
                                        detail="invariant: published GSplit bounds"))
        step_seconds = metrics.get("hpl.step_seconds")
        if step_seconds is not None:
            for labels in step_seconds.labels():
                for step, value in step_seconds.points(**labels):
                    if value < 0:
                        report.add(_bad(trace, "hpl.step_seconds", None, value, ">= 0",
                                        step=int(step),
                                        detail="invariant: monotone virtual clock"))
        cum = metrics.get("hpl.cum_gflops")
        if cum is not None:
            for labels in cum.labels():
                xs = [x for x, _ in cum.points(**labels)]
                if xs != sorted(xs):
                    report.add(_bad(trace, "hpl.cum_gflops", None, None,
                                    "x non-decreasing",
                                    detail="invariant: series on a monotone clock"))
        return report


@contextmanager
def watch(trace: str = "run", strict: bool = True) -> Iterator[RunWatcher]:
    """Watch one run via telemetry; verify the invariant catalogue on exit.

    With ``strict`` (the default) a violation raises
    :class:`~repro.verify.divergence.VerificationError` when the block
    exits; otherwise inspect ``watcher.report`` yourself.
    """
    watcher = RunWatcher(trace)
    yield watcher
    watcher.verify()
    if strict:
        watcher.report.raise_if_diverged()
