"""Differential checking: the analytic stepper vs its exact-DES twin.

The repo implements the paper's model twice: the closed-form vectorized
stepper (:mod:`repro.hpl.analytic`) that makes petascale configurations
computable, and the event-driven single-element Linpack
(:mod:`repro.hpl.element_linpack`) that executes every trailing update
through the real task-queue/pipeline/mapper machinery.  HeSP-style
simulation practice keeps such twins honest by continuous cross-validation:
this module runs the *same seeded scenario* through both and asserts that
per-step times, the final elapsed, and the mapper-database (GSplit)
trajectories agree within **declared** tolerances.

The tolerances are bands, not equalities, and they are part of the contract:
the closed form assumes converged splits, folds DTRSM into the update's
effective rate and hides the pipeline prologue, so the DES run must land
*above* it by a bounded, slowly-shrinking factor (0.70 at N=12k, 0.90 at
N=46k in GFLOPS terms).  A refactor that silently moves either twin outside
its band produces a structured :class:`Divergence` naming the case, step
and metric.

Fault cases cross-validate the *fault model* itself: the analytic path
applies a GPU throttle as a rate multiplier via the
:class:`~repro.faults.injector.FaultInjector`, while the DES twin runs on an
element physically built at the downclocked frequency — two independent
implementations of the same degradation that must tell the same story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.faults.spec import FaultSpec, GpuThrottle
from repro.hpl.analytic import StepTrace
from repro.hpl.element_linpack import ElementLinpack, ElementStep
from repro.machine.cluster import Cluster
from repro.machine.node import ComputeElement
from repro.machine.presets import (
    DOWNCLOCKED_MHZ,
    QDR_INFINIBAND,
    STANDARD_CLOCK_MHZ,
    XEON_E5450,
    XEON_E5540,
    tianhe1_node,
)
from repro.machine.specs import ClusterSpec, CPUSpec
from repro.machine.variability import NO_VARIABILITY
from repro.sched.mappers import build_hpl_mapper
from repro.session import Scenario, Session
from repro.sim import Simulator
from repro.verify.divergence import Divergence, DivergenceReport
from repro.verify.invariants import check_run
from repro.verify.scenarios import GOLDEN_SEED
from repro.verify.tolerance import Band, Tolerance


@dataclass(frozen=True)
class DifferentialTolerances:
    """The declared analytic-vs-DES agreement contract for one case.

    ``elapsed_band`` and ``step_band`` bound the DES/analytic ratio (the DES
    run carries real prologues and unconverged early splits, so it sits
    above 1.0); ``gsplit_tol`` bounds the absolute gap between the DES
    mapper's stored split and the analytic grid-mean split per step.
    ``skip_head`` steps are excluded from the per-step checks (cold
    databases), and the final step is always excluded (no trailing update
    on the DES side once the last panel is prefetched).
    """

    elapsed_band: Band = Band(1.0, 1.7)
    step_band: Band = Band(0.85, 2.2)
    gsplit_tol: Tolerance = field(default_factory=lambda: Tolerance(abs=0.15))
    skip_head: int = 1


@dataclass(frozen=True)
class DifferentialCase:
    """One cell of the scenario matrix: a machine preset x a fault mode."""

    name: str
    #: HPL-capable scheduler spec (registry name or legacy configuration
    #: key); both twins run the same one.
    scheduler: str = "acmlg_both"
    cpu: CPUSpec = XEON_E5540
    gpu_clock_mhz: float = STANDARD_CLOCK_MHZ
    #: 1.0 = clean; < 1.0 injects a from-start GPU throttle at this depth.
    throttle_factor: float = 1.0
    #: Panel-broadcast algorithm threaded into the analytic config — the
    #: whole BCAST family must keep the twins inside the same bands.
    bcast_algo: str = "binomial"
    n: int = 12000
    seed: int = GOLDEN_SEED
    tolerances: DifferentialTolerances = DifferentialTolerances()

    @property
    def faulted(self) -> bool:
        return self.throttle_factor < 1.0


#: Throttled runs hit the split-collapse knee, where the DES database lags
#: the analytic mean by one panel measurement — the declared gap is wider.
THROTTLED_TOLERANCES = DifferentialTolerances(gsplit_tol=Tolerance(abs=0.25))

#: The seeded scenario matrix: three machine presets x fault/no-fault.
MATRIX: tuple[DifferentialCase, ...] = tuple(
    DifferentialCase(
        name=f"{preset}/{'throttled' if factor < 1.0 else 'clean'}",
        cpu=cpu,
        gpu_clock_mhz=clock,
        throttle_factor=factor,
        tolerances=(
            THROTTLED_TOLERANCES if factor < 1.0 else DifferentialTolerances()
        ),
    )
    for preset, cpu, clock in (
        ("e5540", XEON_E5540, STANDARD_CLOCK_MHZ),
        ("e5450", XEON_E5450, STANDARD_CLOCK_MHZ),
        ("e5540_downclocked", XEON_E5540, DOWNCLOCKED_MHZ),
    )
    for factor in (1.0, 0.75)
) + tuple(
    # The HPL BCAST family on the clean workhorse preset: the bcast_algo
    # knob rides through Session overrides into the analytic cost model and
    # must not move the twins out of the default bands.
    DifferentialCase(name=f"e5540/clean/{algo}", bcast_algo=algo)
    for algo in ("1ring", "1rm", "long")
)


def cases_for_schedulers(
    schedulers: Sequence[str],
    base: Optional[tuple[DifferentialCase, ...]] = None,
) -> tuple[DifferentialCase, ...]:
    """The matrix re-run per scheduler (``crossval --scheduler`` expansion).

    Each requested scheduler gets its own copy of *base* (default: the full
    :data:`MATRIX`) with cells renamed ``<scheduler>/<cell>``.  Unknown or
    DAG-only schedulers are rejected up front by
    :func:`~repro.sched.builds.resolve_hpl_build`.
    """
    from dataclasses import replace as dc_replace

    from repro.sched.builds import resolve_hpl_build

    base = tuple(base if base is not None else MATRIX)
    cases = []
    for scheduler in schedulers:
        name, _ = resolve_hpl_build(scheduler)
        cases.extend(
            dc_replace(case, scheduler=name, name=f"{name}/{case.name}")
            for case in base
        )
    return tuple(cases)


def _single_element_cluster(case: DifferentialCase) -> Cluster:
    """A deterministic one-element-population cluster matching the preset."""
    spec = ClusterSpec(
        name=f"differential[{case.cpu.name}@{case.gpu_clock_mhz:g}MHz]",
        cabinets=1,
        nodes_per_cabinet=1,
        node_specs=((0, tianhe1_node(case.cpu, case.gpu_clock_mhz)),),
        interconnect=QDR_INFINIBAND,
        variability=NO_VARIABILITY,
    )
    return Cluster(spec, seed=GOLDEN_SEED)


def analytic_run(case: DifferentialCase):
    """The closed-form side: Session over the case's preset (+ throttle)."""
    faults = None
    if case.faulted:
        faults = FaultSpec(
            throttles=(GpuThrottle(at=0.0, clock_factor=case.throttle_factor),)
        )
    scenario = Scenario(
        scheduler=case.scheduler,
        n=case.n,
        cluster=_single_element_cluster(case),
        seed=case.seed,
        collect_steps=True,
        faults=faults,
        overrides={"bcast_algo": case.bcast_algo},
    )
    return Session(scenario).run()


def des_run(case: DifferentialCase, nb: int = 1216):
    """The exact-DES side, on an element physically built at the faulted clock.

    Follows the paper's second-run protocol (one warming pass, then the
    measured pass) so the mapper databases are converged, matching the
    analytic stepper's fresh-measurement assumption.
    """
    sim = Simulator()
    spec_clock = case.gpu_clock_mhz * case.throttle_factor
    element = ComputeElement(
        sim,
        tianhe1_node(case.cpu, spec_clock).elements[0],
        variability=NO_VARIABILITY,
    )
    mapper = build_hpl_mapper(case.scheduler, element, case.n, nb=nb)
    runner = ElementLinpack(element, mapper, nb=nb, jitter=False)
    runner.run_to_completion(case.n)  # warm the databases
    return runner.run_to_completion(case.n, collect_steps=True), mapper


@dataclass
class DifferentialOutcome:
    """Both runs plus the structured comparison for one matrix cell."""

    case: DifferentialCase
    analytic: object
    des: object
    report: DivergenceReport

    @property
    def ok(self) -> bool:
        return self.report.ok


def _compare(case: DifferentialCase, analytic, des, mapper) -> DivergenceReport:
    tol = case.tolerances
    name = case.name
    report = DivergenceReport(checked=[name])

    if not tol.elapsed_band.ok(analytic.elapsed, des.elapsed):
        report.add(Divergence(
            trace=name, metric="elapsed", expected=analytic.elapsed,
            actual=des.elapsed, tolerance=tol.elapsed_band.describe(),
            detail="DES final elapsed outside the declared band of the analytic run",
        ))

    a_steps: list[StepTrace] = analytic.analytic.steps
    d_steps: list[ElementStep] = des.steps
    if len(a_steps) != len(d_steps):
        report.add(Divergence(
            trace=name, metric="n_steps", expected=float(len(a_steps)),
            actual=float(len(d_steps)), tolerance="exact",
            detail="both twins factor the same panel count",
        ))
        return report

    # Final step excluded: the DES twin's last panel is prefetched by
    # look-ahead and has no trailing update, so its step collapses to ~0.
    for i in range(tol.skip_head, len(a_steps) - 1):
        a, d = a_steps[i], d_steps[i]
        if not tol.step_band.ok(a.step_time, d.step_time):
            report.add(Divergence(
                trace=name, metric="step_time", expected=a.step_time,
                actual=d.step_time, tolerance=tol.step_band.describe(), step=i,
                detail="per-step time outside the declared band",
            ))
        if not tol.gsplit_tol.ok(a.mean_gsplit, d.gsplit):
            report.add(Divergence(
                trace=name, metric="gsplit", expected=a.mean_gsplit,
                actual=d.gsplit, tolerance=tol.gsplit_tol.describe(), step=i,
                detail="mapper-database trajectory diverged from the analytic split",
            ))

    # Both twins must be internally consistent too.  Only mappers that carry
    # split databases (adaptive/qilin) have database invariants to check —
    # the static mapper stores a fixed split, not a learned one.
    report.extend(check_run(analytic, trace=f"{name}/analytic").divergences)
    if hasattr(mapper, "database_g"):
        from repro.verify.invariants import check_mapper_databases

        report.extend(check_mapper_databases(mapper, trace=f"{name}/mapper"))
    return report


def run_case(case: DifferentialCase) -> DifferentialOutcome:
    """Run one matrix cell through both twins and compare."""
    analytic = analytic_run(case)
    des, mapper = des_run(case)
    return DifferentialOutcome(
        case=case, analytic=analytic, des=des,
        report=_compare(case, analytic, des, mapper),
    )


def _case_report(case: DifferentialCase) -> dict:
    """One cell's report as a dict (the pool/cache worker for the matrix)."""
    return run_case(case).report.to_dict()


def run_matrix(cases: Optional[tuple[DifferentialCase, ...]] = None) -> DivergenceReport:
    """The whole scenario matrix; one aggregated report.

    Cells are independent seeded scenarios, so they fan out across the
    ambient :class:`repro.exec.ExecutionPolicy`'s workers and cache as
    serialised reports (rebuilt via :meth:`DivergenceReport.from_dict`) —
    ``python -m repro.verify crossval --jobs N`` is the opt-in.
    """
    from repro.exec import evaluate_points

    cases = tuple(cases if cases is not None else MATRIX)
    report = DivergenceReport()
    for payload in evaluate_points(
        "verify.crossval.case", _case_report, [dict(case=case) for case in cases]
    ):
        report.extend(DivergenceReport.from_dict(payload))
    return report
