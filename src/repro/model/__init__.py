"""Analytic performance models and paper-derived calibration anchors.

:mod:`repro.model.calibration` records every number the paper states, so
tests and EXPERIMENTS.md compare against a single source of truth.
:mod:`repro.model.dgemm_model` provides closed-form makespan formulas for the
hybrid DGEMM under each optimization configuration; they are cross-validated
against the exact DES execution in ``tests/model/`` and consumed (vectorized
over thousands of elements) by the analytic HPL stepper.
"""

from repro.model import calibration
from repro.model.dgemm_model import (
    DgemmShape,
    ElementRates,
    GpuPathBreakdown,
    hybrid_dgemm_time,
    transfer_bytes,
)

__all__ = [
    "calibration",
    "DgemmShape",
    "ElementRates",
    "GpuPathBreakdown",
    "hybrid_dgemm_time",
    "transfer_bytes",
]
