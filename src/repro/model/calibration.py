"""Every quantitative claim in the paper, as named constants.

These are the *targets* the reproduction is judged against (EXPERIMENTS.md
records paper-vs-measured for each).  Units are SI (flops/s, seconds, bytes)
unless the name says otherwise.
"""

from repro.util.units import GFLOPS, TFLOPS

# --- Section III / Top500 (system) ------------------------------------------------
PEAK_PFLOPS = 1.206e15  #: headline system peak (includes front-end nodes)
COMPUTE_NODE_PEAK = (214.96 + 942.08) * TFLOPS  #: compute-node-only peak
LINPACK_FULL_SYSTEM = 563.1 * TFLOPS  #: Rmax of the November-2009 Top500 entry
CPU_AGGREGATE_PEAK = 214.96 * TFLOPS
GPU_AGGREGATE_PEAK = 942.08 * TFLOPS
TOTAL_NODES = 2560
TOTAL_ELEMENTS = 5120
CABINETS = 80
NODES_PER_CABINET = 32
MFLOPS_PER_WATT = 379.24
IB_BANDWIDTH_GBPS = 40.0
IB_LATENCY_S = 1.2e-6

# --- Section IV (adaptive mapping) -----------------------------------------------
ELEMENT_PEAK = 280.5 * GFLOPS  #: one E5540 compute element at 750 MHz
INITIAL_GSPLIT = 0.889  #: P'_G / (P'_G + P'_C) for that element
CPU_CORE_EXAMPLE_GFLOPS = 10.0  #: the "10 GFLOPS" core of Section IV.A's example

# --- Section V (pipelining worked example) ---------------------------------------
WORKED_EXAMPLE_N = 10_000
WORKED_EXAMPLE_MATRIX_MB = 800.0
WORKED_EXAMPLE_HOST_BW = 500e6  #: pageable host<->PCIe-buffer assumption
WORKED_EXAMPLE_GPU_BW = 5e9
WORKED_EXAMPLE_TRANSFER_S = 5.28  #: 800*3/500 + 800*3/5000
WORKED_EXAMPLE_COMPUTE_S = 8.33  #: 2000 Gflop / 240 GFLOPS
RV770_DP_PEAK = 240 * GFLOPS
TEXTURE_LIMIT = 8192
PINNED_LIMIT_MB = 4.0

# --- Section VI.A (methodology) ----------------------------------------------------
NB_CPU_ONLY = 196
NB_GPU = 1216
STANDARD_GPU_CLOCK_MHZ = 750.0
DOWNCLOCKED_GPU_CLOCK_MHZ = 575.0
STANDARD_MEM_CLOCK_MHZ = 900.0
DOWNCLOCKED_MEM_CLOCK_MHZ = 625.0
TEMP_AT_750_C = 110.0
TEMP_AT_575_C = 92.0
FULL_SYSTEM_N = 2_240_000
FULL_SYSTEM_GRID = (64, 80)  #: P x Q process grid

# --- Section VI.B (single compute element) ---------------------------------------
SINGLE_ELEMENT_LINPACK = 196.7 * GFLOPS
SINGLE_ELEMENT_PEAK_FRACTION = 0.701
SINGLE_ELEMENT_N = 46_000
ACMLG_LINPACK = 59.2 * GFLOPS
ACMLG_PEAK_FRACTION = 0.211
SPEEDUP_OVER_ACMLG = 3.3
SPEEDUP_OVER_CPU_ONLY = 5.49
ADAPTIVE_GAIN_AVG = 0.1464  #: DGEMM, all sizes
PIPELINE_GAIN_AVG = 0.0761  #: DGEMM, N > 8192 only
COMBINED_GAIN_AVG = 0.2219  #: DGEMM, N > 8192
PIPELINE_NO_GAIN_BELOW_N = 8192
SPLIT_KNEE_GFLOP = 1300.0  #: Fig 10: splits fluctuate below ~1300 Gflop

# --- Section VI.C (multi-element) ---------------------------------------------------
CABINET_ELEMENTS = 64
ADAPTIVE_VS_QILIN_AT_64 = 0.1556  #: our mapping 15.56% faster at 64 processes
QILIN_TRAINING_HOURS_PER_CABINET = 2.0
CABINET_POWER_KW = 18.5
QILIN_TRAINING_KWH_PER_CABINET = 37.0
QILIN_TRAINING_KWH_FULL_SYSTEM = 2960.0
CABINET_LINPACK = 8.02 * TFLOPS
SCALING_EFFICIENCY_80_CABINETS = 0.8776
SCALING_N_RANGE = (280_000, 2_400_000)
PROGRESS_AT_DROP = 0.9717  #: Fig 13: performance up to 97.17% of progress...
PERF_BEFORE_DROP = 604.74 * TFLOPS  #: ...is 604.74 TFLOPS...
ENDGAME_DROP = 41.6 * TFLOPS  #: ...then drops ~41.6 TFLOPS to the final 563.1.


def derived_cpu_only_linpack() -> float:
    """The CPU-only (MKL) single-element Linpack the paper implies.

    Stated as "outperform host-only implementation by a factor of 5.49":
    196.7 / 5.49 = 35.8 GFLOPS.
    """
    return SINGLE_ELEMENT_LINPACK / SPEEDUP_OVER_CPU_ONLY
