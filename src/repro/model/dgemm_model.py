"""Closed-form makespan model of the hybrid (CPU+GPU) DGEMM.

This is the analytic twin of the exact DES executor in
:mod:`repro.core.hybrid_dgemm`: identical inputs (shape, split, rates,
optimization flags), a few-microsecond evaluation, and full numpy
vectorization over element populations — which is what makes the petascale
figures (Figs. 11-13) computable.  ``tests/model/test_cross_validation.py``
pins the two against each other.

Timing structure (one compute element):

* GPU path:  ``T_G = input + kernel + output`` serial when unpipelined;
  ``T_G = max(kernel, link) + prologue + epilogue`` when the Section-V
  software pipeline overlaps transfers with execution.  The *link* term is
  the single transfer thread's total busy time (input and output share it).
* CPU path:  ``T_C = W_C / (aggregate core rate)`` with an imbalance factor
  for non-adaptive per-core splits.
* Makespan:  ``max(T_G, T_C)`` — "the end time is the last who finishes".

GPU kernel efficiency is evaluated at the GPU's *own* workload ``W_G`` on the
saturating curve (see :class:`repro.machine.gpu.GPUDevice`); tasks created by
texture-limit splitting inherit the call-level rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.util.units import DOUBLE_BYTES, dgemm_flops
from repro.util.validation import require, require_fraction, require_positive

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class DgemmShape:
    """Geometry of one DGEMM call ``C[m,n] (+)= A[m,k] @ B[k,n]``.

    ``beta_nonzero`` marks the HPL trailing-update case (``beta=1``): C is an
    *input* as well as an output, doubling its PCIe traffic.
    """

    m: int
    n: int
    k: int
    beta_nonzero: bool = True

    def __post_init__(self) -> None:
        require(self.m >= 0 and self.n >= 0 and self.k >= 0, "dimensions must be >= 0")

    @property
    def flops(self) -> float:
        """Total workload W of the call."""
        return dgemm_flops(self.m, self.n, self.k)

    def task_grid(self, gsplit: float, texture_limit: int) -> tuple[int, int]:
        """(row blocks of A1, column blocks of B) after texture splitting."""
        require_positive(texture_limit, "texture_limit")
        m1 = int(round(self.m * gsplit))
        r = max(1, math.ceil(m1 / texture_limit)) if m1 > 0 else 0
        c = max(1, math.ceil(self.n / texture_limit)) if self.n > 0 else 0
        return r, c


@dataclass
class ElementRates:
    """Device rates of one element — or arrays over a whole population.

    All per-element fields broadcast together; PCIe parameters are scalars
    (the path hardware is uniform across TianHe-1).
    """

    gpu_peak: ArrayLike  # includes clock + static factor
    eff_max: ArrayLike
    w_half: ArrayLike
    kernel_overhead: ArrayLike
    cpu_rate: ArrayLike  # aggregate compute-core DGEMM rate
    host_bw: float
    gpu_bw: float
    pcie_latency: float
    drift_factor: ArrayLike = 1.0  # thermal factor at the evaluation time
    cpu_imbalance: ArrayLike = 1.0  # >= 1; multiplies the CPU path time

    def gpu_rate(self, workload: ArrayLike) -> ArrayLike:
        """Sustained kernel rate at the given workload(s)."""
        w = np.asarray(workload, dtype=float)
        eff = np.where(w > 0, self.eff_max * w / (w + self.w_half), 0.0)
        rate = self.gpu_peak * eff * self.drift_factor
        return rate if rate.ndim else float(rate)

    @classmethod
    def from_table(cls, table, t: float = 0.0, pinned: bool = True) -> "ElementRates":
        """Build from a :class:`repro.machine.cluster.ElementRateTable`."""
        return cls(
            gpu_peak=table.gpu_peak,
            eff_max=table.eff_max,
            w_half=table.w_half,
            kernel_overhead=table.kernel_overhead,
            cpu_rate=table.cpu_hybrid_rate,
            host_bw=table.pinned_bw if pinned else table.pageable_bw,
            gpu_bw=table.gpu_bw,
            pcie_latency=table.pcie_latency,
            drift_factor=table.drift(t),
        )

    @classmethod
    def from_element(cls, element, t: float = 0.0, pinned: bool = True) -> "ElementRates":
        """Build from a DES :class:`repro.machine.node.ComputeElement`."""
        spec = element.spec
        return cls(
            gpu_peak=element.gpu.peak_flops * element.gpu.static_factor,
            eff_max=spec.gpu.eff_max,
            w_half=spec.gpu.w_half,
            kernel_overhead=spec.gpu.kernel_launch_overhead,
            cpu_rate=element.cpu_compute_rate(),
            host_bw=spec.pcie.host_bw(pinned),
            gpu_bw=spec.pcie.gpu_bw,
            pcie_latency=spec.pcie.latency,
            drift_factor=element.gpu.drift(t),
        )


def transfer_bytes(
    shape: DgemmShape,
    gsplit: float,
    reuse: bool,
    texture_limit: int = 8192,
) -> tuple[float, float, int]:
    """PCIe traffic of the GPU portion: (input bytes, output bytes, n_tasks).

    With bounce-corner-turn reuse (Section V.C) every operand block crosses
    the bus once; without it each task re-sends its A and B blocks, so A1
    crosses ``c`` times and B crosses ``r`` times.
    """
    require_fraction(gsplit, "gsplit")
    m1 = int(round(shape.m * gsplit))
    if m1 == 0 or shape.n == 0 or shape.k == 0:
        return 0.0, 0.0, 0
    r, c = shape.task_grid(gsplit, texture_limit)
    a_bytes = m1 * shape.k * DOUBLE_BYTES
    b_bytes = shape.k * shape.n * DOUBLE_BYTES
    c_bytes = m1 * shape.n * DOUBLE_BYTES
    if reuse:
        input_bytes = a_bytes + b_bytes
    else:
        input_bytes = c * a_bytes + r * b_bytes
    if shape.beta_nonzero:
        input_bytes += c_bytes  # C blocks ride in exactly once either way
    return float(input_bytes), float(c_bytes), r * c


@dataclass
class GpuPathBreakdown:
    """Per-element GPU-path timing components (arrays broadcast together)."""

    t_input: ArrayLike
    t_kernel: ArrayLike
    t_output: ArrayLike
    t_total: ArrayLike
    gpu_rate: ArrayLike
    n_tasks: int


@dataclass
class HybridDgemmTime:
    """Result of :func:`hybrid_dgemm_time`."""

    gpu: GpuPathBreakdown
    t_cpu: ArrayLike
    makespan: ArrayLike

    def effective_rate(self, workload: float) -> ArrayLike:
        """Whole-call sustained rate: W / makespan."""
        return workload / self.makespan


def _link_time(nbytes: ArrayLike, n_messages: int, rates: ElementRates) -> ArrayLike:
    """Two-hop store-and-forward transfer time for *nbytes*."""
    return n_messages * rates.pcie_latency + np.asarray(nbytes) * (
        1.0 / rates.host_bw + 1.0 / rates.gpu_bw
    )


def hybrid_dgemm_time(
    shape: DgemmShape,
    gsplit: float,
    rates: ElementRates,
    pipelined: bool,
    reuse: bool | None = None,
    texture_limit: int = 8192,
    eo_block_rows: int = 512,
) -> HybridDgemmTime:
    """Makespan of one hybrid DGEMM call under the given configuration.

    ``pipelined=False`` models the vendor-library behaviour (synchronous
    input -> kernel -> output per task, no cross-task reuse unless *reuse*
    says otherwise); ``pipelined=True`` models the paper's software pipeline
    (Section V): bounce-corner-turn reuse, next-task input overlapped with
    the current EO stage, and output fused into execution via the CB0/CB1
    double buffer.
    """
    require_fraction(gsplit, "gsplit")
    if reuse is None:
        reuse = pipelined
    w = shape.flops
    m1 = int(round(shape.m * gsplit))
    w_gpu = dgemm_flops(m1, shape.n, shape.k)
    w_cpu = w - w_gpu

    in_bytes, out_bytes, n_tasks = transfer_bytes(shape, gsplit, reuse, texture_limit)
    gpu_rate = rates.gpu_rate(w_gpu)
    if n_tasks == 0:
        zeros = np.zeros(np.shape(np.asarray(rates.gpu_peak)))
        t_kernel: ArrayLike = zeros if zeros.ndim else 0.0
        t_in = t_out = t_gpu = t_kernel
    else:
        t_kernel = np.asarray(n_tasks) * rates.kernel_overhead + np.asarray(w_gpu) / gpu_rate
        # Three operand messages per task (A, B, C blocks).
        t_in = _link_time(in_bytes, 3 * n_tasks, rates)
        t_out = _link_time(out_bytes, n_tasks, rates)
        if n_tasks == 1:
            pipelined = False  # single-task queues degenerate (Section VI.B)
        if not pipelined:
            t_gpu = t_in + t_kernel + t_out
        else:
            r, c = shape.task_grid(gsplit, texture_limit)
            m1_task = math.ceil(m1 / r)
            n_task = math.ceil(shape.n / c)
            first_in = (m1_task * shape.k + shape.k * n_task) * DOUBLE_BYTES
            if shape.beta_nonzero:
                first_in += m1_task * n_task * DOUBLE_BYTES
            prologue = _link_time(first_in, 3, rates)
            last_block = min(eo_block_rows, m1_task) * n_task * DOUBLE_BYTES
            epilogue = _link_time(last_block, 1, rates)
            # One transfer thread serves both directions; when the pipeline
            # streams, the slow host-side hop is the bottleneck (the GPU hop
            # of one transfer overlaps the host hop of the next).
            t_link = (4 * n_tasks) * rates.pcie_latency + (
                np.asarray(in_bytes) + np.asarray(out_bytes)
            ) / rates.host_bw
            t_gpu = np.maximum(t_kernel, t_link - prologue - epilogue) + prologue + epilogue
    t_cpu = np.asarray(w_cpu) / np.asarray(rates.cpu_rate) * np.asarray(rates.cpu_imbalance)
    makespan = np.maximum(t_gpu, t_cpu)
    if np.ndim(makespan) == 0:
        t_gpu, t_cpu, makespan = float(t_gpu), float(t_cpu), float(makespan)
        t_in, t_out, t_kernel = float(t_in), float(t_out), float(t_kernel)
    return HybridDgemmTime(
        gpu=GpuPathBreakdown(
            t_input=t_in,
            t_kernel=t_kernel,
            t_output=t_out,
            t_total=t_gpu,
            gpu_rate=gpu_rate,
            n_tasks=n_tasks,
        ),
        t_cpu=t_cpu,
        makespan=makespan,
    )


def balanced_gsplit(
    shape: DgemmShape,
    rates: ElementRates,
    pipelined: bool,
    texture_limit: int = 8192,
    iterations: int = 25,
) -> ArrayLike:
    """The split that equalises GPU-path and CPU-path times.

    This is the fixed point the paper's level-1 adaptive loop converges to
    under stationary rates (``GSplit <- P_G / (P_G + P_C)``); computed here by
    running that exact iteration on the closed-form model.
    """
    vec = np.ndim(np.asarray(rates.gpu_peak)) > 0
    gsplit: ArrayLike = np.full_like(np.asarray(rates.gpu_peak, dtype=float), 0.5) if vec else 0.5
    for _ in range(iterations):
        if vec:
            # Evaluate element-by-element: task grids depend on the split.
            new = np.empty_like(np.asarray(gsplit))
            for i in range(len(new)):
                new[i] = _gsplit_step(shape, float(np.asarray(gsplit)[i]), _scalar_rates(rates, i), pipelined, texture_limit)
            gsplit = new
        else:
            gsplit = _gsplit_step(shape, float(gsplit), rates, pipelined, texture_limit)
    return gsplit


def _gsplit_step(
    shape: DgemmShape, gsplit: float, rates: ElementRates, pipelined: bool, texture_limit: int
) -> float:
    timing = hybrid_dgemm_time(shape, gsplit, rates, pipelined, texture_limit=texture_limit)
    w = shape.flops
    w_gpu = w * gsplit
    w_cpu = w - w_gpu
    t_gpu = float(np.asarray(timing.gpu.t_total))
    t_cpu = float(np.asarray(timing.t_cpu))
    p_gpu = w_gpu / t_gpu if t_gpu > 0 else 0.0
    p_cpu = w_cpu / t_cpu if t_cpu > 0 else float(np.asarray(rates.cpu_rate))
    if p_gpu + p_cpu == 0:
        return gsplit
    return min(1.0, max(0.0, p_gpu / (p_gpu + p_cpu)))


def _scalar_rates(rates: ElementRates, i: int) -> ElementRates:
    def pick(x):
        arr = np.asarray(x)
        return float(arr[i]) if arr.ndim else float(arr)

    return ElementRates(
        gpu_peak=pick(rates.gpu_peak),
        eff_max=pick(rates.eff_max),
        w_half=pick(rates.w_half),
        kernel_overhead=pick(rates.kernel_overhead),
        cpu_rate=pick(rates.cpu_rate),
        host_bw=rates.host_bw,
        gpu_bw=rates.gpu_bw,
        pcie_latency=rates.pcie_latency,
        drift_factor=pick(rates.drift_factor),
        cpu_imbalance=pick(rates.cpu_imbalance),
    )
