"""Hardware models of the TianHe-1 system.

Everything the paper's techniques react to lives here: CPU cores with
per-core heterogeneity (Section IV.A's L2-sharing effect), the RV770 GPU with
its workload-dependent efficiency and memory/texture limits, the two-hop PCIe
path (Section V.A), compute elements/nodes/cabinets/the full cluster
(Section III), the QDR InfiniBand interconnect, and run-to-run variability
(jitter, manufacturing spread, thermal drift).

All devices run on the :mod:`repro.sim` virtual clock.  The models are
calibrated from numbers stated in the paper itself — see
:mod:`repro.machine.presets` and :mod:`repro.model.calibration`.
"""

from repro.machine.specs import (
    CPUSpec,
    GPUSpec,
    PCIeSpec,
    InterconnectSpec,
    ElementSpec,
    NodeSpec,
    ClusterSpec,
)
from repro.machine.variability import VariabilitySpec, ThermalModel, thermal_drift
from repro.machine.cpu import CpuCore
from repro.machine.gpu import GPUDevice, GpuMemoryError
from repro.machine.pcie import PCIeLink
from repro.machine.node import ComputeElement, Node
from repro.machine.interconnect import Interconnect
from repro.machine.cluster import Cluster, ElementRateTable
from repro.machine.power import PowerModel, TIANHE1_POWER
from repro.machine import presets

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "PCIeSpec",
    "InterconnectSpec",
    "ElementSpec",
    "NodeSpec",
    "ClusterSpec",
    "VariabilitySpec",
    "ThermalModel",
    "thermal_drift",
    "CpuCore",
    "GPUDevice",
    "GpuMemoryError",
    "PCIeLink",
    "ComputeElement",
    "Node",
    "Interconnect",
    "Cluster",
    "ElementRateTable",
    "PowerModel",
    "TIANHE1_POWER",
    "presets",
]
