"""Run-time variability: jitter, manufacturing spread, thermal behaviour.

These effects are exactly what separates the paper's *adaptive* mapping from
static or trained (Qilin-style) mapping:

* **Per-call jitter** — OS noise and cache effects make each DGEMM's rate
  fluctuate a few percent; a split trained once is immediately stale.
* **Per-element static spread** — 5120 elements are not identical silicon; a
  single cluster-wide static split misfits most elements.
* **L2-share penalty** — the core pairing an L2 cache with the dedicated
  transfer core loses throughput while transfers run (Section IV.A).
* **Thermal drift** — GPUs slow as they heat over a long run.  The paper
  reports 110 °C at 750 MHz forcing a downclock to 575 MHz (92 °C) for the
  full-system run (Section VI.A); a Qilin database trained on cold hardware
  mis-predicts the hot steady state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.util.validation import require, require_fraction, require_nonnegative


@dataclass(frozen=True)
class VariabilitySpec:
    """Magnitudes of all stochastic/heterogeneous effects.

    Setting every field to zero yields a perfectly deterministic, homogeneous
    machine (useful for analytic cross-validation tests).
    """

    core_jitter_sigma: float = 0.03  # lognormal sigma of per-call CPU rate
    gpu_jitter_sigma: float = 0.01  # lognormal sigma of per-kernel GPU rate
    element_spread_sigma: float = 0.02  # per-element static rate factor spread
    l2_share_penalty: float = 0.12  # rate loss of the transfer core's L2 sibling
    thermal_drift_depth: float = 0.06  # asymptotic GPU slowdown when hot
    thermal_drift_tau: float = 600.0  # warm-up time constant (s)
    # Slowly-varying per-element condition noise (thermal state, OS/daemon
    # activity, node-level contention).  This is what makes a *trained*
    # mapping stale: by run time each element's true rates have wandered a
    # few percent from what the training run measured, and at scale the
    # per-step max over all processes amplifies every under-assignment.
    slow_noise_sigma: float = 0.06  # stationary lognormal sigma of the drift
    slow_noise_rho: float = 0.98  # per-panel-step AR(1) correlation
    measurement_sigma: float = 0.01  # noise on any single rate measurement
    # A training pass covers thousands of (element, size) points in its two
    # hours, so each trained entry rests on a single quick measurement —
    # noisier than the adaptive loop's continuously refreshed estimates.
    training_measurement_sigma: float = 0.04

    def __post_init__(self) -> None:
        require_nonnegative(self.core_jitter_sigma, "core_jitter_sigma")
        require_nonnegative(self.gpu_jitter_sigma, "gpu_jitter_sigma")
        require_nonnegative(self.element_spread_sigma, "element_spread_sigma")
        require_fraction(self.l2_share_penalty, "l2_share_penalty")
        require_fraction(self.thermal_drift_depth, "thermal_drift_depth")
        require_nonnegative(self.thermal_drift_tau, "thermal_drift_tau")
        require_nonnegative(self.slow_noise_sigma, "slow_noise_sigma")
        require_fraction(self.slow_noise_rho, "slow_noise_rho")
        require_nonnegative(self.measurement_sigma, "measurement_sigma")
        require_nonnegative(self.training_measurement_sigma, "training_measurement_sigma")

    @property
    def deterministic(self) -> bool:
        """True when no stochastic effect is enabled."""
        return (
            self.core_jitter_sigma == 0.0
            and self.gpu_jitter_sigma == 0.0
            and self.element_spread_sigma == 0.0
        )


#: Fully deterministic machine for analytic tests.
NO_VARIABILITY = VariabilitySpec(
    core_jitter_sigma=0.0,
    gpu_jitter_sigma=0.0,
    element_spread_sigma=0.0,
    l2_share_penalty=0.0,
    thermal_drift_depth=0.0,
    thermal_drift_tau=600.0,
    slow_noise_sigma=0.0,
    slow_noise_rho=0.0,
    measurement_sigma=0.0,
    training_measurement_sigma=0.0,
)


class SlowNoise:
    """Per-element AR(1) condition noise, advanced once per panel step.

    ``factors()`` returns mean-one lognormal multipliers with stationary
    sigma ``sigma`` and step-to-step correlation ``rho`` — slow enough that
    an adaptive mapper tracking last step's measurement stays accurate,
    but fast enough that a mapping trained hours earlier is stale.
    """

    def __init__(self, n: int, sigma: float, rho: float, rng: np.random.Generator) -> None:
        require(n >= 0, "n must be >= 0")
        require_nonnegative(sigma, "sigma")
        require_fraction(rho, "rho")
        self.sigma = sigma
        self.rho = rho
        self._rng = rng
        self._state = rng.standard_normal(n) if sigma > 0 else np.zeros(n)

    def step(self) -> None:
        """Advance the process by one panel step."""
        if self.sigma == 0.0:
            return
        innovation = self._rng.standard_normal(len(self._state))
        self._state = self.rho * self._state + math.sqrt(1.0 - self.rho**2) * innovation

    def factors(self) -> np.ndarray:
        """Current mean-one multiplicative factors."""
        if self.sigma == 0.0:
            return np.ones(len(self._state))
        return np.exp(self.sigma * self._state - 0.5 * self.sigma**2)


def draw_static_factors(n: int, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Per-element static performance factors, lognormal around 1.

    Normalised so the *median* element is exactly 1.0; the spread models
    silicon/cooling differences across the population.
    """
    require(n >= 0, "n must be >= 0")
    require_nonnegative(sigma, "sigma")
    if sigma == 0.0:
        return np.ones(n)
    return np.exp(rng.normal(0.0, sigma, size=n))


def jitter_factor(sigma: float, rng: np.random.Generator) -> float:
    """One multiplicative per-call jitter draw (mean-one lognormal)."""
    require_nonnegative(sigma, "sigma")
    if sigma == 0.0:
        return 1.0
    return float(np.exp(rng.normal(-0.5 * sigma * sigma, sigma)))


def thermal_drift(depth: float, tau: float) -> Callable[[float], float]:
    """A GPU slowdown schedule: factor(t) = 1 - depth * (1 - exp(-t/tau)).

    Returns a callable suitable for :attr:`GPUDevice.drift`.  At t=0 the
    device runs at full (cold) rate; it settles ``depth`` lower once hot.
    """
    require_fraction(depth, "depth")
    require_nonnegative(tau, "tau")

    def factor(t: float) -> float:
        if t <= 0 or depth == 0.0:
            return 1.0
        if tau == 0.0:
            return 1.0 - depth
        return 1.0 - depth * (1.0 - math.exp(-t / tau))

    return factor


class ThermalModel:
    """GPU die temperature as a function of core clock.

    Calibrated on the two operating points the paper reports: 750 MHz ->
    110 °C and 575 MHz -> 92 °C (Section VI.A), linearly interpolated.  The
    paper treats ~100 °C as the stability limit for long runs, which is why
    the full-configuration Linpack ran at the reduced clock.
    """

    #: (clock MHz, temperature Celsius) anchors from the paper.
    ANCHORS = ((575.0, 92.0), (750.0, 110.0))
    #: Sustained temperature above which long runs become unstable.
    STABILITY_LIMIT_C = 100.0

    def __init__(self, anchors: tuple[tuple[float, float], ...] = ANCHORS) -> None:
        require(len(anchors) == 2, "ThermalModel takes exactly two anchors")
        (c0, t0), (c1, t1) = anchors
        require(c1 > c0, "anchors must be ordered by clock")
        self._slope = (t1 - t0) / (c1 - c0)
        self._intercept = t0 - self._slope * c0

    def temperature(self, clock_mhz: float) -> float:
        """Steady-state die temperature at *clock_mhz* under full load."""
        return self._slope * clock_mhz + self._intercept

    def is_stable(self, clock_mhz: float) -> bool:
        """Whether a long run at *clock_mhz* stays below the stability limit."""
        return self.temperature(clock_mhz) <= self.STABILITY_LIMIT_C

    def max_stable_clock(self) -> float:
        """Highest clock whose steady-state temperature is stable."""
        return (self.STABILITY_LIMIT_C - self._intercept) / self._slope
