"""The node-to-node network (TianHe-1: two-level QDR InfiniBand switches).

A deliberately simple latency+bandwidth (alpha-beta) model: each rank owns
one injection port (a FIFO :class:`~repro.sim.BandwidthChannel`); a message
costs ``latency + bytes / bandwidth`` and serialises with other messages the
same sender has in flight.  The two-level fat tree of TianHe-1 is
approximated as full bisection (the paper never attributes performance
effects to topology, only to the 40 Gb/s / 1.2 us figures it quotes).
"""

from __future__ import annotations

from repro.machine.specs import InterconnectSpec
from repro.sim import BandwidthChannel, Event, Simulator
from repro.util.validation import require


class Interconnect:
    """Per-rank injection ports over an ideal full-bisection core."""

    def __init__(self, sim: Simulator, spec: InterconnectSpec, n_ranks: int) -> None:
        require(n_ranks >= 1, "n_ranks must be >= 1")
        self.sim = sim
        self.spec = spec
        self.n_ranks = n_ranks
        self._ports: dict[int, BandwidthChannel] = {}

    def port(self, rank: int) -> BandwidthChannel:
        """The injection port of *rank* (created lazily)."""
        require(0 <= rank < self.n_ranks, f"rank {rank} out of range")
        channel = self._ports.get(rank)
        if channel is None:
            channel = BandwidthChannel(
                self.sim, self.spec.bandwidth, self.spec.latency, name=f"ib.port{rank}"
            )
            self._ports[rank] = channel
        return channel

    def send(self, src: int, dst: int, nbytes: float) -> Event:
        """Inject a message; the returned event fires when it is delivered.

        A self-send completes after the latency only (memcpy, no injection).
        """
        require(0 <= dst < self.n_ranks, f"rank {dst} out of range")
        if src == dst:
            return self.sim.timeout(self.spec.latency, value=nbytes)
        return self.port(src).transfer(nbytes)

    def message_time(self, nbytes: float) -> float:
        """Uncontended alpha-beta time of one message."""
        return self.spec.latency + nbytes / self.spec.bandwidth

    def total_bytes(self) -> float:
        """Bytes injected so far across all ports."""
        return sum(port.bytes_transferred for port in self._ports.values())
