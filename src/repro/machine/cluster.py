"""Cluster-level composition and the vectorized element rate table.

Petascale runs (Figs. 11-13: up to 5120 processes, N up to 2.4 million)
cannot instantiate 5120 DES devices per panel step; instead the
:class:`ElementRateTable` exposes the *same calibrated rate models* as numpy
arrays over the element population, which the analytic HPL stepper
(:mod:`repro.hpl.analytic`) consumes vectorized.  :meth:`Cluster.build_element`
constructs the full DES object for any element with identical parameters, so
tests can cross-validate the two paths element-by-element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.machine.node import ComputeElement
from repro.machine.specs import ClusterSpec, ElementSpec
from repro.machine.variability import draw_static_factors
from repro.sim import Simulator
from repro.util.rng import RngStream
from repro.util.validation import require


@dataclass
class ElementRateTable:
    """Per-element calibrated rates as numpy arrays (length = n elements).

    ``gpu_peak`` already includes the configured clock and the element's
    static spread factor; GPU rate at workload ``w`` and wall time ``t`` is
    ``gpu_peak * eff_max * w/(w + w_half) * (1 - drift_depth*(1-exp(-t/tau)))``.
    """

    gpu_peak: np.ndarray
    eff_max: np.ndarray
    w_half: np.ndarray
    drift_depth: np.ndarray
    drift_tau: float
    kernel_overhead: np.ndarray
    cpu_hybrid_rate: np.ndarray  # 3 compute cores, L2 penalty folded in
    cpu_hybrid_even_rate: np.ndarray  # ditto, but even per-core splits (no level 2)
    cpu_full_rate: np.ndarray  # all 4 cores (CPU-only runs)
    initial_gsplit: np.ndarray  # peak-ratio split P'_G/(P'_G+P'_C) per element
    core_jitter_sigma: float
    gpu_jitter_sigma: float
    pinned_bw: float
    pageable_bw: float
    gpu_bw: float
    pcie_latency: float

    @property
    def n_elements(self) -> int:
        return len(self.gpu_peak)

    def drift(self, t: float) -> np.ndarray:
        """Per-element thermal factor at wall time *t*."""
        if self.drift_tau <= 0:
            return 1.0 - self.drift_depth
        return 1.0 - self.drift_depth * (1.0 - np.exp(-t / self.drift_tau))

    def gpu_rate(self, workload: "float | np.ndarray", t: float = 0.0) -> np.ndarray:
        """Per-element sustained GPU kernel rate for the given workload(s)."""
        w = np.asarray(workload, dtype=float)
        eff = np.where(w > 0, self.eff_max * w / (w + self.w_half), 0.0)
        return self.gpu_peak * eff * self.drift(t)

    def gpu_kernel_time(self, workload: "float | np.ndarray", t: float = 0.0) -> np.ndarray:
        """Per-element kernel duration including launch overhead."""
        w = np.asarray(workload, dtype=float)
        rate = self.gpu_rate(w, t)
        return self.kernel_overhead + np.divide(
            w, rate, out=np.zeros(np.broadcast(w, rate).shape), where=rate > 0
        )

    def subset(self, indices: np.ndarray) -> "ElementRateTable":
        """A view of the table restricted to *indices* (for sub-grids)."""
        return ElementRateTable(
            gpu_peak=self.gpu_peak[indices],
            eff_max=self.eff_max[indices],
            w_half=self.w_half[indices],
            drift_depth=self.drift_depth[indices],
            drift_tau=self.drift_tau,
            kernel_overhead=self.kernel_overhead[indices],
            cpu_hybrid_rate=self.cpu_hybrid_rate[indices],
            cpu_hybrid_even_rate=self.cpu_hybrid_even_rate[indices],
            cpu_full_rate=self.cpu_full_rate[indices],
            initial_gsplit=self.initial_gsplit[indices],
            core_jitter_sigma=self.core_jitter_sigma,
            gpu_jitter_sigma=self.gpu_jitter_sigma,
            pinned_bw=self.pinned_bw,
            pageable_bw=self.pageable_bw,
            gpu_bw=self.gpu_bw,
            pcie_latency=self.pcie_latency,
        )


def spec_digest(spec: ClusterSpec) -> str:
    """A short, process-stable digest of a full :class:`ClusterSpec`.

    Covers every field of the spec tree (node populations, GPU/CPU/PCIe
    constants, interconnect, variability), so two machines differing in any
    calibrated number digest differently while the same preset digests
    identically in every process.  This is what cache keys and scenario
    content hashes use as the machine identity — never ``repr`` of a live
    object, which bakes in a memory address.
    """
    import hashlib

    from repro.exec.cache import canonical_json

    return hashlib.sha256(canonical_json(spec).encode()).hexdigest()[:16]


class Cluster:
    """A TianHe-1-like machine: spec + frozen per-element random draws.

    The same seed yields the same static factors and drift depths whether an
    element is consumed through the vectorized :meth:`rate_table` or as a
    full DES :meth:`build_element`.
    """

    def __init__(self, spec: ClusterSpec, seed: int = 2009) -> None:
        self.spec = spec
        self.seed = seed
        self._stream = RngStream(seed).child(spec.name)
        n = spec.total_elements
        var = spec.variability
        self._static_factors = draw_static_factors(
            n, var.element_spread_sigma, self._stream.child("spread").generator()
        )
        # Thermal sensitivity differs element to element (cooling position in
        # the cabinet, silicon leakage): depth_i = depth * U(0.5, 1.5).
        depth_rng = self._stream.child("drift").generator()
        self._drift_depths = var.thermal_drift_depth * depth_rng.uniform(0.5, 1.5, size=n)
        self._table: Optional[ElementRateTable] = None

    def content_key(self) -> dict:
        """The machine's identity as cache-key data: spec digest + seed.

        Everything that determines behaviour enters — the spec through
        :func:`spec_digest`, the frozen random draws through ``seed`` —
        and nothing process-local does, so the same preset built twice
        (or in two processes) keys identically and two different presets
        can never alias.
        """
        return {
            "name": self.spec.name,
            "spec": spec_digest(self.spec),
            "seed": self.seed,
        }

    def __repr__(self) -> str:
        return (
            f"Cluster({self.spec.name!r}, elements={self.n_elements}, "
            f"seed={self.seed}, spec={spec_digest(self.spec)})"
        )

    @property
    def n_elements(self) -> int:
        return self.spec.total_elements

    def element_spec(self, index: int) -> ElementSpec:
        return self.spec.element_spec(index)

    def static_factor(self, index: int) -> float:
        return float(self._static_factors[index])

    def drift_depth(self, index: int) -> float:
        return float(self._drift_depths[index])

    def build_element(self, sim: Simulator, index: int, name: str = "") -> ComputeElement:
        """Instantiate the full DES model of element *index*."""
        require(0 <= index < self.n_elements, f"element index {index} out of range")
        return ComputeElement(
            sim,
            self.element_spec(index),
            variability=self.spec.variability,
            rng=self._stream.child(f"element{index}"),
            static_factor=self.static_factor(index),
            drift_depth=self.drift_depth(index),
            name=name or f"{self.spec.name}.e{index}",
        )

    def rate_table(self) -> ElementRateTable:
        """The vectorized rate table over all elements (cached)."""
        if self._table is not None:
            return self._table
        n = self.n_elements
        var = self.spec.variability
        gpu_peak = np.empty(n)
        eff_max = np.empty(n)
        w_half = np.empty(n)
        kernel_overhead = np.empty(n)
        cpu_hybrid = np.empty(n)
        cpu_even = np.empty(n)
        cpu_full = np.empty(n)
        initial_gsplit = np.empty(n)
        # Element specs repeat in long runs; compute one prototype per spec.
        cache: dict[int, tuple[float, ...]] = {}
        for i in range(n):
            spec = self.element_spec(i)
            key = id(spec)
            proto = cache.get(key)
            if proto is None:
                proto = (
                    spec.gpu.peak_flops(spec.gpu_clock_mhz),
                    spec.gpu.eff_max,
                    spec.gpu.w_half,
                    spec.gpu.kernel_launch_overhead,
                    _cpu_hybrid_rate(spec, var.l2_share_penalty),
                    spec.cpu.peak_flops * spec.cpu.dgemm_efficiency,
                    _cpu_even_rate(spec, var.l2_share_penalty),
                    spec.initial_gsplit,
                )
                cache[key] = proto
            factor = self._static_factors[i]
            gpu_peak[i] = proto[0] * factor
            eff_max[i] = proto[1]
            w_half[i] = proto[2]
            kernel_overhead[i] = proto[3]
            cpu_hybrid[i] = proto[4] * factor
            cpu_full[i] = proto[5] * factor
            cpu_even[i] = proto[6] * factor
            initial_gsplit[i] = proto[7]
        pcie = self.element_spec(0).pcie
        self._table = ElementRateTable(
            gpu_peak=gpu_peak,
            eff_max=eff_max,
            w_half=w_half,
            drift_depth=self._drift_depths.copy(),
            drift_tau=var.thermal_drift_tau,
            kernel_overhead=kernel_overhead,
            cpu_hybrid_rate=cpu_hybrid,
            cpu_hybrid_even_rate=cpu_even,
            cpu_full_rate=cpu_full,
            initial_gsplit=initial_gsplit,
            core_jitter_sigma=var.core_jitter_sigma,
            gpu_jitter_sigma=var.gpu_jitter_sigma,
            pinned_bw=pcie.pinned_bw,
            pageable_bw=pcie.pageable_bw,
            gpu_bw=pcie.gpu_bw,
            pcie_latency=pcie.latency,
        )
        return self._table


def _cpu_hybrid_rate(spec: ElementSpec, l2_penalty: float) -> float:
    """Aggregate compute-core rate with the L2-share penalty folded in.

    In hybrid mode transfers run most of the time, so the transfer core's L2
    sibling is assumed penalised throughout (the DES model applies it only
    while transfers are actually in flight; tests bound the difference).
    """
    sibling = spec.cpu.l2_sibling(spec.transfer_core)
    rate = 0.0
    for i in spec.compute_core_indices:
        core_rate = spec.cpu.core_peak_flops * spec.cpu.dgemm_efficiency
        if sibling is not None and i == sibling:
            core_rate *= 1.0 - l2_penalty
        rate += core_rate
    return rate


def _cpu_even_rate(spec: ElementSpec, l2_penalty: float) -> float:
    """Effective aggregate rate under even per-core splits (no level 2).

    With an even split the slowest core gates completion, so the effective
    rate is ``n_cores x min(core rate)`` — the load-imbalance the paper's
    level-2 adaptation removes (Section IV.A's 1-GFLOPS example).
    """
    sibling = spec.cpu.l2_sibling(spec.transfer_core)
    rates = []
    for i in spec.compute_core_indices:
        core_rate = spec.cpu.core_peak_flops * spec.cpu.dgemm_efficiency
        if sibling is not None and i == sibling:
            core_rate *= 1.0 - l2_penalty
        rates.append(core_rate)
    return len(rates) * min(rates) if rates else 0.0
