"""GPU device model (one RV770 chip of the HD4870x2 card).

The kernel-time model is the load-bearing piece of the whole reproduction:

``rate(W) = peak(clock) * eff_max * W / (W + w_half) * drift(t) * jitter``

i.e. DGEMM kernel efficiency *saturates with workload*.  Small DGEMMs run far
below peak (kernel-launch and shape overheads dominate), large ones approach
``eff_max``.  This single curve produces three of the paper's observations:

* Fig. 10's split-ratio knee — below ~1300 Gflop the true GPU/CPU rate ratio
  is far from the peak ratio 0.889, so adaptive splits swing wildly there and
  settle above it;
* the big adaptive-mapping win at small matrix sizes in Fig. 8;
* Fig. 13's endgame performance drop ("the GPU is less effective when the
  matrix size is relatively small").

Memory is modelled too: 1 GB of local memory and the 8192x8192 texture limit
(Section V.C) force large DGEMMs to be split into the task queues the
software pipeline feeds on.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.machine.specs import GPUSpec
from repro.machine.variability import jitter_factor
from repro.sim import Simulator, Timeout
from repro.util.validation import require, require_nonnegative, require_positive


class GpuMemoryError(RuntimeError):
    """An allocation exceeded GPU local memory or the texture extent limit."""


class GPUDevice:
    """One GPU chip as a DES device."""

    def __init__(
        self,
        sim: Simulator,
        spec: GPUSpec,
        clock_mhz: Optional[float] = None,
        static_factor: float = 1.0,
        jitter_sigma: float = 0.0,
        drift: Optional[Callable[[float], float]] = None,
        rng: Optional[np.random.Generator] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.clock_mhz = float(clock_mhz if clock_mhz is not None else spec.ref_clock_mhz)
        require_positive(self.clock_mhz, "clock_mhz")
        require(static_factor > 0, "static_factor must be > 0")
        self.static_factor = float(static_factor)
        self.jitter_sigma = float(jitter_sigma)
        self.drift = drift or (lambda t: 1.0)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.name = name or spec.name
        self._allocated = 0.0
        self.busy_time = 0.0
        self.flops_done = 0.0
        self.kernel_count = 0

    # -- performance ---------------------------------------------------------
    @property
    def peak_flops(self) -> float:
        """DP peak at the current clock."""
        return self.spec.peak_flops(self.clock_mhz)

    def set_clock(self, clock_mhz: float) -> None:
        """Change the core clock (the paper's 750 -> 575 MHz downclock)."""
        require_positive(clock_mhz, "clock_mhz")
        self.clock_mhz = float(clock_mhz)

    def efficiency(self, workload_flops: float) -> float:
        """Kernel efficiency for a DGEMM of the given flop count."""
        require_nonnegative(workload_flops, "workload_flops")
        if workload_flops == 0.0:
            return 0.0
        return self.spec.eff_max * workload_flops / (workload_flops + self.spec.w_half)

    def kernel_rate(self, workload_flops: float, at_time: Optional[float] = None) -> float:
        """Deterministic sustained rate for a kernel of this size (flops/s)."""
        t = self.sim.now if at_time is None else at_time
        return (
            self.peak_flops
            * self.efficiency(workload_flops)
            * self.static_factor
            * self.drift(t)
        )

    def kernel_time(
        self, workload_flops: float, jitter: bool = True, rate: Optional[float] = None
    ) -> float:
        """Duration of one kernel: launch overhead + flops / rate.

        *rate* overrides the efficiency-curve rate — used when a large DGEMM
        call is split into a task queue: efficiency is indexed by the *call's*
        workload (the paper's database index), so every task kernel of that
        call runs at the call-level rate, not the rate its own smaller flop
        count would suggest.
        """
        require_nonnegative(workload_flops, "workload_flops")
        if workload_flops == 0.0:
            return self.spec.kernel_launch_overhead
        effective = self.kernel_rate(workload_flops) if rate is None else rate
        require_positive(effective, "rate")
        if jitter:
            effective *= jitter_factor(self.jitter_sigma, self._rng)
        return self.spec.kernel_launch_overhead + workload_flops / effective

    def run_kernel(
        self, workload_flops: float, jitter: bool = True, rate: Optional[float] = None
    ) -> Timeout:
        """Execute a kernel; the returned event fires on completion."""
        duration = self.kernel_time(workload_flops, jitter=jitter, rate=rate)
        self.busy_time += duration
        self.flops_done += workload_flops
        self.kernel_count += 1
        return self.sim.timeout(duration, value=workload_flops)

    # -- memory ----------------------------------------------------------------
    @property
    def memory_free(self) -> float:
        """Unallocated local memory in bytes."""
        return self.spec.local_memory_bytes - self._allocated

    @property
    def memory_allocated(self) -> float:
        """Currently allocated local memory in bytes."""
        return self._allocated

    def check_texture(self, rows: int, cols: int) -> None:
        """Reject 2-D allocations exceeding the texture extent (8192 on RV770)."""
        limit = self.spec.max_texture_dim
        if rows > limit or cols > limit:
            raise GpuMemoryError(
                f"{rows}x{cols} exceeds the {limit}x{limit} texture limit of {self.name}; "
                "split the matrix into tasks (Section V.C)"
            )

    def alloc(self, nbytes: float, rows: Optional[int] = None, cols: Optional[int] = None) -> None:
        """Allocate local memory, optionally validating the 2-D extent."""
        require_nonnegative(nbytes, "nbytes")
        if rows is not None and cols is not None:
            self.check_texture(rows, cols)
        if self._allocated + nbytes > self.spec.local_memory_bytes:
            raise GpuMemoryError(
                f"allocating {nbytes / 1e6:.1f} MB would exceed {self.name}'s "
                f"{self.spec.local_memory_bytes / 1e6:.0f} MB local memory "
                f"({self._allocated / 1e6:.1f} MB in use)"
            )
        self._allocated += nbytes

    def free(self, nbytes: float) -> None:
        """Release local memory."""
        require_nonnegative(nbytes, "nbytes")
        if nbytes > self._allocated + 1e-6:
            raise GpuMemoryError("freeing more memory than is allocated")
        self._allocated = max(0.0, self._allocated - nbytes)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Busy fraction of the GPU over the run (or *elapsed* seconds)."""
        window = self.sim.now if elapsed is None else elapsed
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_time / window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GPUDevice {self.name} @{self.clock_mhz:.0f} MHz peak={self.peak_flops / 1e9:.0f} GFLOPS>"
