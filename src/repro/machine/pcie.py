"""The two-hop PCIe transfer path between host and GPU memory.

Section V.A: "GPU communicates with CPU through PCI-E memory.  Data are
copied to PCI-E memory first and then are transferred to GPU local memory."
The first hop (host memory <-> PCIe buffer) runs at hundreds of MB/s for
pageable memory; the second (PCIe buffer <-> GPU local memory) at 4-8 GB/s.
Pinned memory removes the pageable copy but is limited to small chunks
(4 MB at a time under CAL), giving an intermediate *effective* host-side
bandwidth.

Both directions share the two hops and are served FIFO — matching the
implementation detail that a single dedicated CPU thread performs all
transfers, which is why the paper splits the input phase into blocks "to
avoid the conflict between the input stage and the output stage".
"""

from __future__ import annotations

from typing import Optional

from repro.machine.specs import PCIeSpec
from repro.sim import BandwidthChannel, Process, Simulator
from repro.util.validation import require_nonnegative


class PCIeLink:
    """DES model of one compute element's CPU<->GPU data path."""

    def __init__(self, sim: Simulator, spec: PCIeSpec, name: str = "pcie") -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        # Pageable and pinned host-side traffic contend for the same physical
        # path; model them as one channel whose per-transfer speed depends on
        # the allocation type, by charging bytes at the channel's base rate
        # scaled per call.  Implementation: a channel at pinned_bw, with
        # pageable transfers inflated by the bandwidth ratio.
        self._host = BandwidthChannel(sim, spec.pinned_bw, spec.latency, name=f"{name}.host")
        self._gpu = BandwidthChannel(sim, spec.gpu_bw, 0.0, name=f"{name}.gpu")
        self._active = 0
        self.bytes_to_gpu = 0.0
        self.bytes_to_host = 0.0

    # -- timing estimates (closed form, no DES side effects) --------------------
    def duration(self, nbytes: float, pinned: bool = True) -> float:
        """Uncontended duration of one transfer in either direction."""
        require_nonnegative(nbytes, "nbytes")
        host_time = self.spec.latency + nbytes / self.spec.host_bw(pinned)
        gpu_time = nbytes / self.spec.gpu_bw
        return host_time + gpu_time

    def bandwidth(self, pinned: bool = True) -> float:
        """Effective end-to-end bandwidth of the two serial hops."""
        host_bw = self.spec.host_bw(pinned)
        return 1.0 / (1.0 / host_bw + 1.0 / self.spec.gpu_bw)

    # -- DES transfers -----------------------------------------------------------
    def _host_equiv_bytes(self, nbytes: float, pinned: bool) -> float:
        # The host channel is parameterised at pinned_bw; a pageable transfer
        # occupies it proportionally longer.
        if pinned:
            return nbytes
        return nbytes * (self.spec.pinned_bw / self.spec.pageable_bw)

    @property
    def busy(self) -> bool:
        """True while any transfer is in flight (drives the L2-share penalty)."""
        return self._active > 0

    def _transfer(self, nbytes: float, to_gpu: bool, pinned: bool):
        self._active += 1
        try:
            if to_gpu:
                yield self._host.transfer(self._host_equiv_bytes(nbytes, pinned))
                yield self._gpu.transfer(nbytes)
                self.bytes_to_gpu += nbytes
            else:
                yield self._gpu.transfer(nbytes)
                yield self._host.transfer(self._host_equiv_bytes(nbytes, pinned))
                self.bytes_to_host += nbytes
        finally:
            self._active -= 1
        return nbytes

    def to_gpu(self, nbytes: float, pinned: bool = True) -> Process:
        """Move *nbytes* host -> GPU; the returned event fires when done."""
        require_nonnegative(nbytes, "nbytes")
        return self.sim.process(self._transfer(nbytes, True, pinned), name=f"{self.name}.to_gpu")

    def to_host(self, nbytes: float, pinned: bool = True) -> Process:
        """Move *nbytes* GPU -> host; the returned event fires when done."""
        require_nonnegative(nbytes, "nbytes")
        return self.sim.process(self._transfer(nbytes, False, pinned), name=f"{self.name}.to_host")

    def host_utilization(self, elapsed: Optional[float] = None) -> float:
        """Busy fraction of the (bottleneck) host-side hop."""
        return self._host.utilization(elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PCIeLink {self.name} pinned={self.spec.pinned_bw / 1e9:.2g} GB/s "
            f"gpu={self.spec.gpu_bw / 1e9:.2g} GB/s>"
        )
