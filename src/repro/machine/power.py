"""Power and energy accounting.

Section III reports 379.24 MFLOPS/W for the Linpack run and Section VI.C
gives the one-cabinet draw the Qilin training-energy argument uses: 18.5 kW
per cabinet "without concerning the air-conditioning and UPS equipments".
This model keeps those two anchors consistent (80 x 18.5 kW = 1.48 MW;
563.1 TFLOPS / 1.48 MW = 380 MFLOPS/W) and supports what-if accounting for
the benchmarks (training energy, downclock savings).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_nonnegative, require_positive


@dataclass(frozen=True)
class PowerModel:
    """Cabinet-level power: idle floor + load-dependent part scaled by clock.

    The load share scales roughly linearly with the GPU core clock (dynamic
    power ~ f x V^2; over the paper's narrow 575-750 MHz window a linear fit
    is within a few percent), anchored so a cabinet under Linpack load at
    575 MHz draws the measured 18.5 kW.
    """

    idle_kw_per_cabinet: float = 6.5
    load_kw_per_cabinet_at_575: float = 12.0
    reference_clock_mhz: float = 575.0

    def __post_init__(self) -> None:
        require_nonnegative(self.idle_kw_per_cabinet, "idle_kw_per_cabinet")
        require_nonnegative(self.load_kw_per_cabinet_at_575, "load_kw_per_cabinet_at_575")
        require_positive(self.reference_clock_mhz, "reference_clock_mhz")

    def cabinet_kw(self, clock_mhz: float = 575.0, load: float = 1.0) -> float:
        """Draw of one cabinet at the given GPU clock and load fraction."""
        require_nonnegative(load, "load")
        dynamic = self.load_kw_per_cabinet_at_575 * (clock_mhz / self.reference_clock_mhz)
        return self.idle_kw_per_cabinet + load * dynamic

    def system_kw(self, cabinets: int, clock_mhz: float = 575.0, load: float = 1.0) -> float:
        """Draw of *cabinets* cabinets."""
        return cabinets * self.cabinet_kw(clock_mhz, load)

    def energy_kwh(self, cabinets: int, seconds: float, clock_mhz: float = 575.0,
                   load: float = 1.0) -> float:
        """Energy of a run of the given duration."""
        require_nonnegative(seconds, "seconds")
        return self.system_kw(cabinets, clock_mhz, load) * seconds / 3600.0

    def mflops_per_watt(self, flops_per_s: float, cabinets: int,
                        clock_mhz: float = 575.0) -> float:
        """The Green500 figure of merit for a sustained rate."""
        watts = self.system_kw(cabinets, clock_mhz) * 1e3
        return flops_per_s / 1e6 / watts


#: Anchored to Section VI.C's 18.5 kW cabinet measurement.
TIANHE1_POWER = PowerModel()
