"""TianHe-1 hardware presets, calibrated from numbers stated in the paper.

Every constant below is traceable to the paper text:

* Section III: 2560 nodes in 80 cabinets of 32; two quad-core Xeons + one
  HD4870x2 (two RV770 chips, 1 GB each) per node; 4096 E5540 + 1024 E5450
  CPUs; CPU aggregate peak 214.96 TFLOPS; GPU aggregate 942.08 TFLOPS; QDR
  InfiniBand at 40 Gb/s and 1.2 us.
* Section IV.A: element peak 280.5 GFLOPS; a CPU core ≈ 10 GFLOPS; initial
  GSplit = P'_G/(P'_G+P'_C) reported as 0.889.
* Section V.A: RV770 DP peak 240 GFLOPS; host<->PCIe-buffer ≈ 500 MB/s
  pageable; PCIe-buffer<->GPU ≈ 5 GB/s; 4 MB pinned-allocation limit (CAL).
* Section V.C: 8192x8192 texture limit.
* Section VI.A: 750 MHz standard core clock (single-element tests), 575 MHz
  for the full-system run; memory clock 900 -> 625 MHz.

Derived checks (asserted in tests/machine/test_presets.py):
  E5540 core: 2.53 GHz x 4 flops/cycle = 10.12 GFLOPS; socket 40.48.
  E5450 core: 3.00 GHz x 4 = 12 GFLOPS; socket 48.
  4096 x 40.48 + 1024 x 48 GFLOPS = 214.96 TFLOPS  (paper's CPU total)
  5120 x 240 x 575/750 GFLOPS    = 942.08 TFLOPS  (paper's GPU total,
                                                   i.e. quoted at 575 MHz)
  240 + 40.48                    = 280.5 GFLOPS    (element peak, E5540)
  240 / (240 + 3 x 10.12)        = 0.8877 ≈ 0.889  (initial GSplit)

Efficiency constants (``dgemm_efficiency``, ``eff_max``, ``w_half``,
``pinned_bw``) are calibrated so the single-element anchors of Section VI.B
hold: CPU-only Linpack ≈ 196.7/5.49 = 35.8 GFLOPS, optimized Linpack ≈
196.7 GFLOPS (70.1 % of peak), ACML-GPU-linked Linpack ≈ 59.2 GFLOPS, and
Fig. 10's split knee sits near 1300 Gflop.
"""

from __future__ import annotations

from repro.machine.specs import (
    CPUSpec,
    ClusterSpec,
    ElementSpec,
    GPUSpec,
    InterconnectSpec,
    NodeSpec,
    PCIeSpec,
)
from repro.machine.variability import VariabilitySpec
from repro.util.units import GB, MB

#: Intel Xeon E5540 (Nehalem, 2.53 GHz): 4 cores x 10.12 GFLOPS DP.
#: The pairing models shared-uncore contention adjacency; on the E5450 it is
#: a literal shared L2 (Section IV.A singles out the E5450 architecture).
XEON_E5540 = CPUSpec(
    name="Xeon E5540",
    n_cores=4,
    core_peak_flops=10.12e9,
    dgemm_efficiency=0.885,
    l2_pairs=((0, 1), (2, 3)),
)

#: Intel Xeon E5450 (Harpertown, 3.0 GHz): 4 cores x 12 GFLOPS DP,
#: L2 shared in pairs — the architecture Section IV.A discusses.
XEON_E5450 = CPUSpec(
    name="Xeon E5450",
    n_cores=4,
    core_peak_flops=12.0e9,
    dgemm_efficiency=0.885,
    l2_pairs=((0, 1), (2, 3)),
)

#: One RV770 chip of the ATI Radeon HD4870x2.
RV770 = GPUSpec(
    name="RV770",
    ref_clock_mhz=750.0,
    peak_flops_at_ref=240e9,
    ref_mem_clock_mhz=900.0,
    local_memory_bytes=1.0 * GB,
    max_texture_dim=8192,
    eff_max=0.84,
    w_half=80e9,  # efficiency knee; Fig. 10's split settles above ~1300 Gflop
    kernel_launch_overhead=1e-3,  # CAL dispatch cost per kernel
)

#: PCIe 2.0 x16 path as the paper measures it (Section V.A).
PCIE_2 = PCIeSpec(
    pageable_bw=500 * MB,
    pinned_bw=4.0 * GB,  # effective host-side rate via 4 MB pinned chunks
    gpu_bw=5.0 * GB,
    latency=20e-6,
    pinned_chunk_bytes=4 * MB,
)

#: Two-level QDR InfiniBand: 40 Gb/s aggregate, 1.2 us latency (Section III).
QDR_INFINIBAND = InterconnectSpec(bandwidth=5.0 * GB, latency=1.2e-6)

#: Default stochastic environment (see VariabilitySpec for the rationale).
DEFAULT_VARIABILITY = VariabilitySpec()

#: Paper operating clocks (Section VI.A).
STANDARD_CLOCK_MHZ = 750.0
DOWNCLOCKED_MHZ = 575.0

#: Block sizes used per configuration (Section VI.A: NB=196 typical for
#: CPU-only, NB=1216 chosen for the GPU-accelerated runs; 448 models the
#: vendor-library default compromise).
NB_CPU_ONLY = 196
NB_GPU = 1216
NB_VENDOR = 448


def tianhe1_element(
    cpu: CPUSpec = XEON_E5540,
    gpu_clock_mhz: float = STANDARD_CLOCK_MHZ,
    pcie: PCIeSpec = PCIE_2,
    transfer_core: int = 0,
) -> ElementSpec:
    """One TianHe-1 compute element (default: E5540 socket at 750 MHz GPU)."""
    return ElementSpec(
        cpu=cpu, gpu=RV770, pcie=pcie, gpu_clock_mhz=gpu_clock_mhz, transfer_core=transfer_core
    )


def tianhe1_node(
    cpu: CPUSpec = XEON_E5540, gpu_clock_mhz: float = STANDARD_CLOCK_MHZ
) -> NodeSpec:
    """One TianHe-1 node: two identical compute elements, 32 GB shared memory."""
    element = tianhe1_element(cpu=cpu, gpu_clock_mhz=gpu_clock_mhz)
    return NodeSpec(elements=(element, element), shared_memory_bytes=32 * GB)


#: Number of E5540 nodes (4096 of the 5120 CPUs; 2 CPUs per node).
N_E5540_NODES = 2048
#: Number of E5450 nodes (the remaining 1024 CPUs).
N_E5450_NODES = 512


#: The paper's full-machine process grid: 64 x 80 = 5120 ranks, one per
#: compute element of the 2560-node system (Section VI.A).
FULL_SYSTEM_GRID = (64, 80)
#: Cabinet count of the full machine (32 nodes per cabinet).
FULL_SYSTEM_CABINETS = 80


def full_system_cluster(
    gpu_clock_mhz: float = DOWNCLOCKED_MHZ,
    variability: VariabilitySpec = DEFAULT_VARIABILITY,
    seed: int = 2009,
):
    """The full 2560-node TianHe-1, built and seeded — the 0.563 PFLOPS run.

    Convenience for full-machine scenarios (``repro.bench fullsystem``):
    all 80 cabinets at the thermally-stable 575 MHz operating point, paired
    with :data:`FULL_SYSTEM_GRID`.
    """
    from repro.machine.cluster import Cluster  # local: presets stays spec-level

    return Cluster(
        tianhe1_cluster(FULL_SYSTEM_CABINETS, gpu_clock_mhz, variability), seed=seed
    )


# -- Frontier-style exascale node (PAPERS.md: arXiv 2304.10397) ----------------
#
# The campaign layer's second machine family: one node of a Frontier-like
# exascale system — 4x MI250X (8 GCDs, each a "compute element" here) fed by
# a 64-core Trento EPYC, GCDs linked to the host over Infinity Fabric and
# nodes over Slingshot-11.  Constants follow the public HPL-on-Frontier
# numbers (arXiv 2304.10397): ~26.5 TFLOPS FP64 vector peak per GCD at
# 1.7 GHz, 64 GB HBM2e per GCD, ~36 GB/s host<->GCD per direction, 4x25 GB/s
# NICs per node.  The point is not RV770-grade calibration — it is a second,
# honestly-different preset so campaigns and what-if queries span machine
# generations, with identities that can never alias in the result cache.

#: An 8-core slice of the 64-core EPYC 7A53 (Trento, Zen 3): one slice per
#: GCD, 16 DP flops/cycle at the 2.0 GHz all-core base.
EPYC_TRENTO_SLICE = CPUSpec(
    name="EPYC 7A53 slice",
    n_cores=8,
    core_peak_flops=32.0e9,
    dgemm_efficiency=0.90,
)

#: One Graphics Compute Die of an AMD Instinct MI250X.
MI250X_GCD = GPUSpec(
    name="MI250X GCD",
    ref_clock_mhz=1700.0,
    peak_flops_at_ref=26.5e12,
    ref_mem_clock_mhz=1600.0,
    local_memory_bytes=64 * GB,
    max_texture_dim=65536,
    eff_max=0.82,  # rocBLAS dgemm fraction of vector peak at large N
    w_half=6e12,   # efficiency knee: GCDs need multi-Tflop tiles to saturate
    kernel_launch_overhead=6e-6,
)

#: Host<->GCD Infinity Fabric path (modelled through the PCIe-path shape).
INFINITY_FABRIC = PCIeSpec(
    pageable_bw=16.0 * GB,
    pinned_bw=36.0 * GB,
    gpu_bw=200.0 * GB,
    latency=2e-6,
    pinned_chunk_bytes=64 * MB,
)

#: Slingshot-11: four 200 Gb/s NICs per node, ~2 us MPI latency.
SLINGSHOT_11 = InterconnectSpec(bandwidth=100.0 * GB, latency=2e-6)

#: MI250X reference clock (per-GCD peak is quoted at 1.7 GHz).
FRONTIER_CLOCK_MHZ = 1700.0


def frontier_element(gpu_clock_mhz: float = FRONTIER_CLOCK_MHZ) -> ElementSpec:
    """One Frontier compute element: an EPYC slice driving one MI250X GCD."""
    return ElementSpec(
        cpu=EPYC_TRENTO_SLICE,
        gpu=MI250X_GCD,
        pcie=INFINITY_FABRIC,
        gpu_clock_mhz=gpu_clock_mhz,
        transfer_core=0,
    )


def frontier_node(gpu_clock_mhz: float = FRONTIER_CLOCK_MHZ) -> NodeSpec:
    """One Frontier-style node: 8 GCD-elements, 512 GB of host DDR4."""
    element = frontier_element(gpu_clock_mhz)
    return NodeSpec(elements=(element,) * 8, shared_memory_bytes=512 * GB)


def frontier_cluster(
    nodes: int = 1,
    gpu_clock_mhz: float = FRONTIER_CLOCK_MHZ,
    variability: VariabilitySpec = DEFAULT_VARIABILITY,
) -> ClusterSpec:
    """A Frontier-style machine of *nodes* nodes (8 GCD-elements each)."""
    return ClusterSpec(
        name=f"Frontier[{nodes} nodes]",
        cabinets=nodes,
        nodes_per_cabinet=1,
        node_specs=((0, frontier_node(gpu_clock_mhz)),),
        interconnect=SLINGSHOT_11,
        variability=variability,
    )


def tianhe1_cluster(
    cabinets: int = 80,
    gpu_clock_mhz: float = DOWNCLOCKED_MHZ,
    variability: VariabilitySpec = DEFAULT_VARIABILITY,
) -> ClusterSpec:
    """The TianHe-1 system (or a prefix of *cabinets* cabinets).

    Defaults to the full-system operating point: 80 cabinets at the
    thermally-stable 575 MHz GPU clock (Section VI.A).  E5540 nodes fill the
    first 64 cabinets, E5450 nodes the last 16 — preserving the paper's
    4096/1024 CPU population when all 80 are used.
    """
    total_nodes = cabinets * 32
    ranges: list[tuple[int, NodeSpec]] = [(0, tianhe1_node(XEON_E5540, gpu_clock_mhz))]
    if total_nodes > N_E5540_NODES:
        ranges.append((N_E5540_NODES, tianhe1_node(XEON_E5450, gpu_clock_mhz)))
    return ClusterSpec(
        name=f"TianHe-1[{cabinets} cabinets]",
        cabinets=cabinets,
        nodes_per_cabinet=32,
        node_specs=tuple(ranges),
        interconnect=QDR_INFINIBAND,
        variability=variability,
    )
