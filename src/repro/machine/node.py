"""Compute elements and nodes.

A *compute element* — one CPU socket plus one GPU chip plus their PCIe path —
is the unit the paper's whole framework operates on ("One CPU processor and
one GPU chip in the same node constitutes one basic heterogenous compute
unit, which we call compute element", Section III).  One HPL process is bound
to one element.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.machine.cpu import CpuCore
from repro.machine.gpu import GPUDevice
from repro.machine.pcie import PCIeLink
from repro.machine.specs import ElementSpec, NodeSpec
from repro.machine.variability import VariabilitySpec, thermal_drift
from repro.sim import Simulator, Tracer
from repro.util.rng import RngStream


class ComputeElement:
    """One CPU + one GPU chip + PCIe path, wired onto a simulator.

    The CPU core at ``spec.transfer_core`` is dedicated to CPU<->GPU
    communication; the remaining cores compute.  The core sharing an L2 with
    the transfer core is flagged so it suffers the Section IV.A penalty while
    transfers are in flight.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: ElementSpec,
        variability: Optional[VariabilitySpec] = None,
        rng: Optional[RngStream] = None,
        static_factor: float = 1.0,
        drift_depth: Optional[float] = None,
        name: str = "element",
        tracer: Optional[Tracer] = None,
        telemetry=None,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        self.tracer = tracer
        #: Optional :class:`repro.obs.Telemetry`; executors bound to this
        #: element default to it the same way they default to ``tracer``.
        self.telemetry = telemetry
        var = variability if variability is not None else VariabilitySpec()
        self.variability = var
        stream = rng if rng is not None else RngStream(0).child(name)

        self.pcie = PCIeLink(sim, spec.pcie, name=f"{name}.pcie")
        #: Incremented while a hybrid DGEMM with GPU work is in flight.  The
        #: transfer thread runs essentially continuously during such a call,
        #: so the L2-sharing penalty applies to the sibling core throughout —
        #: matching the aggregate model in :mod:`repro.machine.cluster`.
        self._hybrid_depth = 0

        depth = var.thermal_drift_depth if drift_depth is None else drift_depth
        self.gpu = GPUDevice(
            sim,
            spec.gpu,
            clock_mhz=spec.gpu_clock_mhz,
            static_factor=static_factor,
            jitter_sigma=var.gpu_jitter_sigma,
            drift=thermal_drift(depth, var.thermal_drift_tau),
            rng=stream.child("gpu").generator(),
            name=f"{name}.gpu",
        )
        self.drift_depth = depth

        sibling = spec.cpu.l2_sibling(spec.transfer_core)
        self.cores: list[CpuCore] = []
        for i in range(spec.cpu.n_cores):
            core = CpuCore(
                sim,
                spec.cpu,
                i,
                static_factor=static_factor,
                jitter_sigma=var.core_jitter_sigma,
                l2_share_penalty=var.l2_share_penalty,
                transfer_busy=lambda self=self: self.pcie.busy or self._hybrid_depth > 0,
                rng=stream.child(f"core{i}").generator(),
                name=f"{name}.core{i}",
            )
            core.l2_shares_with_transfer = sibling is not None and i == sibling
            self.cores.append(core)

    # -- hybrid-execution bookkeeping -------------------------------------------
    def begin_hybrid(self) -> None:
        """Mark the start of a hybrid DGEMM with GPU work (nests safely)."""
        self._hybrid_depth += 1

    def end_hybrid(self) -> None:
        """Mark the end of a hybrid DGEMM."""
        self._hybrid_depth = max(0, self._hybrid_depth - 1)

    # -- structure ---------------------------------------------------------------
    @property
    def transfer_core(self) -> CpuCore:
        """The core dedicated to CPU<->GPU communication."""
        return self.cores[self.spec.transfer_core]

    @property
    def compute_cores(self) -> list[CpuCore]:
        """Cores participating in computation in hybrid mode (3 of 4)."""
        return [self.cores[i] for i in self.spec.compute_core_indices]

    @property
    def all_cores(self) -> list[CpuCore]:
        """All cores — what a CPU-only run uses (no dedicated transfer core)."""
        return list(self.cores)

    # -- aggregate figures ----------------------------------------------------------
    @property
    def peak_flops(self) -> float:
        """Element peak (GPU at configured clock + whole CPU)."""
        return self.gpu.peak_flops + self.spec.cpu.peak_flops

    @property
    def initial_gsplit(self) -> float:
        """The paper's initial GPU workload fraction (≈0.889 on TianHe-1)."""
        gpu_peak = self.gpu.peak_flops
        return gpu_peak / (gpu_peak + self.spec.cpu_compute_peak)

    def cpu_compute_rate(self) -> float:
        """Current aggregate DGEMM rate of the compute cores (flops/s)."""
        return float(sum(core.current_rate() for core in self.compute_cores))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ComputeElement {self.name} peak={self.peak_flops / 1e9:.1f} GFLOPS>"


class Node:
    """A TianHe-1 compute node: two elements sharing host memory and an IB port."""

    def __init__(
        self,
        sim: Simulator,
        spec: NodeSpec,
        variability: Optional[VariabilitySpec] = None,
        rng: Optional[RngStream] = None,
        name: str = "node",
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        stream = rng if rng is not None else RngStream(0).child(name)
        var = variability if variability is not None else VariabilitySpec()
        factors = _element_factors(len(spec.elements), var, stream)
        self.elements = [
            ComputeElement(
                sim,
                espec,
                variability=var,
                rng=stream.child(f"element{i}"),
                static_factor=factors[i],
                name=f"{name}.e{i}",
            )
            for i, espec in enumerate(spec.elements)
        ]

    @property
    def peak_flops(self) -> float:
        return sum(e.peak_flops for e in self.elements)


def _element_factors(n: int, var: VariabilitySpec, stream: RngStream) -> np.ndarray:
    from repro.machine.variability import draw_static_factors

    return draw_static_factors(n, var.element_spread_sigma, stream.child("spread").generator())
