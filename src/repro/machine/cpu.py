"""CPU core device model.

Each :class:`CpuCore` executes flop-counted work on the virtual clock at a
rate assembled from:

* the socket spec's per-core DGEMM rate (peak x tuned-library efficiency),
* a static per-element factor (manufacturing/cooling spread),
* the L2-sharing penalty while the element's transfer engine is busy
  (Section IV.A: the core sharing an L2 with the dedicated communication core
  slows down, and "the end time is the last who finishes"),
* per-call multiplicative jitter (OS noise).

The adaptive mapper never sees these internals — exactly like the paper, it
only observes workloads and completion times.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.machine.specs import CPUSpec
from repro.machine.variability import jitter_factor
from repro.sim import Simulator, Timeout
from repro.util.validation import require, require_nonnegative


class CpuCore:
    """One CPU core as a DES device."""

    def __init__(
        self,
        sim: Simulator,
        spec: CPUSpec,
        index: int,
        static_factor: float = 1.0,
        jitter_sigma: float = 0.0,
        l2_share_penalty: float = 0.0,
        transfer_busy: Optional[Callable[[], bool]] = None,
        rng: Optional[np.random.Generator] = None,
        name: str = "",
    ) -> None:
        require(0 <= index < spec.n_cores, f"core index {index} out of range")
        require(static_factor > 0, "static_factor must be > 0")
        require_nonnegative(jitter_sigma, "jitter_sigma")
        self.sim = sim
        self.spec = spec
        self.index = index
        self.static_factor = float(static_factor)
        self.jitter_sigma = float(jitter_sigma)
        self.l2_share_penalty = float(l2_share_penalty)
        self._transfer_busy = transfer_busy or (lambda: False)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.name = name or f"{spec.name}.core{index}"
        #: Set when this core shares an L2 cache with the transfer core.
        self.l2_shares_with_transfer = False
        self.busy_time = 0.0
        self.flops_done = 0.0

    def base_rate(self) -> float:
        """Sustained DGEMM rate before dynamic effects (flops/s)."""
        return self.spec.core_peak_flops * self.spec.dgemm_efficiency * self.static_factor

    def current_rate(self) -> float:
        """Deterministic rate right now (no jitter draw).

        Applies the L2-sharing penalty if this core's cache sibling is the
        element's transfer core and a transfer is in flight.
        """
        rate = self.base_rate()
        if self.l2_shares_with_transfer and self._transfer_busy():
            rate *= 1.0 - self.l2_share_penalty
        return rate

    def compute_time(self, flops: float, jitter: bool = True) -> float:
        """Duration of *flops* of DGEMM work starting now."""
        require_nonnegative(flops, "flops")
        if flops == 0.0:
            return 0.0
        rate = self.current_rate()
        if jitter:
            rate *= jitter_factor(self.jitter_sigma, self._rng)
        return flops / rate

    def compute(self, flops: float, jitter: bool = True) -> Timeout:
        """Run *flops* of work; the returned event fires on completion."""
        duration = self.compute_time(flops, jitter=jitter)
        self.busy_time += duration
        self.flops_done += flops
        return self.sim.timeout(duration, value=flops)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Busy fraction of this core over the run (or *elapsed* seconds)."""
        window = self.sim.now if elapsed is None else elapsed
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_time / window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CpuCore {self.name} rate={self.base_rate() / 1e9:.2f} GFLOPS>"
