"""The dual-GPU compute element: both RV770 chips of one HD4870x2.

Section III: "This GPU card consists of two independent RV770 chips ...
The two GPU chips can be used together or alone."  TianHe-1's Linpack pairs
one chip with one CPU socket (the paper's *compute element*); this module
models the road not taken — one CPU socket driving **both** chips — so the
tradeoff can be measured: two kernels' worth of compute behind one shared
PCIe x16 slot and one transfer thread.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.gpu import GPUDevice
from repro.machine.node import ComputeElement
from repro.machine.pcie import PCIeLink
from repro.machine.specs import ElementSpec
from repro.machine.variability import VariabilitySpec, thermal_drift
from repro.sim import Simulator
from repro.util.rng import RngStream


class DualGpuElement(ComputeElement):
    """A compute element whose card exposes both RV770 chips.

    Inherits all single-GPU behaviour (``.gpu`` is chip 0); adds ``.gpu2``
    (chip 1, slightly hotter — it sits downstream in the card's airflow) and
    ``.gpus``.  Both chips share the element's single :class:`PCIeLink`, so
    their transfers serialise — the physical reason the dual configuration
    scales sublinearly.
    """

    #: Chip 1 runs warmer than chip 0 on the shared card: extra drift depth.
    SECOND_CHIP_EXTRA_DRIFT = 0.02

    def __init__(
        self,
        sim: Simulator,
        spec: ElementSpec,
        variability: Optional[VariabilitySpec] = None,
        rng: Optional[RngStream] = None,
        static_factor: float = 1.0,
        drift_depth: Optional[float] = None,
        name: str = "dual-element",
        tracer=None,
    ) -> None:
        super().__init__(
            sim, spec, variability=variability, rng=rng, static_factor=static_factor,
            drift_depth=drift_depth, name=name, tracer=tracer,
        )
        var = self.variability
        stream = (rng if rng is not None else RngStream(0).child(name)).child("gpu2")
        depth2 = self.drift_depth + self.SECOND_CHIP_EXTRA_DRIFT
        self.gpu2 = GPUDevice(
            sim,
            spec.gpu,
            clock_mhz=spec.gpu_clock_mhz,
            static_factor=static_factor,
            jitter_sigma=var.gpu_jitter_sigma,
            drift=thermal_drift(depth2, var.thermal_drift_tau),
            rng=stream.generator(),
            name=f"{name}.gpu2",
        )

    @property
    def gpus(self) -> list[GPUDevice]:
        """Both chips of the HD4870x2."""
        return [self.gpu, self.gpu2]

    @property
    def peak_flops(self) -> float:
        """Element peak with both chips active."""
        return 2 * self.gpu.peak_flops + self.spec.cpu.peak_flops

    def initial_device_splits(self) -> list[float]:
        """Peak-ratio splits over [gpu0, gpu1, CPU-compute-cores]."""
        peaks = [g.peak_flops for g in self.gpus] + [self.spec.cpu_compute_peak]
        total = sum(peaks)
        return [p / total for p in peaks]
