"""Immutable hardware specifications.

Specs are plain frozen dataclasses so configurations can be constructed,
compared and embedded in test fixtures without touching the simulator.
Concrete TianHe-1 values live in :mod:`repro.machine.presets`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import (
    require,
    require_fraction,
    require_nonnegative,
    require_positive,
)


@dataclass(frozen=True)
class CPUSpec:
    """A multi-core host processor.

    ``l2_pairs`` records which cores share an L2 cache — on the Xeon E5450
    "four CPU cores is divided into two pairs and each pair shares the same
    L2 cache" (Section IV.A), which is why a core whose sibling does PCIe
    transfers slows down and the paper needs per-core (level-2) splits.
    """

    name: str
    n_cores: int
    core_peak_flops: float  # double-precision peak of one core
    dgemm_efficiency: float  # fraction of core peak a tuned DGEMM sustains (MKL)
    l2_pairs: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        require_positive(self.n_cores, "n_cores")
        require_positive(self.core_peak_flops, "core_peak_flops")
        require_fraction(self.dgemm_efficiency, "dgemm_efficiency")
        for pair in self.l2_pairs:
            require(len(pair) == 2, f"l2 pair must have 2 cores, got {pair}")
            for core in pair:
                require(0 <= core < self.n_cores, f"l2 pair core {core} out of range")

    @property
    def peak_flops(self) -> float:
        """Whole-socket double-precision peak."""
        return self.n_cores * self.core_peak_flops

    def l2_sibling(self, core: int) -> int | None:
        """The core sharing an L2 with *core*, or None."""
        for a, b in self.l2_pairs:
            if core == a:
                return b
            if core == b:
                return a
        return None


@dataclass(frozen=True)
class GPUSpec:
    """A GPU accelerator chip (one RV770 of the HD4870x2 card).

    The double-precision peak scales linearly with the core clock; the paper
    runs at the standard 750 MHz for single-element tests and downclocks to
    575 MHz for the full-system run (Section VI.A).  DGEMM kernel efficiency
    follows a saturating curve in the *workload* (flop count) — the paper's
    own design choice: "the performance can be indexed only by the workload"
    (Section IV.C).
    """

    name: str
    ref_clock_mhz: float
    peak_flops_at_ref: float  # DP peak at ref_clock_mhz
    ref_mem_clock_mhz: float
    local_memory_bytes: float
    max_texture_dim: int  # max rows/cols of one 2-D allocation (8192 on RV770)
    eff_max: float  # asymptotic DGEMM kernel efficiency
    w_half: float  # workload (flops) at which efficiency reaches eff_max/2
    kernel_launch_overhead: float  # seconds per kernel invocation

    def __post_init__(self) -> None:
        require_positive(self.ref_clock_mhz, "ref_clock_mhz")
        require_positive(self.peak_flops_at_ref, "peak_flops_at_ref")
        require_positive(self.ref_mem_clock_mhz, "ref_mem_clock_mhz")
        require_positive(self.local_memory_bytes, "local_memory_bytes")
        require_positive(self.max_texture_dim, "max_texture_dim")
        require_fraction(self.eff_max, "eff_max")
        require_positive(self.w_half, "w_half")
        require_nonnegative(self.kernel_launch_overhead, "kernel_launch_overhead")

    def peak_flops(self, clock_mhz: float | None = None) -> float:
        """DP peak at the given core clock (defaults to the reference clock)."""
        clock = self.ref_clock_mhz if clock_mhz is None else clock_mhz
        require_positive(clock, "clock_mhz")
        return self.peak_flops_at_ref * clock / self.ref_clock_mhz


@dataclass(frozen=True)
class PCIeSpec:
    """The CPU<->GPU data path (Section V.A).

    Data crosses two hops: host memory <-> PCIe buffer (slow, ~hundreds of
    MB/s pageable) and PCIe buffer <-> GPU local memory (fast, 4-8 GB/s on
    PCIe 2.0).  Pinned (page-locked) memory eliminates the pageable copy but
    is limited (4 MB at a time under CAL), so its *effective* host-side
    bandwidth sits between the two.
    """

    pageable_bw: float  # host mem <-> PCIe buffer, pageable path (B/s)
    pinned_bw: float  # effective host-side bandwidth via pinned chunks (B/s)
    gpu_bw: float  # PCIe buffer <-> GPU local memory (B/s)
    latency: float  # per-transfer setup latency (s)
    pinned_chunk_bytes: float  # max pinned allocation at one time (4 MB for CAL)

    def __post_init__(self) -> None:
        require_positive(self.pageable_bw, "pageable_bw")
        require_positive(self.pinned_bw, "pinned_bw")
        require_positive(self.gpu_bw, "gpu_bw")
        require_nonnegative(self.latency, "latency")
        require_positive(self.pinned_chunk_bytes, "pinned_chunk_bytes")
        require(
            self.pinned_bw >= self.pageable_bw,
            "pinned path must not be slower than the pageable path",
        )

    def host_bw(self, pinned: bool) -> float:
        """Host-side hop bandwidth for the chosen allocation type."""
        return self.pinned_bw if pinned else self.pageable_bw


@dataclass(frozen=True)
class InterconnectSpec:
    """Node-to-node network (TianHe-1: two-level QDR InfiniBand switches)."""

    bandwidth: float  # per-port bytes/s
    latency: float  # end-to-end small-message latency (s)

    def __post_init__(self) -> None:
        require_positive(self.bandwidth, "bandwidth")
        require_nonnegative(self.latency, "latency")


@dataclass(frozen=True)
class ElementSpec:
    """One *compute element*: one CPU socket + one GPU chip + their PCIe path.

    ``transfer_core`` is the CPU core dedicated to CPU<->GPU communication
    (Section IV.C: "a CPU core is dedicated to transferring data ... and
    other three cores are involved in the matrix-matrix multiply").
    """

    cpu: CPUSpec
    gpu: GPUSpec
    pcie: PCIeSpec
    gpu_clock_mhz: float
    transfer_core: int = 0

    def __post_init__(self) -> None:
        require_positive(self.gpu_clock_mhz, "gpu_clock_mhz")
        require(
            0 <= self.transfer_core < self.cpu.n_cores,
            f"transfer_core {self.transfer_core} out of range for {self.cpu.n_cores} cores",
        )

    @property
    def compute_core_indices(self) -> tuple[int, ...]:
        """CPU cores that do math (everything except the transfer core)."""
        return tuple(i for i in range(self.cpu.n_cores) if i != self.transfer_core)

    @property
    def peak_flops(self) -> float:
        """Element peak = GPU peak at the configured clock + whole CPU peak.

        For the TianHe-1 E5540 element at 750 MHz this is 280.5 GFLOPS
        (Section IV.A).
        """
        return self.gpu.peak_flops(self.gpu_clock_mhz) + self.cpu.peak_flops

    @property
    def cpu_compute_peak(self) -> float:
        """Peak of the CPU cores that participate in computation."""
        return len(self.compute_core_indices) * self.cpu.core_peak_flops

    @property
    def initial_gsplit(self) -> float:
        """The paper's initial GPU fraction P'_G / (P'_G + P'_C) ≈ 0.889."""
        gpu_peak = self.gpu.peak_flops(self.gpu_clock_mhz)
        return gpu_peak / (gpu_peak + self.cpu_compute_peak)


@dataclass(frozen=True)
class NodeSpec:
    """A TianHe-1 compute node: two compute elements sharing one IB port."""

    elements: tuple[ElementSpec, ...]
    shared_memory_bytes: float

    def __post_init__(self) -> None:
        require(len(self.elements) >= 1, "a node needs at least one element")
        require_positive(self.shared_memory_bytes, "shared_memory_bytes")

    @property
    def peak_flops(self) -> float:
        return sum(e.peak_flops for e in self.elements)


@dataclass(frozen=True)
class ClusterSpec:
    """The machine-room view: cabinets of nodes plus the interconnect.

    ``node_specs`` maps contiguous node-index ranges to a NodeSpec so mixed
    populations (TianHe-1's 2048 E5540 nodes + 512 E5450 nodes) are
    expressible without 2560 objects.
    """

    name: str
    cabinets: int
    nodes_per_cabinet: int
    node_specs: tuple[tuple[int, NodeSpec], ...]  # (first_node_index, spec), sorted
    interconnect: InterconnectSpec
    variability: "object" = field(default=None, repr=False)  # VariabilitySpec; late-bound

    def __post_init__(self) -> None:
        require_positive(self.cabinets, "cabinets")
        require_positive(self.nodes_per_cabinet, "nodes_per_cabinet")
        require(len(self.node_specs) >= 1, "need at least one node spec range")
        starts = [s for s, _ in self.node_specs]
        require(starts == sorted(starts) and starts[0] == 0, "node_specs ranges must start at 0 and be sorted")

    @property
    def total_nodes(self) -> int:
        return self.cabinets * self.nodes_per_cabinet

    @property
    def elements_per_node(self) -> int:
        return len(self.node_specs[0][1].elements)

    @property
    def total_elements(self) -> int:
        return self.total_nodes * self.elements_per_node

    def node_spec(self, node_index: int) -> NodeSpec:
        """The NodeSpec governing *node_index*."""
        require(0 <= node_index < self.total_nodes, f"node index {node_index} out of range")
        chosen = self.node_specs[0][1]
        for start, spec in self.node_specs:
            if node_index >= start:
                chosen = spec
            else:
                break
        return chosen

    def element_spec(self, element_index: int) -> ElementSpec:
        """The ElementSpec for global element *element_index*."""
        epn = self.elements_per_node
        node = self.node_spec(element_index // epn)
        return node.elements[element_index % epn]

    @property
    def peak_flops(self) -> float:
        """Aggregate peak over all compute nodes."""
        total = 0.0
        for i in range(len(self.node_specs)):
            start = self.node_specs[i][0]
            end = self.node_specs[i + 1][0] if i + 1 < len(self.node_specs) else self.total_nodes
            total += (end - start) * self.node_specs[i][1].peak_flops
        return total
