"""Pluggable scheduling: the registry, the scheduler zoo, and task DAGs.

The subsystem has three layers:

* **Protocol + registry** — :class:`~repro.sched.base.Scheduler`,
  :func:`register`, :func:`create`, :func:`names`, plus the ambient
  :func:`use`/:func:`current` context mirroring :mod:`repro.exec.policy`
  and :mod:`repro.obs`.
* **The zoo** — the paper's mappers (``adaptive``, ``static``, ``qilin``,
  ``gpu_only``, ``cpu_only``) in :mod:`repro.sched.mappers`, and the
  PAPERS.md extensions ``heft``, ``work_stealing`` (XKaapi-style), and
  ``hesp`` (partition search).
* **Task-DAG substrate** — :mod:`repro.sched.dag`,
  :mod:`repro.sched.devices`, :mod:`repro.sched.workloads`, and the
  event-driven executor :mod:`repro.sched.simulate`, raced head-to-head by
  ``benchmarks/bench_tournament.py``.

``python -m repro.sched list`` prints the registry.  Attribute access is
lazy (PEP 562) so importing :mod:`repro.sched` stays cheap and free of
import cycles; the legacy homes under :mod:`repro.core` re-export from
here.
"""

from __future__ import annotations

_LAZY = {
    # base / registry
    "Scheduler": ("repro.sched.base", "Scheduler"),
    "TaskRecord": ("repro.sched.base", "TaskRecord"),
    "SchedulerInfo": ("repro.sched.registry", "SchedulerInfo"),
    "DEFAULT_SCHEDULER": ("repro.sched.registry", "DEFAULT_SCHEDULER"),
    "register": ("repro.sched.registry", "register"),
    "names": ("repro.sched.registry", "names"),
    "aliases": ("repro.sched.registry", "aliases"),
    "canonical_name": ("repro.sched.registry", "canonical_name"),
    "get": ("repro.sched.registry", "get"),
    "create": ("repro.sched.registry", "create"),
    "resolve_name": ("repro.sched.registry", "resolve_name"),
    "describe": ("repro.sched.registry", "describe"),
    "use": ("repro.sched.registry", "use"),
    "current": ("repro.sched.registry", "current"),
    # HPL builds
    "CONFIGURATIONS": ("repro.sched.builds", "CONFIGURATIONS"),
    "CONFIG_LABELS": ("repro.sched.builds", "CONFIG_LABELS"),
    "HPL_BUILDS": ("repro.sched.builds", "HPL_BUILDS"),
    "hpl_build": ("repro.sched.builds", "hpl_build"),
    "resolve_hpl_build": ("repro.sched.builds", "resolve_hpl_build"),
    # DAG substrate
    "DagTask": ("repro.sched.dag", "DagTask"),
    "TaskGraph": ("repro.sched.dag", "TaskGraph"),
    "Device": ("repro.sched.devices", "Device"),
    "DeviceSet": ("repro.sched.devices", "DeviceSet"),
    "Workload": ("repro.sched.workloads", "Workload"),
    "standard_workloads": ("repro.sched.workloads", "standard_workloads"),
    "DagResult": ("repro.sched.simulate", "DagResult"),
    "SimState": ("repro.sched.simulate", "SimState"),
    "execute": ("repro.sched.simulate", "execute"),
    # split machinery (moved from repro.core)
    "AdaptiveMapper": ("repro.sched.adaptive", "AdaptiveMapper"),
    "Observation": ("repro.sched.adaptive", "Observation"),
    "StaticMapper": ("repro.sched.static_map", "StaticMapper"),
    "QilinMapper": ("repro.sched.qilin", "QilinMapper"),
    "SplitDatabase": ("repro.sched.split", "SplitDatabase"),
    "CoreSplitDatabase": ("repro.sched.split", "CoreSplitDatabase"),
    # persistence
    "save_mapper": ("repro.sched.persistence", "save_mapper"),
    "load_mapper": ("repro.sched.persistence", "load_mapper"),
    "load_named": ("repro.sched.persistence", "load_named"),
    "mapper_state": ("repro.sched.persistence", "mapper_state"),
    "restore_mapper": ("repro.sched.persistence", "restore_mapper"),
    "restore_named": ("repro.sched.persistence", "restore_named"),
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.sched' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY))
