"""HeSP-style joint partition-size + scheduling search.

Models the core idea of the HeSP framework (arXiv 1602.05510): on a
heterogeneous machine the task *granularity* is itself a scheduling
decision — coarse tiles feed the GPU efficiently but starve the CPUs of
parallelism; fine tiles do the opposite.  HeSP therefore simulates each
candidate partitioning of a workload and commits to the one with the best
predicted makespan.

:meth:`HespScheduler.choose_variant` runs that search over
``workload.variants(devices)`` using an internal greedy
earliest-finish-time list scheduler as the placement engine (HeSP's own
inner scheduler is a simple list heuristic; the search, not the placement,
is its contribution).  Execution then uses the same greedy engine, so the
simulated prediction and the tournament run agree exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.sched.base import Scheduler
from repro.sched.registry import SchedulerInfo, register


class _GreedyEft(Scheduler):
    """Internal placement engine: first ready task to its best free device."""

    name = "_greedy_eft"
    supports_dag = True

    def next_assignment(self, state) -> Optional[tuple[str, int]]:
        free = state.free_devices
        if not free or not state.ready:
            return None
        task_id = state.ready[0]
        best = min(
            free, key=lambda d: (state.completion_estimate(task_id, d), d.index)
        )
        return task_id, best.index


class HespScheduler(_GreedyEft):
    """Partition-size search (simulate every variant) + greedy placement."""

    name = "hesp"
    description = "HeSP-style partition search: simulate tile-size variants, keep the best"
    adapts_at_runtime = False
    source = "extension"
    supports_hpl = False
    supports_dag = True

    def __init__(self) -> None:
        #: workload name -> chosen variant graph name (for reports/persistence).
        self.chosen: dict[str, str] = {}

    def choose_variant(self, workload, devices):
        """Simulate every granularity of *workload*; return the fastest graph."""
        from repro.sched.simulate import execute

        best_graph, best_makespan = None, None
        for graph in workload.variants(devices):
            result = execute(graph, devices, _GreedyEft())
            if best_makespan is None or result.makespan < best_makespan - 1e-12:
                best_graph, best_makespan = graph, result.makespan
        if best_graph is not None:
            self.chosen[workload.name] = best_graph.name
        return best_graph

    def state_dict(self) -> dict:
        return {"chosen": dict(self.chosen)}

    def load_state(self, state: dict) -> None:
        self.chosen = dict(state.get("chosen", {}))


register(
    SchedulerInfo(
        name="hesp",
        description=HespScheduler.description,
        factory=HespScheduler,
        source="extension",
        supports_dag=True,
    )
)
