"""Event-driven executor for task DAGs on a heterogeneous device set.

:func:`execute` drives a :class:`~repro.sched.base.Scheduler` through the
pull protocol of :meth:`~repro.sched.base.Scheduler.next_assignment`: while
devices are free, the scheduler is asked for ``(task_id, device_index)``
pairs; returning ``None`` advances virtual time to the next task completion
(and feeds the finished task back through
:meth:`~repro.sched.base.Scheduler.observe`).  The executor owns timing and
data movement — a task whose dependency outputs live on another memory
domain pays the PCIe transfer before it starts — so plan-based (HEFT, HeSP)
and reactive (adaptive, work-stealing) schedulers compete on identical
physics.

Assignment legality is enforced here, not trusted: unknown or not-ready
tasks, busy devices, and devices already lost to a ``GpuDropout`` fault all
raise immediately.  A device that dies *mid-task* loses the task — it is
re-queued and the simulation clock jumps to the death time, modeling the
detect-and-resubmit recovery of Section VI.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.sched.base import Scheduler, TaskRecord
from repro.sched.dag import TaskGraph
from repro.sched.devices import Device, DeviceSet
from repro.util.validation import require


@dataclass
class SimState:
    """The executor's live state, as seen by a scheduler's decision hook."""

    graph: TaskGraph
    device_set: DeviceSet
    time: float = 0.0
    #: Dispatchable task ids, deterministic (dependency-completion) order.
    ready: tuple[str, ...] = ()
    #: device index -> task id currently running there.
    busy: dict = field(default_factory=dict)
    #: task id -> memory domain where its output currently lives.
    location: dict = field(default_factory=dict)
    records: list = field(default_factory=list)

    @property
    def devices(self) -> tuple[Device, ...]:
        """Devices still alive at the current virtual time."""
        return self.device_set.alive(self.time)

    @property
    def free_devices(self) -> tuple[Device, ...]:
        """Alive devices with no task running."""
        return tuple(d for d in self.devices if d.index not in self.busy)

    def comm_cost(self, task_id: str, device: Device) -> float:
        """Transfer time to stage *task_id*'s inputs onto *device*."""
        task = self.graph.task(task_id)
        total = 0.0
        for dep in task.deps:
            src = self.location.get(dep, "host")
            total += self.device_set.comm_time(
                self.graph.task(dep).out_bytes, src, device.memory_domain
            )
        return total

    def completion_estimate(self, task_id: str, device: Device) -> float:
        """Modeled finish time of dispatching *task_id* on *device* now."""
        task = self.graph.task(task_id)
        return self.time + self.comm_cost(task_id, device) + device.exec_time(task.flops)


@dataclass(frozen=True)
class DagResult:
    """One scheduler's run over one graph on one device set."""

    graph_name: str
    scheduler: str
    makespan: float
    total_flops: float
    records: tuple[TaskRecord, ...]

    @property
    def throughput(self) -> float:
        """Sustained flop rate over the whole run (flops / makespan)."""
        return self.total_flops / self.makespan if self.makespan > 0 else 0.0

    @property
    def gpu_task_fraction(self) -> float:
        """Fraction of tasks that ran on a GPU."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.device_kind == "gpu") / len(self.records)

    def busy_seconds(self) -> dict[int, float]:
        """Per-device busy time (comm + execution)."""
        busy: dict[int, float] = {}
        for r in self.records:
            busy[r.device_index] = busy.get(r.device_index, 0.0) + (r.finish - r.start)
        return busy

    def summary(self) -> dict:
        return {
            "graph": self.graph_name,
            "scheduler": self.scheduler,
            "makespan_s": self.makespan,
            "throughput_gflops": self.throughput / 1e9,
            "tasks": len(self.records),
            "gpu_task_fraction": self.gpu_task_fraction,
        }


def execute(graph: TaskGraph, devices: DeviceSet, scheduler: Scheduler) -> DagResult:
    """Run *graph* on *devices* under *scheduler*; returns the timed result."""
    require(scheduler.supports_dag, f"scheduler {scheduler.name!r} is HPL-only")
    scheduler.prepare(graph, devices)
    state = SimState(graph=graph, device_set=devices)

    indeg = {t.id: len(t.deps) for t in graph.tasks}
    ready: list[str] = [tid for tid in graph.topo_order() if indeg[tid] == 0]
    state.ready = tuple(ready)
    #: min-heap of (finish_time, seq, task_id, device_index, start, comm).
    running: list[tuple[float, int, str, int, float, float]] = []
    seq = 0
    done: set[str] = set()

    while len(done) < len(graph.tasks):
        # -- dispatch phase: drain the scheduler while it has moves -------
        while state.ready and state.free_devices:
            assignment = scheduler.next_assignment(state)
            if assignment is None:
                break
            task_id, dev_idx = assignment
            require(task_id in state.ready,
                    f"{scheduler.name} assigned non-ready task {task_id!r}")
            require(0 <= dev_idx < len(devices.devices),
                    f"{scheduler.name} assigned unknown device {dev_idx}")
            device = devices.devices[dev_idx]
            require(dev_idx not in state.busy,
                    f"{scheduler.name} double-booked device {device.name}")
            require(device.alive_at(state.time),
                    f"{scheduler.name} assigned {task_id!r} to dead device {device.name}")
            task = graph.task(task_id)
            comm = state.comm_cost(task_id, device)
            finish = state.time + comm + device.exec_time(task.flops)
            heapq.heappush(running, (finish, seq, task_id, dev_idx, state.time, comm))
            seq += 1
            state.busy[dev_idx] = task_id
            ready.remove(task_id)
            state.ready = tuple(ready)

        if not running:
            raise RuntimeError(
                f"scheduler {scheduler.name!r} stalled on {graph.name}: "
                f"{len(ready)} tasks ready, nothing running"
            )

        # -- completion phase: advance to the next event ------------------
        finish, _, task_id, dev_idx, start, comm = heapq.heappop(running)
        device = devices.devices[dev_idx]
        del state.busy[dev_idx]
        if finish > device.alive_until:
            # The device died mid-task: the work is lost and re-queued; the
            # clock advances to the death so `alive()` now excludes it.
            state.time = max(state.time, device.alive_until)
            ready.insert(0, task_id)
            state.ready = tuple(ready)
            continue
        state.time = finish
        done.add(task_id)
        task = graph.task(task_id)
        state.location[task_id] = device.memory_domain
        record = TaskRecord(
            task_id=task_id, kind=task.kind, flops=task.flops,
            device_index=dev_idx, device_kind=device.kind,
            start=start, finish=finish, comm_time=comm,
        )
        state.records.append(record)
        scheduler.observe(record)
        for succ in graph.successors(task_id):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                ready.append(succ)
        state.ready = tuple(ready)

    return DagResult(
        graph_name=graph.name,
        scheduler=scheduler.name,
        makespan=state.time,
        total_flops=graph.total_flops,
        records=tuple(state.records),
    )
