"""Static peak-ratio mapping — the baseline the paper improves on.

This is the Fatica-style approach (reference [17] of the paper): the
CPU/GPU split is fixed at the *peak performance* ratio and the CPU share is
divided evenly among the compute cores.  It never reacts to measured rates,
so it carries both error sources the paper identifies: the GPU's effective
rate is workload-dependent (not its peak), and the cores are not equal.
"""

from __future__ import annotations

import numpy as np

from repro.sched.adaptive import Observation
from repro.util.validation import require, require_fraction


class StaticMapper:
    """Fixed GSplit, even CSplits, no run-time adaptation."""

    name = "static"
    adapts_at_runtime = False

    def __init__(self, gsplit: float, n_cores: int) -> None:
        require_fraction(gsplit, "gsplit")
        require(n_cores >= 1, "n_cores must be >= 1")
        self._gsplit = float(gsplit)
        self._csplits = np.full(n_cores, 1.0 / n_cores)
        self.updates = 0  # stays 0 forever; present for interface parity

    def gsplit(self, workload: float) -> float:
        """The same split for every workload — the defining limitation."""
        return self._gsplit

    def csplits(self) -> np.ndarray:
        return self._csplits.copy()

    def observe(self, obs: Observation) -> None:
        """Measurements are ignored (static)."""

    @property
    def total_overhead_seconds(self) -> float:
        return 0.0
