"""XKaapi-style locality-aware work stealing for CPU/GPU task DAGs.

Models the scheduler of Gautier et al., *XKaapi: A Runtime System for
Data-Flow Task Programming on Heterogeneous Architectures* (arXiv
1402.6601, IPDPS'13): each processing unit owns a queue fed by *data
affinity* — a ready task is attached to the device class whose memory
already holds the bulk of its inputs, so dispatching it there avoids the
PCIe hop.  An idle device with an empty queue **steals**, and the steal
heuristic is heterogeneous: a GPU steals the *largest* ready task (big
kernels amortise its launch overhead), a CPU core steals the *smallest*
(small kernels would waste the GPU).

Everything is deterministic — victim order, steal choice, and tie-breaks
follow ready-list order — so tournament results are byte-reproducible.
"""

from __future__ import annotations

from typing import Optional

from repro.sched.base import Scheduler
from repro.sched.registry import SchedulerInfo, register


class WorkStealingScheduler(Scheduler):
    """Per-device affinity queues with size-aware heterogeneous stealing."""

    name = "work_stealing"
    description = "XKaapi-style affinity work stealing (locality + size-aware steals)"
    adapts_at_runtime = True
    source = "extension"
    supports_hpl = False
    supports_dag = True

    def _dominant_domain(self, state, task_id: str) -> str:
        """The memory domain holding the most input bytes for *task_id*."""
        task = state.graph.task(task_id)
        weight: dict[str, float] = {}
        for dep in task.deps:
            domain = state.location.get(dep, "host")
            weight[domain] = weight.get(domain, 0.0) + state.graph.task(dep).out_bytes
        if not weight:
            return "host"  # entry tasks: inputs start in host memory
        return max(sorted(weight), key=lambda d: weight[d])

    def next_assignment(self, state) -> Optional[tuple[str, int]]:
        free = state.free_devices
        if not free or not state.ready:
            return None
        # Serve the lowest-indexed free device first (deterministic victim
        # order); each device drains its affinity queue before stealing.
        device = free[0]
        affine = [
            t for t in state.ready
            if self._dominant_domain(state, t) == device.memory_domain
        ]
        if affine:
            return affine[0], device.index
        # Steal: size-aware. GPUs take the largest ready task, CPUs the
        # smallest — first occurrence wins ties, keeping runs deterministic.
        flops = {t: state.graph.task(t).flops for t in state.ready}
        if device.kind == "gpu":
            victim = max(state.ready, key=lambda t: flops[t])
        else:
            victim = min(state.ready, key=lambda t: flops[t])
        return victim, device.index


register(
    SchedulerInfo(
        name="work_stealing",
        description=WorkStealingScheduler.description,
        factory=WorkStealingScheduler,
        source="extension",
        supports_dag=True,
        adapts_at_runtime=True,
    )
)
