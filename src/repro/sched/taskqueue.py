"""Task-queue construction for GPU DGEMM (Section V.C).

Matrices exceeding the GPU's 8192x8192 texture limit are split: A1 by rows,
B by columns (Fig. 5), and — for square DGEMMs whose K also exceeds the
limit — along K as well, with C blocks accumulating on the GPU across the K
chunks.  The resulting tasks are ordered by the "bounce corner turn"
(serpentine) so that consecutive tasks share an operand block; together with
a residency plan over the GPU's local memory this decides which blocks must
actually cross the PCIe bus ("When T1 is executed, matrix A1 does not need
to be transferred, so neither do B2 for T3 and A2 for T2").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.units import DOUBLE_BYTES
from repro.util.validation import require, require_positive


def split_extents(total: int, limit: int) -> list[tuple[int, int]]:
    """Split ``total`` into near-equal contiguous blocks of at most ``limit``.

    Returns ``(start, size)`` pairs.  Near-equal blocks (rather than
    limit-sized blocks plus a remainder) keep the pipeline stages balanced.
    """
    require(total >= 0, "total must be >= 0")
    require_positive(limit, "limit")
    if total == 0:
        return []
    n_blocks = -(-total // limit)  # ceil
    base, extra = divmod(total, n_blocks)
    out: list[tuple[int, int]] = []
    start = 0
    for i in range(n_blocks):
        size = base + (1 if i < extra else 0)
        out.append((start, size))
        start += size
    return out


def bounce_corner_turn_order(rows: int, cols: int) -> list[tuple[int, int]]:
    """Serpentine task order over the (row, col) block grid.

    For the paper's 2x2 example this yields (0,0), (0,1), (1,1), (1,0) —
    i.e. T0, T1, T3, T2 — so each step shares either its A row block or its
    B column block with the previous step.
    """
    require(rows >= 0 and cols >= 0, "grid dimensions must be >= 0")
    order: list[tuple[int, int]] = []
    for i in range(rows):
        cols_iter = range(cols) if i % 2 == 0 else range(cols - 1, -1, -1)
        for j in cols_iter:
            order.append((i, j))
    return order


@dataclass
class GpuTask:
    """One pipeline task: the (i, j, p) block product ``C_ij += A_ip @ B_pj``."""

    index: int
    row: int
    col: int
    kblock: int
    row_start: int
    col_start: int
    k_start: int
    m: int
    n: int
    k: int
    is_first_k: bool
    is_last_k: bool
    send_a: bool = True
    send_b: bool = True
    send_c_in: bool = False

    @property
    def a_bytes(self) -> int:
        return self.m * self.k * DOUBLE_BYTES

    @property
    def b_bytes(self) -> int:
        return self.k * self.n * DOUBLE_BYTES

    @property
    def c_bytes(self) -> int:
        return self.m * self.n * DOUBLE_BYTES

    @property
    def input_bytes(self) -> int:
        """Bytes this task actually moves host -> GPU."""
        total = 0
        if self.send_a:
            total += self.a_bytes
        if self.send_b:
            total += self.b_bytes
        if self.send_c_in:
            total += self.c_bytes
        return total

    @property
    def output_bytes(self) -> int:
        """Bytes moved GPU -> host (C block, once, after the last K chunk)."""
        return self.c_bytes if self.is_last_k else 0

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k


@dataclass
class TaskQueue:
    """An ordered task list plus its transfer accounting."""

    tasks: list[GpuTask]
    grid: tuple[int, int, int]  # (row blocks, col blocks, K blocks)
    input_bytes: int = 0
    output_bytes: int = 0
    naive_input_bytes: int = 0
    resends: int = 0
    #: Operand touches satisfied by a block already resident on the GPU —
    #: the wins the bounce-corner-turn ordering exists to create.
    reuse_hits: int = 0

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def bytes_saved_fraction(self) -> float:
        """Input traffic saved by reuse versus re-sending every operand."""
        if self.naive_input_bytes == 0:
            return 0.0
        return 1.0 - self.input_bytes / self.naive_input_bytes


def effective_block_limits(
    m1: int,
    n: int,
    k: int,
    texture_limit: int,
    gpu_memory_bytes: Optional[float],
    eo_block_rows: int,
) -> tuple[int, int, int]:
    """Shrink the per-axis block limits until a task's working set fits.

    The working set of one task is its A block, its B block (streamed in
    half-width strips, as the kernel consumes B column-wise), and either the
    CB0/CB1 output buffers (single-K case) or a full resident C block (K is
    split and C accumulates on the GPU).  Starting from the texture limit,
    the largest axis limit is halved until this fits local memory — so an
    8192-square task (the paper's single-task boundary) fits in the RV770's
    1 GB, while larger calls split.
    """
    limits = [texture_limit, texture_limit, texture_limit]  # rows, cols, K

    def working_set(rl: int, cl: int, kl: int) -> float:
        mb, nb, kb = min(m1, rl), min(n, cl), min(k, kl)
        multi_k = k > kl
        c_bytes = (
            mb * nb * DOUBLE_BYTES
            if multi_k
            else 2 * min(eo_block_rows, mb) * nb * DOUBLE_BYTES
        )
        return (mb * kb + kb * nb / 2.0) * DOUBLE_BYTES + c_bytes

    if gpu_memory_bytes is not None:
        for _ in range(64):
            if working_set(*limits) <= gpu_memory_bytes or max(limits) <= 1:
                break
            limits[limits.index(max(limits))] = max(1, max(limits) // 2)
    return limits[0], limits[1], limits[2]


def build_task_queue(
    m1: int,
    n: int,
    k: int,
    texture_limit: int = 8192,
    reuse: bool = True,
    beta_nonzero: bool = True,
    gpu_memory_bytes: Optional[float] = None,
    eo_block_rows: int = 512,
    telemetry=None,
) -> TaskQueue:
    """Split the GPU portion ``C1[m1,n] (+)= A1[m1,k] @ B[k,n]`` into tasks.

    ``reuse=False`` models a vendor library that re-stages every operand per
    task; ``reuse=True`` applies bounce-corner-turn ordering with an LRU
    residency plan over ``gpu_memory_bytes`` (default: unlimited).  An
    optional :class:`repro.obs.Telemetry` receives queue-construction
    counters (tasks, reuse hits, resends, staged vs naive bytes).
    """
    require(m1 >= 0 and n >= 0 and k >= 0, "dimensions must be >= 0")
    row_limit, col_limit, k_limit = effective_block_limits(
        m1, n, k, texture_limit, gpu_memory_bytes, eo_block_rows
    )
    row_blocks = split_extents(m1, row_limit)
    col_blocks = split_extents(n, col_limit)
    k_blocks = split_extents(k, k_limit)
    if not row_blocks or not col_blocks or not k_blocks:
        return TaskQueue(tasks=[], grid=(len(row_blocks), len(col_blocks), len(k_blocks)))

    order = (
        bounce_corner_turn_order(len(row_blocks), len(col_blocks))
        if reuse
        else [(i, j) for i in range(len(row_blocks)) for j in range(len(col_blocks))]
    )

    tasks: list[GpuTask] = []
    resident: dict[tuple, int] = {}  # block key -> bytes, insertion-ordered (LRU)
    resends = 0
    reuse_hits = 0

    def touch(key: tuple, nbytes: int, pinned_keys: set) -> bool:
        """Ensure *key* is resident; returns True if it had to be sent."""
        nonlocal resends, reuse_hits
        if key in resident:
            resident[key] = resident.pop(key)  # refresh LRU position
            reuse_hits += 1
            return False
        if gpu_memory_bytes is not None:
            budget = gpu_memory_bytes
            while resident and sum(resident.values()) + nbytes > budget:
                victim = next((kk for kk in resident if kk not in pinned_keys), None)
                if victim is None:
                    break
                del resident[victim]
        was_ever_sent = key in sent_once
        if was_ever_sent:
            resends += 1
        sent_once.add(key)
        resident[key] = nbytes
        return True

    sent_once: set[tuple] = set()
    index = 0
    multi_k = len(k_blocks) > 1
    for (i, j) in order:
        row_start, m = row_blocks[i]
        col_start, nn = col_blocks[j]
        # C_ij must be resident across all K chunks when K is split; with a
        # single K chunk the EO double buffer (2 x H x n) suffices instead.
        c_key = ("C", i, j)
        c_bytes = (
            m * nn * DOUBLE_BYTES if multi_k else 2 * min(eo_block_rows, m) * nn * DOUBLE_BYTES
        )
        pinned = {c_key}
        if gpu_memory_bytes is not None:
            resident[c_key] = c_bytes
        for p, (k_start, kk) in enumerate(k_blocks):
            a_key = ("A", i, p)
            b_key = ("B", p, j)
            pinned_now = pinned | {a_key, b_key}
            if reuse:
                send_a = touch(a_key, m * kk * DOUBLE_BYTES, pinned_now)
                send_b = touch(b_key, kk * nn * DOUBLE_BYTES, pinned_now)
            else:
                send_a = send_b = True
            task = GpuTask(
                index=index,
                row=i,
                col=j,
                kblock=p,
                row_start=row_start,
                col_start=col_start,
                k_start=k_start,
                m=m,
                n=nn,
                k=kk,
                is_first_k=(p == 0),
                is_last_k=(p == len(k_blocks) - 1),
                send_a=send_a,
                send_b=send_b,
                send_c_in=(p == 0 and beta_nonzero),
            )
            tasks.append(task)
            index += 1
        if gpu_memory_bytes is not None:
            resident.pop(c_key, None)

    queue = TaskQueue(
        tasks=tasks,
        grid=(len(row_blocks), len(col_blocks), len(k_blocks)),
        input_bytes=sum(t.input_bytes for t in tasks),
        output_bytes=sum(t.output_bytes for t in tasks),
        resends=resends,
        reuse_hits=reuse_hits,
    )
    # Naive traffic: every operand staged for every task it participates in.
    naive = sum(t.a_bytes + t.b_bytes for t in tasks)
    if beta_nonzero:
        naive += sum(t.c_bytes for t in tasks if t.is_first_k)
    queue.naive_input_bytes = naive
    if telemetry is not None:
        counter = telemetry.metrics.counter
        counter("taskqueue.queues", "task queues built").inc()
        counter("taskqueue.tasks", "GPU tasks created").inc(len(tasks))
        counter("taskqueue.reuse_hits", "operand touches served from residency").inc(reuse_hits)
        counter("taskqueue.resends", "operands evicted and re-staged").inc(resends)
        counter("taskqueue.input_bytes", "bytes staged host->GPU").inc(queue.input_bytes)
        counter("taskqueue.naive_input_bytes", "bytes a no-reuse library would stage").inc(naive)
    return queue
