"""Two-level adaptive task mapping (Section IV).

Level 1 (CPU vs GPU): look up GSplit in ``database_g`` by the DGEMM's flop
count; after execution compute the *measured* rates ``P_G = W_G / T_G`` and
``P_C = W_C / T_C`` (T_C is the slowest core — "the end time is the last who
finishes") and store ``GSplit' = P_G / (P_G + P_C)`` back into the bin.

Level 2 (between CPU cores): look up CSplit_i in ``database_c``; after
execution compute ``P_Ci = W_C * CSplit_i / T_Ci`` per core and store
``CSplit_i' = P_Ci / sum_j P_Cj``.

The run-time overhead of an update is "5 system calls to get time, 8
divisions, 3 database stores and several floating-point add operations" —
modeled explicitly so benchmarks can report it against DGEMM time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sched.split import CoreSplitDatabase, SplitDatabase
from repro.obs.telemetry import current as _ambient_telemetry
from repro.util.validation import require, require_fraction, require_nonnegative


@dataclass(frozen=True)
class Observation:
    """What the framework measures about one completed hybrid DGEMM.

    ``core_workloads[i]`` / ``core_times[i]`` describe compute core *i*'s
    share of the CPU portion; all quantities are host-visible (GPU time
    includes transfers, exactly as a host-side timer would see it).
    """

    workload: float  # whole-call W = 2*M*N*K
    gpu_workload: float
    gpu_time: float
    core_workloads: tuple[float, ...]
    core_times: tuple[float, ...]

    def __post_init__(self) -> None:
        require_nonnegative(self.workload, "workload")
        require_nonnegative(self.gpu_workload, "gpu_workload")
        require_nonnegative(self.gpu_time, "gpu_time")
        require(
            len(self.core_workloads) == len(self.core_times),
            "core_workloads and core_times must have equal length",
        )

    @property
    def cpu_workload(self) -> float:
        return float(sum(self.core_workloads))

    @property
    def cpu_time(self) -> float:
        """The CPU portion's completion time: the slowest core."""
        return float(max(self.core_times)) if self.core_times else 0.0


#: Cost model of one adaptive update (Section IV.C's overhead inventory).
TIME_SYSCALL_S = 1e-7
FLOP_OP_S = 2e-9
DB_STORE_S = 5e-8
UPDATE_SYSCALLS = 5
UPDATE_DIVISIONS = 8
UPDATE_STORES = 3
UPDATE_ADDS = 6


def update_overhead_seconds() -> float:
    """Modeled wall time of one two-level mapping update (~1 microsecond)."""
    return (
        UPDATE_SYSCALLS * TIME_SYSCALL_S
        + (UPDATE_DIVISIONS + UPDATE_ADDS) * FLOP_OP_S
        + UPDATE_STORES * DB_STORE_S
    )


class AdaptiveMapper:
    """The paper's two-level adaptive mapper.

    ``min_gsplit`` guards against permanent GPU starvation: the raw update
    rule maps a zero-work GPU to ``P_G = 0`` forever, so a bin that once
    reaches 0 could never recover if conditions changed.  The floor is tiny
    and configurable (set it to 0.0 for the literal paper rule).
    """

    name = "adaptive"
    adapts_at_runtime = True

    def __init__(
        self,
        initial_gsplit: float,
        n_cores: int,
        max_workload: float,
        n_bins: int = 64,
        min_gsplit: float = 0.01,
        min_csplit: float = 0.02,
        telemetry=None,
    ) -> None:
        require_fraction(initial_gsplit, "initial_gsplit")
        require_fraction(min_gsplit, "min_gsplit")
        require_fraction(min_csplit, "min_csplit")
        require(min_csplit * n_cores < 1.0, "min_csplit too large for the core count")
        self.database_g = SplitDatabase(n_bins, max_workload, initial_gsplit)
        self.database_c = CoreSplitDatabase(n_cores)
        self.min_gsplit = min_gsplit
        self.min_csplit = min_csplit
        self.updates = 0
        self.gpu_lost = False
        #: Optional :class:`repro.obs.Telemetry`; defaults to the ambient
        #: :func:`repro.obs.current` one (None outside an ``obs.use`` block).
        #: All hooks are guarded by ``is not None`` and never touch timing or
        #: RNG state, so splits are bit-identical with telemetry on, off, or
        #: attached mid-run.
        self.telemetry = telemetry if telemetry is not None else _ambient_telemetry()

    def attach_telemetry(self, telemetry) -> None:
        """Start (or stop, with None) publishing metrics for this mapper.

        Metric state is *not* replayed: counters and series describe what was
        observed while attached.  A restored mapper (see
        :mod:`repro.sched.persistence`) therefore starts its metrics from
        whatever the supplied registry holds — reset it explicitly via
        ``telemetry.metrics.reset()`` for a clean slate.
        """
        self.telemetry = telemetry

    # -- graceful degradation -----------------------------------------------------
    def notify_gpu_lost(self) -> None:
        """The GPU died: clamp GSplit to 0 until (if ever) it comes back.

        The split databases are left untouched — on
        :meth:`notify_gpu_restored` the mapper resumes from its learned
        state and re-converges from there, exactly as the paper's framework
        would after a driver restart.
        """
        self.gpu_lost = True
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "adaptive.gpu_loss_events", "GPU losses the mapper reacted to"
            ).inc()

    def notify_gpu_restored(self) -> None:
        """The GPU is back: resume the learned split databases."""
        self.gpu_lost = False

    # -- step 1: obtain the mappings -------------------------------------------
    def gsplit(self, workload: float) -> float:
        """Level-1 lookup: the fraction of *workload* to run on the GPU."""
        if self.gpu_lost:
            return 0.0
        if self.telemetry is not None:
            kind = "hit" if self.database_g.is_written(workload) else "miss"
            self.telemetry.metrics.counter(
                "adaptive.bin_lookups", "database_g lookups by bin freshness"
            ).inc(result=kind, bin=self.database_g.bin_index(workload))
        return self.database_g.lookup(workload)

    def csplits(self) -> np.ndarray:
        """Level-2 lookup: per-compute-core fractions of the CPU portion."""
        return self.database_c.lookup()

    # -- step 2: measure and write back --------------------------------------------
    def observe(self, obs: Observation) -> None:
        """Fold a completed execution's measurements into both databases."""
        if not self.gpu_lost:
            # A dead GPU measures P_G = 0; folding that in would overwrite
            # the learned splits the mapper resumes from on restoration.
            self._update_level1(obs)
        self._update_level2(obs)
        self.updates += 1
        if self.telemetry is not None:
            self._publish(obs)

    def _publish(self, obs: Observation) -> None:
        """Record one update's outcome (time series keyed by update index)."""
        metrics = self.telemetry.metrics
        metrics.counter("adaptive.updates", "two-level mapping updates").inc()
        metrics.counter(
            "adaptive.overhead_seconds", "modeled update overhead (Section IV.C)"
        ).inc(update_overhead_seconds())
        metrics.series("adaptive.gsplit", "stored GSplit per update").append(
            self.updates, self.database_g.lookup(obs.workload)
        )
        for i, csplit in enumerate(self.database_c.lookup()):
            metrics.series("adaptive.csplit", "stored CSplit_i per update").append(
                self.updates, float(csplit), core=i
            )

    def _update_level1(self, obs: Observation) -> None:
        p_g = obs.gpu_workload / obs.gpu_time if obs.gpu_time > 0 else 0.0
        cpu_time = obs.cpu_time
        p_c = obs.cpu_workload / cpu_time if cpu_time > 0 else 0.0
        if p_g + p_c <= 0.0:
            return  # nothing measurable this round
        new = p_g / (p_g + p_c)
        new = min(1.0, max(self.min_gsplit, new))
        self.database_g.store(obs.workload, new)

    def _update_level2(self, obs: Observation) -> None:
        if not obs.core_workloads or obs.cpu_workload <= 0.0:
            return
        rates = []
        for w_i, t_i in zip(obs.core_workloads, obs.core_times):
            if w_i > 0 and t_i > 0:
                rates.append(w_i / t_i)
            else:
                rates.append(0.0)
        total = sum(rates)
        if total <= 0.0 or any(r == 0.0 for r in rates):
            return  # a core measured nothing; keep the previous mapping
        new = floor_normalize(np.array(rates) / total, self.min_csplit)
        self.database_c.store(new)

    # -- bookkeeping ------------------------------------------------------------------
    @property
    def total_overhead_seconds(self) -> float:
        """Cumulative modeled mapping overhead over all updates."""
        return self.updates * update_overhead_seconds()


def floor_normalize(fractions: np.ndarray, floor: float) -> np.ndarray:
    """Normalise *fractions* to sum 1 while keeping each at least *floor*.

    Entries below the floor are pinned to it; the remainder is distributed
    among the rest proportionally (iterating in case that pushes more
    entries under).  Used by both split levels to prevent a device or core
    that once measured slow from being starved forever.
    """
    new = np.asarray(fractions, dtype=float)
    new = new / new.sum()
    if floor <= 0.0:
        return new
    require(floor * len(new) <= 1.0 + 1e-12, "floor too large for the entry count")
    low = new < floor
    for _ in range(len(new)):
        if not low.any() or low.all():
            break
        remainder = 1.0 - floor * low.sum()
        scaled = np.where(low, floor, new * remainder / new[~low].sum())
        newly_low = (~low) & (scaled < floor - 1e-15)
        new = scaled
        if not newly_low.any():
            break
        low = low | newly_low
    return new / new.sum()


def converged_gsplit(history: Sequence[float], tail: int = 5) -> float:
    """Mean of the last *tail* stored splits — a convergence summary for tests."""
    require(len(history) >= 1, "history is empty")
    values = list(history)[-tail:]
    return float(np.mean(values))
