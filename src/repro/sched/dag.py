"""General task graphs — the non-HPL workload substrate.

A :class:`TaskGraph` is a validated DAG of :class:`DagTask` nodes.  Tasks
carry a flop count and an output size in bytes; an edge ``(u, v)`` means
*v* consumes *u*'s output, so running them on different memory domains
costs a PCIe transfer (see :class:`~repro.sched.devices.DeviceSet`).

Graphs are deliberately plain data: generators live in
:mod:`repro.sched.workloads`, placement in the schedulers, and timing in
:mod:`repro.sched.simulate` — the separation HeSP-style partition search
relies on (one workload, many graph variants).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import require


@dataclass(frozen=True)
class DagTask:
    """One task: a kernel invocation with known cost and output size."""

    id: str
    kind: str  # kernel family, e.g. "potrf", "gemm", "conv"
    flops: float
    out_bytes: float
    deps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        require(self.flops >= 0, f"task {self.id}: flops must be >= 0")
        require(self.out_bytes >= 0, f"task {self.id}: out_bytes must be >= 0")


@dataclass(frozen=True)
class TaskGraph:
    """A validated DAG of tasks, with cached adjacency."""

    name: str
    tasks: tuple[DagTask, ...]
    #: Free-form description of the variant (e.g. tile size) for reports.
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        ids = [t.id for t in self.tasks]
        require(len(ids) == len(set(ids)), f"graph {self.name}: duplicate task ids")
        known = set(ids)
        for t in self.tasks:
            for dep in t.deps:
                require(
                    dep in known,
                    f"graph {self.name}: task {t.id} depends on unknown {dep!r}",
                )
        object.__setattr__(self, "_by_id", {t.id: t for t in self.tasks})
        succ: dict[str, list[str]] = {t.id: [] for t in self.tasks}
        for t in self.tasks:
            for dep in t.deps:
                succ[dep].append(t.id)
        object.__setattr__(self, "_succ", {k: tuple(v) for k, v in succ.items()})
        self.topo_order()  # raises on cycles

    def __len__(self) -> int:
        return len(self.tasks)

    def task(self, task_id: str) -> DagTask:
        return self._by_id[task_id]

    def successors(self, task_id: str) -> tuple[str, ...]:
        return self._succ[task_id]

    def predecessors(self, task_id: str) -> tuple[str, ...]:
        return self._by_id[task_id].deps

    def topo_order(self) -> tuple[str, ...]:
        """A deterministic topological order (Kahn, insertion-stable)."""
        indeg = {t.id: len(t.deps) for t in self.tasks}
        frontier = [t.id for t in self.tasks if indeg[t.id] == 0]
        order: list[str] = []
        while frontier:
            tid = frontier.pop(0)
            order.append(tid)
            for s in self._succ[tid]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    frontier.append(s)
        require(len(order) == len(self.tasks), f"graph {self.name}: cycle detected")
        return tuple(order)

    @property
    def total_flops(self) -> float:
        return sum(t.flops for t in self.tasks)

    @property
    def critical_path_flops(self) -> float:
        """Longest dependency chain, in flops (a lower bound on any schedule)."""
        longest: dict[str, float] = {}
        for tid in self.topo_order():
            t = self._by_id[tid]
            longest[tid] = t.flops + max(
                (longest[d] for d in t.deps), default=0.0
            )
        return max(longest.values(), default=0.0)
