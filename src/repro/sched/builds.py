"""HPL analytic builds per scheduler name (canonical names + legacy aliases).

The five paper configurations of Fig. 8/9 plus the two comparison mappings
keep their historical :class:`~repro.hpl.analytic.AnalyticConfig` values
*exactly* — golden traces and cached results depend on byte-identical
resolution.  Canonical scheduler names map onto the same builds:
``adaptive`` is the full framework (the old ``acmlg_both``), ``static`` the
peak-ratio split (``static_peak``), and so on.

:func:`resolve_hpl_build` is the one place a scheduler spec becomes an
analytic build; :mod:`repro.hpl.driver` re-exports the legacy
``CONFIGURATIONS`` dict from here.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Union

from repro.hpl.analytic import AnalyticConfig
from repro.machine.presets import NB_CPU_ONLY, NB_GPU

#: The five configurations of Fig. 8 / Fig. 9, by paper label (legacy keys).
CONFIGURATIONS: dict[str, AnalyticConfig] = {
    # Plain HPL 2.0 builds have no look-ahead; the framework configurations
    # add it among the paper's "well-known optimizations".
    "cpu": AnalyticConfig(
        nb=NB_CPU_ONLY, mapping="cpu_only", pipelined=False, pinned=True, lookahead=False
    ),
    # The vendor-linked HPL moves HPL's *pageable* matrix memory on every
    # call; 650 MB/s is the sustained pageable copy rate (the paper's §V.A
    # illustration rounds it to 500).  The framework configurations manage
    # their own pinned staging instead.
    "acmlg": AnalyticConfig(
        nb=NB_GPU, mapping="gpu_only", pipelined=False, pinned=False,
        host_bw_override=650e6, lookahead=False,
    ),
    "acmlg_adaptive": AnalyticConfig(nb=NB_GPU, mapping="adaptive", pipelined=False, pinned=True),
    "acmlg_pipe": AnalyticConfig(nb=NB_GPU, mapping="gpu_only", pipelined=True, pinned=True),
    "acmlg_both": AnalyticConfig(nb=NB_GPU, mapping="adaptive", pipelined=True, pinned=True),
}

#: Every HPL-runnable name -> its analytic build.  Canonical scheduler names
#: first, then the legacy Configuration keys as aliases of the same builds.
HPL_BUILDS: dict[str, AnalyticConfig] = {
    # canonical scheduler names (full-framework substrate per mapping)
    "adaptive": CONFIGURATIONS["acmlg_both"],
    "static": replace(CONFIGURATIONS["acmlg_both"], mapping="static"),
    "qilin": replace(CONFIGURATIONS["acmlg_both"], mapping="qilin"),
    "gpu_only": CONFIGURATIONS["acmlg_pipe"],
    "cpu_only": CONFIGURATIONS["cpu"],
    # legacy configuration keys (byte-identical to the pre-registry builds)
    "cpu": CONFIGURATIONS["cpu"],
    "acmlg": CONFIGURATIONS["acmlg"],
    "acmlg_adaptive": CONFIGURATIONS["acmlg_adaptive"],
    "acmlg_pipe": CONFIGURATIONS["acmlg_pipe"],
    "acmlg_both": CONFIGURATIONS["acmlg_both"],
    # "qilin" doubles as its own legacy key; "static_peak" aliases "static".
    "static_peak": replace(CONFIGURATIONS["acmlg_both"], mapping="static"),
}

#: Paper-facing display names; canonical scheduler names label as themselves.
CONFIG_LABELS = {
    "cpu": "CPU",
    "acmlg": "ACMLG",
    "acmlg_adaptive": "ACMLG+adaptive",
    "acmlg_pipe": "ACMLG+pipe",
    "acmlg_both": "ACMLG+both",
    "qilin": "Qilin",
    "static_peak": "Static",
    "adaptive": "Adaptive",
    "static": "Static",
    "gpu_only": "GPU-only",
    "cpu_only": "CPU-only",
}


def hpl_build(name: str) -> AnalyticConfig:
    """The analytic build for an HPL-capable scheduler/configuration name."""
    try:
        return HPL_BUILDS[name]
    except KeyError:
        valid = ", ".join(HPL_BUILDS)
        raise ValueError(
            f"scheduler {name!r} has no HPL build (task-DAG only, or unknown); "
            f"valid configurations: {valid}"
        ) from None


def resolve_hpl_build(spec: "Union[str, object]") -> tuple[str, AnalyticConfig]:
    """Resolve a scheduler spec into ``(name, AnalyticConfig)`` for HPL.

    Accepts a name (canonical or legacy alias — legacy spellings keep their
    historical builds exactly) or a :class:`~repro.sched.base.Scheduler`
    instance exposing :meth:`~repro.sched.base.Scheduler.hpl_config`.
    DAG-only schedulers raise a :class:`ValueError` naming the HPL-capable
    set rather than failing deep inside the stepper.
    """
    from repro.sched.base import Scheduler

    if isinstance(spec, Scheduler):
        config = spec.hpl_config()
        if config is None:
            raise ValueError(
                f"scheduler {spec.name!r} has no HPL build (task-DAG only); "
                f"valid configurations: {', '.join(HPL_BUILDS)}"
            )
        return spec.name, config
    return str(spec), hpl_build(str(spec))
