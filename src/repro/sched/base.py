"""The pluggable scheduler protocol.

A :class:`Scheduler` decides where work runs on a heterogeneous device set.
Two capabilities exist, and an implementation may have either or both:

* **HPL** (``supports_hpl``) — the scheduler maps the Linpack trailing
  update through the analytic stepper / DES machinery.  Its
  :meth:`Scheduler.hpl_config` returns the :class:`~repro.hpl.analytic.AnalyticConfig`
  build it runs, and :meth:`Scheduler.make_mapper` constructs the run-time
  mapper object (the ``gsplit``/``csplits``/``observe`` interface the hybrid
  DGEMM executor drives).
* **task DAG** (``supports_dag``) — the scheduler places tasks of a general
  :class:`~repro.sched.dag.TaskGraph` onto a :class:`~repro.sched.devices.DeviceSet`
  through the event-driven executor in :mod:`repro.sched.simulate`:
  :meth:`prepare` sees the whole graph up front, :meth:`next_assignment` is
  called whenever the executor can dispatch, and :meth:`observe` feeds back
  each completed task's measured timing.

Schedulers are registered by name in :mod:`repro.sched.registry`; the
ambient :func:`repro.sched.use` / :func:`repro.sched.current` context
mirrors :mod:`repro.exec.policy` and :mod:`repro.obs`.  See
``docs/scheduling.md`` for a walkthrough of adding one.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hpl.analytic import AnalyticConfig
    from repro.sched.dag import TaskGraph
    from repro.sched.devices import DeviceSet
    from repro.sched.simulate import SimState


@dataclass(frozen=True)
class TaskRecord:
    """One completed DAG task, as reported back to :meth:`Scheduler.observe`."""

    task_id: str
    kind: str
    flops: float
    device_index: int
    device_kind: str
    start: float
    finish: float
    comm_time: float

    @property
    def exec_time(self) -> float:
        return self.finish - self.start - self.comm_time


class Scheduler(abc.ABC):
    """Base class for pluggable schedulers (HPL and/or task-DAG capable).

    Subclasses set the class attributes and implement the methods of the
    capabilities they claim.  Instances are cheap and stateful per run —
    the registry hands out a fresh instance per :func:`repro.sched.create`
    call, so learned state never leaks between experiments.
    """

    #: Registry name (stable; persisted by :mod:`repro.sched.persistence`).
    name: str = ""
    #: One-line description shown by ``python -m repro.sched list``.
    description: str = ""
    #: Does the mapping react to run-time measurements?
    adapts_at_runtime: bool = False
    #: ``"paper"`` for the source paper's schedulers, ``"extension"`` for
    #: the PAPERS.md reproductions (HEFT, XKaapi, HeSP).
    source: str = "paper"
    supports_hpl: bool = False
    supports_dag: bool = False

    # -- HPL capability ---------------------------------------------------
    def hpl_config(self) -> "Optional[AnalyticConfig]":
        """The analytic-stepper build this scheduler runs, or None."""
        return None

    def make_mapper(self, element, n: int, nb: int = 1216, **kw):
        """Construct the run-time mapper driving the DES hybrid executor."""
        raise NotImplementedError(f"{self.name} has no HPL mapper")

    # -- task-DAG capability ----------------------------------------------
    def prepare(self, graph: "TaskGraph", devices: "DeviceSet") -> None:
        """Inspect the whole graph/device set before execution starts."""

    def next_assignment(self, state: "SimState") -> Optional[tuple[str, int]]:
        """The next ``(task_id, device_index)`` to dispatch, or None to wait.

        ``state.ready`` lists dispatchable task ids (deterministic order);
        ``state.devices`` the currently *alive* devices.  Returning None
        tells the executor to advance time to the next task completion.
        """
        raise NotImplementedError(f"{self.name} does not schedule task DAGs")

    def observe(self, record: TaskRecord) -> None:
        """Feed back one completed task's measured timing."""

    def choose_variant(self, workload, devices: "DeviceSet"):
        """Pick a partitioning variant of *workload* (HeSP-style), or None.

        Schedulers that co-optimise partition size override this to return
        one of ``workload.variants(devices)``; everyone else runs the
        workload's default graph.
        """
        return None

    # -- persistence -------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serialisable learned state (see :mod:`repro.sched.persistence`)."""
        return {}

    def load_state(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict`."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"
