"""The paper's schedulers, re-homed as registered :class:`Scheduler` plugins.

Five entries wrap the analytic-stepper mappings of Fig. 8/9 — the adaptive
two-level framework, the Fatica-style static peak-ratio split, Qilin's
train-then-freeze, and the two single-device baselines.  Each also schedules
general task DAGs, so the tournament can race the paper's mappers against
the PAPERS.md extensions (HEFT, work-stealing, HeSP) on the same machine:

* ``adaptive`` places greedily by *earliest modeled finish*, then corrects
  its per-device-kind rate model from measured timings — the DAG analogue
  of the paper's measure-and-update rule.
* ``static`` always prefers the highest-*peak* free device, ignoring task
  size, launch overhead, and measurements — exactly the error source the
  paper identifies (the GPU's effective rate is not its peak).
* ``qilin`` trains per task-kind device preferences on the first
  occurrences of each kind, then freezes them for the rest of the run.
* ``gpu_only`` / ``cpu_only`` pin work to one device class (``gpu_only``
  falls back to the CPUs once a ``GpuDropout`` fault removes the GPU).
"""

from __future__ import annotations

from typing import Optional

from repro.sched.adaptive import AdaptiveMapper
from repro.sched.base import Scheduler, TaskRecord
from repro.sched.builds import HPL_BUILDS
from repro.sched.qilin import QilinMapper
from repro.sched.registry import SchedulerInfo, register
from repro.sched.static_map import StaticMapper
from repro.util.units import dgemm_flops


def build_hpl_mapper(name: str, element, n: int, nb: int = 1216, **kw):
    """The run-time mapper object for *name*'s DES twin (crossval helper)."""
    from repro.sched.registry import create

    return create(name).make_mapper(element, n, nb=nb, **kw)


def _mapper_args(element, n: int, nb: int) -> tuple[float, int, float]:
    return (
        element.initial_gsplit,
        len(element.compute_cores),
        dgemm_flops(n, n, nb) * 1.05,
    )


class _GreedyDagMixin:
    """Shared greedy dispatch: pick the best free device per ready task."""

    def _score(self, state, task_id: str, device) -> float:
        raise NotImplementedError

    def next_assignment(self, state) -> Optional[tuple[str, int]]:
        free = state.free_devices
        if not free or not state.ready:
            return None
        task_id = state.ready[0]
        best = min(free, key=lambda d: (self._score(state, task_id, d), d.index))
        return task_id, best.index


class AdaptiveScheduler(_GreedyDagMixin, Scheduler):
    """The paper's framework: measured-rate feedback, per-device splits."""

    name = "adaptive"
    description = "paper's two-level adaptive mapper (measured-rate feedback)"
    adapts_at_runtime = True
    source = "paper"
    supports_hpl = True
    supports_dag = True

    def __init__(self) -> None:
        #: device kind -> learned slowdown factor (measured / modeled time).
        self._correction: dict[str, float] = {}
        self._devices = None

    def hpl_config(self):
        return HPL_BUILDS["adaptive"]

    def make_mapper(self, element, n: int, nb: int = 1216, **kw):
        gsplit, n_cores, max_workload = _mapper_args(element, n, nb)
        return AdaptiveMapper(gsplit, n_cores, max_workload=max_workload, **kw)

    def prepare(self, graph, devices) -> None:
        self._devices = devices

    def _score(self, state, task_id: str, device) -> float:
        est = state.completion_estimate(task_id, device)
        return est * self._correction.get(device.kind, 1.0)

    def observe(self, record: TaskRecord) -> None:
        # Measured-vs-modeled EWMA per device kind — the DAG analogue of the
        # paper's GSplit update.  With an exact executor the ratio sits at
        # 1.0; any divergence (noise models, device degradation) feeds back.
        if self._devices is None:
            return
        modeled = self._devices.devices[record.device_index].exec_time(record.flops)
        if modeled <= 0 or record.exec_time <= 0:
            return
        ratio = record.exec_time / modeled
        prev = self._correction.get(record.device_kind, 1.0)
        self._correction[record.device_kind] = 0.7 * prev + 0.3 * ratio

    def state_dict(self) -> dict:
        return {"correction": dict(self._correction)}

    def load_state(self, state: dict) -> None:
        self._correction = dict(state.get("correction", {}))


class StaticScheduler(_GreedyDagMixin, Scheduler):
    """Fatica-style static peak-ratio mapping — never reacts to measurements."""

    name = "static"
    description = "static peak-ratio split (Fatica baseline), no adaptation"
    adapts_at_runtime = False
    source = "paper"
    supports_hpl = True
    supports_dag = True

    def hpl_config(self):
        return HPL_BUILDS["static"]

    def make_mapper(self, element, n: int, nb: int = 1216, **kw):
        gsplit, n_cores, _ = _mapper_args(element, n, nb)
        return StaticMapper(gsplit, n_cores)

    def _score(self, state, task_id: str, device) -> float:
        # Peak-ratio thinking: rank devices purely by peak flops, so the GPU
        # absorbs even tiny tasks and pays its launch overhead every time.
        return -device.peak_flops


class QilinScheduler(_GreedyDagMixin, Scheduler):
    """Qilin train-then-freeze: per-kind preferences fixed after training."""

    name = "qilin"
    description = "Qilin train-then-freeze mapping (MICRO'09)"
    adapts_at_runtime = False
    source = "paper"
    supports_hpl = True
    supports_dag = True

    #: Measured samples per task kind before that kind's placement freezes.
    TRAINING_SAMPLES = 4

    def __init__(self) -> None:
        self._samples: dict[str, dict[str, list[float]]] = {}
        self._frozen: dict[str, str] = {}  # kind -> preferred device kind

    def hpl_config(self):
        return HPL_BUILDS["qilin"]

    def make_mapper(self, element, n: int, nb: int = 1216, **kw):
        gsplit, n_cores, max_workload = _mapper_args(element, n, nb)
        return QilinMapper(gsplit, n_cores, max_workload=max_workload, **kw)

    def _score(self, state, task_id: str, device) -> float:
        kind = state.graph.task(task_id).kind
        preferred = self._frozen.get(kind)
        if preferred is not None:
            # Frozen: strongly prefer the trained device class, break ties
            # by modeled completion among that class.
            penalty = 0.0 if device.kind == preferred else 1e9
            return penalty + state.completion_estimate(task_id, device)
        return state.completion_estimate(task_id, device)

    def observe(self, record: TaskRecord) -> None:
        if record.kind in self._frozen:
            return  # run time: measurements are ignored (the defining flaw)
        per_kind = self._samples.setdefault(record.kind, {})
        rates = per_kind.setdefault(record.device_kind, [])
        if record.exec_time > 0:
            rates.append(record.flops / record.exec_time)
        total = sum(len(v) for v in per_kind.values())
        if total >= self.TRAINING_SAMPLES and len(per_kind) >= 1:
            best = max(per_kind, key=lambda k: sum(per_kind[k]) / len(per_kind[k]))
            self._frozen[record.kind] = best

    def state_dict(self) -> dict:
        return {"frozen": dict(self._frozen)}

    def load_state(self, state: dict) -> None:
        self._frozen = dict(state.get("frozen", {}))


class GpuOnlyScheduler(_GreedyDagMixin, Scheduler):
    """Everything on the GPU (vendor-library style); CPUs only as survival."""

    name = "gpu_only"
    description = "all work on the GPU (ACML-GPU style), CPU fallback on loss"
    adapts_at_runtime = False
    source = "paper"
    supports_hpl = True
    supports_dag = True

    def hpl_config(self):
        return HPL_BUILDS["gpu_only"]

    def make_mapper(self, element, n: int, nb: int = 1216, **kw):
        return StaticMapper(1.0, len(element.compute_cores))

    def next_assignment(self, state) -> Optional[tuple[str, int]]:
        if not state.ready:
            return None
        free_gpus = [d for d in state.free_devices if d.kind == "gpu"]
        if free_gpus:
            return state.ready[0], free_gpus[0].index
        alive_gpus = [d for d in state.devices if d.kind == "gpu"]
        if alive_gpus:
            return None  # GPU busy: wait rather than spill to CPUs
        # GpuDropout killed the GPU: degrade to the CPUs instead of stalling.
        free = state.free_devices
        if not free:
            return None
        return state.ready[0], free[0].index

    def _score(self, state, task_id: str, device) -> float:  # pragma: no cover
        return -device.peak_flops


class CpuOnlyScheduler(_GreedyDagMixin, Scheduler):
    """Plain CPU HPL: compute cores only, the GPU stays idle."""

    name = "cpu_only"
    description = "CPU cores only (plain HPL baseline)"
    adapts_at_runtime = False
    source = "paper"
    supports_hpl = True
    supports_dag = True

    def hpl_config(self):
        return HPL_BUILDS["cpu_only"]

    def make_mapper(self, element, n: int, nb: int = 1216, **kw):
        return StaticMapper(0.0, len(element.compute_cores))

    def next_assignment(self, state) -> Optional[tuple[str, int]]:
        if not state.ready:
            return None
        free_cpus = [d for d in state.free_devices if d.kind == "cpu"]
        if not free_cpus:
            return None
        task_id = state.ready[0]
        best = min(
            free_cpus,
            key=lambda d: (state.completion_estimate(task_id, d), d.index),
        )
        return task_id, best.index

    def _score(self, state, task_id: str, device) -> float:  # pragma: no cover
        return state.completion_estimate(task_id, device)


register(
    SchedulerInfo(
        name="adaptive",
        description=AdaptiveScheduler.description,
        factory=AdaptiveScheduler,
        source="paper",
        supports_hpl=True,
        supports_dag=True,
        adapts_at_runtime=True,
    ),
    aliases=("acmlg_both", "acmlg_adaptive"),
)
register(
    SchedulerInfo(
        name="static",
        description=StaticScheduler.description,
        factory=StaticScheduler,
        source="paper",
        supports_hpl=True,
        supports_dag=True,
    ),
    aliases=("static_peak",),
)
register(
    SchedulerInfo(
        name="qilin",
        description=QilinScheduler.description,
        factory=QilinScheduler,
        source="paper",
        supports_hpl=True,
        supports_dag=True,
    ),
)
register(
    SchedulerInfo(
        name="gpu_only",
        description=GpuOnlyScheduler.description,
        factory=GpuOnlyScheduler,
        source="paper",
        supports_hpl=True,
        supports_dag=True,
    ),
    aliases=("acmlg", "acmlg_pipe"),
)
register(
    SchedulerInfo(
        name="cpu_only",
        description=CpuOnlyScheduler.description,
        factory=CpuOnlyScheduler,
        source="paper",
        supports_hpl=True,
        supports_dag=True,
    ),
    aliases=("cpu",),
)
