"""HEFT — Heterogeneous Earliest-Finish-Time list scheduling.

The classic static heuristic (Topcuoglu, Hariri & Wu, TPDS 2002; the
PAPERS.md line of DAG schedulers): rank every task by its *upward rank* —
mean execution cost plus the most expensive path to an exit task, with mean
communication cost on the edges — then place tasks in rank order on the
device with the earliest finish time.

The executor's pull protocol turns the placement phase into a list
scheduler: among ready tasks HEFT always serves the highest-ranked one, and
if that task's earliest-finish device is currently busy it *waits* for it
(returns ``None``) instead of settling for a slower free device — the
look-ahead that greedy mappers lack on critical-path-heavy DAGs.
"""

from __future__ import annotations

from typing import Optional

from repro.sched.base import Scheduler, TaskRecord
from repro.sched.registry import SchedulerInfo, register


class HeftScheduler(Scheduler):
    """Upward-rank priorities + earliest-finish-time placement."""

    name = "heft"
    description = "HEFT list scheduling: upward ranks + earliest finish time"
    adapts_at_runtime = False
    source = "extension"
    supports_hpl = False
    supports_dag = True

    def __init__(self) -> None:
        self._rank: dict[str, float] = {}
        #: device index -> modeled time it becomes free (our own book-keeping;
        #: the executor only exposes busy/free, not remaining time).
        self._avail: dict[int, float] = {}
        self._devices = None

    # -- planning ----------------------------------------------------------
    def prepare(self, graph, devices) -> None:
        self._devices = devices
        self._avail = {}
        alive = devices.alive(0.0)
        # Mean comm cost of an edge: half the endpoint pairs cross domains
        # in expectation when a GPU exists; zero on a CPU-only set.
        has_gpu = any(d.kind == "gpu" for d in alive)
        rank: dict[str, float] = {}
        for tid in reversed(graph.topo_order()):
            task = graph.task(tid)
            mean_cost = sum(d.exec_time(task.flops) for d in alive) / len(alive)
            succ_cost = 0.0
            for s in graph.successors(tid):
                edge = (
                    devices.transfer.time(task.out_bytes) * 0.5 if has_gpu else 0.0
                )
                succ_cost = max(succ_cost, edge + rank[s])
            rank[tid] = mean_cost + succ_cost
        self._rank = rank

    # -- placement ---------------------------------------------------------
    def next_assignment(self, state) -> Optional[tuple[str, int]]:
        if not state.ready:
            return None
        free = {d.index for d in state.free_devices}
        if not free:
            return None
        # Highest upward rank first; ready-order breaks exact ties.
        task_id = max(state.ready, key=lambda t: self._rank.get(t, 0.0))
        best_idx, best_eft = None, None
        for device in state.devices:
            ready_at = max(state.time, self._avail.get(device.index, 0.0))
            eft = (
                ready_at
                + state.comm_cost(task_id, device)
                + device.exec_time(state.graph.task(task_id).flops)
            )
            if best_eft is None or eft < best_eft - 1e-12:
                best_idx, best_eft = device.index, eft
        if best_idx not in free:
            # The globally best device is busy: wait for it rather than
            # spill the critical path onto a slower device.
            return None
        self._avail[best_idx] = best_eft
        return task_id, best_idx

    def observe(self, record: TaskRecord) -> None:
        # True finish replaces our estimate (they coincide in an exact sim).
        self._avail[record.device_index] = record.finish


register(
    SchedulerInfo(
        name="heft",
        description=HeftScheduler.description,
        factory=HeftScheduler,
        source="extension",
        supports_dag=True,
    )
)
