"""The two split databases of Section IV.B.

``database_g`` holds one GSplit value per *workload bin*: "The database_g has
J items.  Each item is a GSplit value for the problem size within a range,
which is [(i-1)*W/J + 1, i*W/J] for item i.  The initial value of each item
is the same, computed by P'_G / (P'_G + P'_C)."

``database_c`` holds one CSplit value per CPU core, initialised to 1/n.

Both databases record their write history, which is exactly the data Fig. 10
plots (GPU split ratio vs. workload).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require, require_fraction, require_positive


@dataclass(frozen=True)
class SplitWrite:
    """One store into a split database (the history Fig. 10 is drawn from)."""

    workload: float
    value: float
    bin_index: int


class SplitDatabase:
    """``database_g``: GSplit values indexed by workload bins."""

    def __init__(self, n_bins: int, max_workload: float, initial: float) -> None:
        require(n_bins >= 1, "n_bins must be >= 1")
        require_positive(max_workload, "max_workload")
        require_fraction(initial, "initial GSplit")
        self.n_bins = n_bins
        self.max_workload = float(max_workload)
        self.initial = float(initial)
        self._values = np.full(n_bins, float(initial))
        self._written = np.zeros(n_bins, dtype=bool)
        self.history: list[SplitWrite] = []

    def bin_index(self, workload: float) -> int:
        """The item covering *workload*; out-of-range workloads clamp.

        Item i (0-based) covers ((i) * W/J, (i+1) * W/J] — the paper's
        [(i-1)*W/J + 1, i*W/J] with 1-based i and integer flop counts.
        """
        require(workload >= 0, f"workload must be >= 0, got {workload}")
        if workload <= 0:
            return 0
        width = self.max_workload / self.n_bins
        return min(self.n_bins - 1, int(np.ceil(workload / width)) - 1)

    def bin_range(self, index: int) -> tuple[float, float]:
        """(low, high] workload bounds of item *index*."""
        require(0 <= index < self.n_bins, f"bin index {index} out of range")
        width = self.max_workload / self.n_bins
        return index * width, (index + 1) * width

    def lookup(self, workload: float) -> float:
        """The GSplit to use for a DGEMM of *workload* flops."""
        return float(self._values[self.bin_index(workload)])

    def is_written(self, workload: float) -> bool:
        """True if the bin covering *workload* has been updated since init."""
        return bool(self._written[self.bin_index(workload)])

    def store(self, workload: float, value: float) -> None:
        """Write the newly computed mapping back (step 2 of Section IV.B)."""
        require_fraction(value, "GSplit")
        idx = self.bin_index(workload)
        self._values[idx] = value
        self._written[idx] = True
        self.history.append(SplitWrite(workload, value, idx))

    def values(self) -> np.ndarray:
        """Current per-bin GSplit values (copy)."""
        return self._values.copy()

    def written_mask(self) -> np.ndarray:
        """Which bins have been updated since initialisation."""
        return self._written.copy()

    def __len__(self) -> int:
        return self.n_bins


class CoreSplitDatabase:
    """``database_c``: per-core CSplit values, initialised to 1/n."""

    def __init__(self, n_cores: int) -> None:
        require(n_cores >= 1, "n_cores must be >= 1")
        self.n_cores = n_cores
        self._values = np.full(n_cores, 1.0 / n_cores)
        self.history: list[np.ndarray] = []

    def lookup(self) -> np.ndarray:
        """Current CSplit_i values (copy; always sums to 1)."""
        return self._values.copy()

    def store(self, values: "np.ndarray | list[float]") -> None:
        """Write new per-core mappings; they must be a valid partition."""
        arr = np.asarray(values, dtype=float)
        require(arr.shape == (self.n_cores,), f"expected {self.n_cores} values, got {arr.shape}")
        require(np.all(arr >= 0), f"CSplit values must be >= 0, got {arr}")
        total = arr.sum()
        require(abs(total - 1.0) < 1e-6, f"CSplit values must sum to 1, got {total}")
        self._values = arr.copy()
        self.history.append(arr.copy())

    def __len__(self) -> int:
        return self.n_cores
