"""``python -m repro.sched`` — inspect the scheduler registry.

``list`` prints one row per registered scheduler with its capabilities and
legacy aliases; ``--json`` emits the same rows machine-readably (the CI
scheduler lane asserts on it).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.sched import registry


def _render_table(rows: list[dict]) -> str:
    headers = ("name", "source", "hpl", "dag", "adaptive", "description")
    table = [
        (
            row["name"],
            row["source"],
            "yes" if row["hpl"] else "-",
            "yes" if row["dag"] else "-",
            "yes" if row["adaptive"] else "-",
            row["description"]
            + (f"  (aliases: {', '.join(row['aliases'])})" if row["aliases"] else ""),
        )
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in table)) for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend("  ".join(r[i].ljust(widths[i]) for i in range(len(r))) for r in table)
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sched",
        description="Inspect the pluggable scheduler registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    list_cmd = sub.add_parser("list", help="list registered schedulers")
    list_cmd.add_argument("--json", action="store_true", help="emit JSON rows")
    args = parser.parse_args(argv)

    rows = registry.describe()
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(_render_table(rows))
        print(f"\n{len(rows)} schedulers; default: {registry.DEFAULT_SCHEDULER!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
