"""The scheduler tournament: every scheduler x machine x workload, ranked.

The bench behind ``benchmarks/bench_tournament.py``: run every DAG-capable
registry scheduler over the workload catalogue
(:mod:`repro.sched.workloads`) on several machine variants, plus the HPL
mid-run thermal-throttle experiment (:mod:`repro.bench.faults_bench`) for
the HPL-capable mappers, and rank everything into one leaderboard.

Cells are independent seeded computations, so they fan out through
:func:`repro.exec.evaluate_points` — parallel across the ambient
:class:`~repro.exec.ExecutionPolicy`'s workers and served from the on-disk
:class:`~repro.exec.ResultCache` on re-runs.  Every cell function returns a
plain JSON-serialisable dict, which is what makes the leaderboard
*byte-identical* across two cached runs (asserted by the determinism test).

Two results are pinned as regression gates (``bench_tournament.py
--check``):

* **adaptive beats static on throttle recovery** — the paper's central
  claim, as a ranked cell: the adaptive mapper sheds GPU load, the card
  cools, the clock comes back; the static peak split rides the throttle.
* **HEFT wins at least one DAG cell** — the PAPERS.md extension earns its
  keep on dependency-heavy graphs, where upward-rank lookahead beats the
  paper's ratio-driven greedy placement.

The leaderboard is equally explicit about where the paper's scheduler
*loses* (``adaptive_dag_losses``): plan-based schedulers out-place it on
DAGs with long critical paths — scheduling breadth the original framework
never claimed.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.machine.presets import DOWNCLOCKED_MHZ, tianhe1_element
from repro.machine.specs import ElementSpec
from repro.sched import registry
from repro.sched.devices import DeviceSet
from repro.sched.simulate import execute
from repro.sched.workloads import standard_workloads

#: Machine variants the tournament runs over: the paper's TianHe-1 element
#: at the standard 750 MHz GPU clock, and the downclocked 575 MHz variant
#: (the clock the full-system run actually shipped with).
MACHINES: dict[str, Callable[[], ElementSpec]] = {
    "tianhe1": tianhe1_element,
    "tianhe1_downclocked": lambda: tianhe1_element(gpu_clock_mhz=DOWNCLOCKED_MHZ),
}

#: Throttle-experiment problem sizes (quick keeps CI smoke under a minute).
THROTTLE_N_QUICK = 30_000
THROTTLE_N_FULL = 60_000
THROTTLE_SEED = 11


def dag_schedulers() -> list[str]:
    """Registry schedulers that can run the task-DAG tournament."""
    return [name for name in registry.names() if registry.get(name).supports_dag]


def hpl_schedulers() -> list[str]:
    """Registry schedulers that can run the HPL throttle experiment."""
    return [name for name in registry.names() if registry.get(name).supports_hpl]


def run_dag_cell(scheduler: str, machine: str, workload: str, quick: bool = True) -> dict:
    """One tournament cell: *scheduler* runs *workload* on *machine*.

    Module-level and JSON-in/JSON-out so :func:`repro.exec.evaluate_points`
    can fan cells across workers and cache them on disk.
    """
    devices = DeviceSet.from_element(MACHINES[machine](), name=machine)
    entry = standard_workloads(quick)[workload]
    sch = registry.create(scheduler)
    graph = sch.choose_variant(entry, devices)
    if graph is None:
        graph = entry.graph()
    result = execute(graph, devices, sch)
    return {
        "scheduler": scheduler,
        "machine": machine,
        "workload": workload,
        "graph": graph.name,
        "tasks": len(result.records),
        "makespan_s": result.makespan,
        "throughput_gflops": result.throughput / 1e9,
        "gpu_task_fraction": result.gpu_task_fraction,
    }


def run_throttle_cell(scheduler: str, n: int = THROTTLE_N_QUICK, seed: int = THROTTLE_SEED) -> dict:
    """One HPL cell: the mid-run thermal-throttle experiment, summarised."""
    from repro.bench.faults_bench import throttle_recovery

    study = throttle_recovery(scheduler, n=n, seed=seed)
    return {
        "scheduler": scheduler,
        "n": n,
        "seed": seed,
        "recovery": study.recovery,
        "recovered": study.recovered,
        "clean_gflops": study.clean.gflops,
        "faulted_gflops": study.faulted.gflops,
    }


def _rank_dag_cells(cells: Sequence[dict]) -> list[dict]:
    """Group DAG cells by (machine, workload); annotate rank + relative gap."""
    grouped: dict[tuple[str, str], list[dict]] = {}
    for cell in cells:
        grouped.setdefault((cell["machine"], cell["workload"]), []).append(cell)
    ranked = []
    for (machine, workload), group in sorted(grouped.items()):
        group = sorted(group, key=lambda c: (c["makespan_s"], c["scheduler"]))
        best = group[0]["makespan_s"]
        for rank, cell in enumerate(group, start=1):
            ranked.append({
                **cell,
                "rank": rank,
                "winner": group[0]["scheduler"],
                # 1.0 = the cell winner; 2.0 = twice the winner's makespan.
                "rel_makespan": cell["makespan_s"] / best if best > 0 else 1.0,
            })
    return ranked


def _leaderboard(dag_cells: Sequence[dict], hpl_cells: Sequence[dict]) -> list[dict]:
    """One row per scheduler: cells won, mean relative makespan, rank."""
    throttle_winner = None
    if hpl_cells:
        throttle_winner = max(
            hpl_cells, key=lambda c: (c["recovery"], c["scheduler"])
        )["scheduler"]

    rows: dict[str, dict] = {}
    for cell in dag_cells:
        row = rows.setdefault(
            cell["scheduler"],
            {"scheduler": cell["scheduler"], "dag_cells": 0, "dag_wins": 0,
             "hpl_wins": 0, "rel_makespans": []},
        )
        row["dag_cells"] += 1
        row["rel_makespans"].append(cell["rel_makespan"])
        if cell["rank"] == 1:
            row["dag_wins"] += 1
    for cell in hpl_cells:
        row = rows.setdefault(
            cell["scheduler"],
            {"scheduler": cell["scheduler"], "dag_cells": 0, "dag_wins": 0,
             "hpl_wins": 0, "rel_makespans": []},
        )
        if cell["scheduler"] == throttle_winner:
            row["hpl_wins"] += 1

    board = []
    for row in rows.values():
        rels = row.pop("rel_makespans")
        board.append({
            **row,
            "wins": row["dag_wins"] + row["hpl_wins"],
            "mean_rel_makespan": (sum(rels) / len(rels)) if rels else None,
        })
    board.sort(key=lambda r: (
        -r["wins"],
        r["mean_rel_makespan"] if r["mean_rel_makespan"] is not None else float("inf"),
        r["scheduler"],
    ))
    for rank, row in enumerate(board, start=1):
        row["rank"] = rank
    return board


def _pins(dag_cells: Sequence[dict], hpl_cells: Sequence[dict]) -> dict:
    """The two regression pins plus the honest where-adaptive-loses list."""
    recovery = {c["scheduler"]: c["recovery"] for c in hpl_cells}
    heft_wins = sorted(
        f"{c['machine']}/{c['workload']}"
        for c in dag_cells
        if c["rank"] == 1 and c["scheduler"] == "heft"
    )
    adaptive_losses = [
        {"cell": f"{c['machine']}/{c['workload']}", "winner": c["winner"],
         "rel_makespan": c["rel_makespan"]}
        for c in sorted(dag_cells, key=lambda c: (c["machine"], c["workload"]))
        if c["scheduler"] == "adaptive" and c["rank"] != 1
    ]
    return {
        "adaptive_beats_static_throttle": (
            recovery.get("adaptive", 0.0) > recovery.get("static", 0.0)
            if {"adaptive", "static"} <= set(recovery)
            else None
        ),
        "heft_wins_dag_cell": bool(heft_wins),
        "heft_winning_cells": heft_wins,
        "adaptive_dag_losses": adaptive_losses,
    }


def run_tournament(
    quick: bool = True,
    schedulers: Optional[Sequence[str]] = None,
    machines: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    throttle_n: Optional[int] = None,
) -> dict:
    """The whole grid: DAG cells + HPL throttle cells -> ranked report.

    Every cell goes through :func:`repro.exec.evaluate_points`, so the
    ambient :class:`~repro.exec.ExecutionPolicy` decides parallelism and
    caching; the returned report is a plain dict whose canonical JSON is
    identical across runs (the determinism contract).
    """
    from repro.exec import evaluate_points

    schedulers = list(schedulers if schedulers is not None else dag_schedulers())
    machines = list(machines if machines is not None else MACHINES)
    workloads = list(
        workloads if workloads is not None else standard_workloads(quick)
    )
    throttle_n = throttle_n if throttle_n is not None else (
        THROTTLE_N_QUICK if quick else THROTTLE_N_FULL
    )

    dag_points = [
        dict(scheduler=s, machine=m, workload=w, quick=quick)
        for s in schedulers
        for m in machines
        for w in workloads
        if registry.get(s).supports_dag
    ]
    hpl_points = [
        dict(scheduler=s, n=throttle_n, seed=THROTTLE_SEED)
        for s in ("adaptive", "static")
        if s in {registry.canonical_name(x) for x in schedulers}
    ]

    dag_cells = _rank_dag_cells(
        evaluate_points("sched.tournament.dag", run_dag_cell, dag_points)
    )
    hpl_cells = evaluate_points(
        "sched.tournament.throttle", run_throttle_cell, hpl_points
    )

    board = _leaderboard(dag_cells, hpl_cells)
    wins = {row["scheduler"]: row["wins"] for row in board}
    total_cells = len({(c["machine"], c["workload"]) for c in dag_cells}) + (
        1 if hpl_cells else 0
    )
    return {
        "quick": quick,
        "schedulers": schedulers,
        "machines": machines,
        "workloads": workloads,
        "throttle_n": throttle_n,
        "dag_cells": dag_cells,
        "hpl_cells": list(hpl_cells),
        "leaderboard": board,
        "adaptive_win_rate": (
            wins.get("adaptive", 0) / total_cells if total_cells else 0.0
        ),
        "pins": _pins(dag_cells, hpl_cells),
    }


def render_leaderboard(report: dict) -> str:
    """The tournament report as an aligned text table (for the bench CLI)."""
    from repro.util.tables import TextTable

    table = TextTable(
        ["rank", "scheduler", "wins", "dag wins", "hpl wins", "mean rel makespan"],
        title=(
            f"scheduler tournament — {len(report['machines'])} machines x "
            f"{len(report['workloads'])} workloads "
            f"(+ throttle recovery at N={report['throttle_n']})"
        ),
    )
    for row in report["leaderboard"]:
        rel = row["mean_rel_makespan"]
        table.add_row(
            str(row["rank"]), row["scheduler"], str(row["wins"]),
            str(row["dag_wins"]), str(row["hpl_wins"]),
            "-" if rel is None else f"{rel:.3f}",
        )
    lines = [table.render(), ""]
    pins = report["pins"]
    lines.append(
        "pins: adaptive beats static on throttle recovery: "
        f"{pins['adaptive_beats_static_throttle']}; "
        f"HEFT wins a DAG cell: {pins['heft_wins_dag_cell']} "
        f"({', '.join(pins['heft_winning_cells']) or 'none'})"
    )
    if pins["adaptive_dag_losses"]:
        losses = ", ".join(
            f"{l['cell']} to {l['winner']} ({l['rel_makespan']:.2f}x)"
            for l in pins["adaptive_dag_losses"]
        )
        lines.append(f"adaptive loses: {losses}")
    return "\n".join(lines)
