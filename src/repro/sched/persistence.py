"""Registry-aware persistence for schedulers and their learned databases.

Format version 2 wraps every payload with the owning scheduler's registry
name, so "the new mapping is the next initial mapping" (Section IV.B)
round-trips for the whole zoo, not just the adaptive mapper::

    {"version": 2, "scheduler": "qilin", "kind": "hpl_mapper", "state": {...}}

``kind`` distinguishes the two stateful object families:

* ``"hpl_mapper"`` — the run-time mapper objects driving the DES hybrid
  executor (:class:`~repro.sched.adaptive.AdaptiveMapper` and friends);
  their split databases are stored exactly as format 1 did.
* ``"scheduler"`` — a :class:`~repro.sched.base.Scheduler` instance; its
  :meth:`~repro.sched.base.Scheduler.state_dict` is stored and restored
  through a fresh registry instance.

Format 1 files (written by the pre-registry ``repro.core.persistence``)
still load, as adaptive mappers.  :mod:`repro.core.persistence` re-exports
this module for backwards compatibility.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.sched.adaptive import AdaptiveMapper
from repro.sched.base import Scheduler
from repro.sched.qilin import QilinMapper
from repro.sched.static_map import StaticMapper
from repro.util.io import atomic_write_text
from repro.util.validation import require

FORMAT_VERSION = 2
#: The pre-registry format: a bare adaptive-mapper database dump.
LEGACY_FORMAT_VERSION = 1


# -- encoding ---------------------------------------------------------------

def _adaptive_body(mapper: AdaptiveMapper) -> dict:
    db_g = mapper.database_g
    return {
        "database_g": {
            "n_bins": db_g.n_bins,
            "max_workload": db_g.max_workload,
            "initial": db_g.initial,
            "values": db_g.values().tolist(),
            "written": db_g.written_mask().tolist(),
        },
        "database_c": {
            "n_cores": mapper.database_c.n_cores,
            "values": mapper.database_c.lookup().tolist(),
        },
        "min_gsplit": mapper.min_gsplit,
        "min_csplit": mapper.min_csplit,
        "updates": mapper.updates,
    }


def mapper_state(obj, name: Optional[str] = None) -> dict:
    """Serialise a mapper or :class:`Scheduler` to a format-2 payload.

    *name* pins the registry name when the object alone is ambiguous (a
    :class:`StaticMapper` backs ``static``, ``gpu_only`` *and* ``cpu_only``);
    it defaults to the object's own ``name`` attribute.
    """
    if isinstance(obj, Scheduler):
        return {
            "version": FORMAT_VERSION,
            "scheduler": name or obj.name,
            "kind": "scheduler",
            "state": obj.state_dict(),
        }
    if isinstance(obj, QilinMapper):
        body = _adaptive_body(obj)
        body["qilin"] = {
            "frozen": obj.frozen,
            "training_seconds": obj.training_seconds,
            "training_observations": obj.training_observations,
        }
        return {
            "version": FORMAT_VERSION,
            "scheduler": name or "qilin",
            "kind": "hpl_mapper",
            "state": body,
        }
    if isinstance(obj, AdaptiveMapper):
        return {
            "version": FORMAT_VERSION,
            "scheduler": name or "adaptive",
            "kind": "hpl_mapper",
            "state": _adaptive_body(obj),
        }
    if isinstance(obj, StaticMapper):
        return {
            "version": FORMAT_VERSION,
            "scheduler": name or "static",
            "kind": "hpl_mapper",
            "state": {
                "gsplit": obj.gsplit(0.0),
                "n_cores": len(obj.csplits()),
            },
        }
    raise TypeError(f"cannot persist {type(obj).__name__}")


# -- decoding ---------------------------------------------------------------

def _restore_adaptive(body: dict, cls=AdaptiveMapper, telemetry=None):
    g = body["database_g"]
    c = body["database_c"]
    mapper = cls(
        initial_gsplit=g["initial"],
        n_cores=c["n_cores"],
        max_workload=g["max_workload"],
        n_bins=g["n_bins"],
        min_gsplit=body["min_gsplit"],
        min_csplit=body["min_csplit"],
        telemetry=telemetry,
    )
    mapper.database_g._values = np.asarray(g["values"], dtype=float)
    mapper.database_g._written = np.asarray(g["written"], dtype=bool)
    require(mapper.database_g._values.shape == (g["n_bins"],), "corrupt database_g values")
    mapper.database_c.store(np.asarray(c["values"], dtype=float))
    mapper.database_c.history.clear()  # restoring is not an observed update
    mapper.updates = int(body["updates"])
    return mapper


def restore_named(state: dict, telemetry=None) -> tuple[str, object]:
    """Rebuild ``(scheduler_name, object)`` from a persisted payload.

    Format-1 payloads restore as ``("adaptive", AdaptiveMapper)``.
    """
    version = state.get("version")
    if version == LEGACY_FORMAT_VERSION:
        return "adaptive", _restore_adaptive(state, telemetry=telemetry)
    require(version == FORMAT_VERSION,
            f"unsupported mapper state version {version!r}")
    name = state["scheduler"]
    kind = state["kind"]
    body = state["state"]
    if kind == "scheduler":
        from repro.sched.registry import create

        scheduler = create(name)
        scheduler.load_state(body)
        return name, scheduler
    require(kind == "hpl_mapper", f"unknown persisted kind {kind!r}")
    if "qilin" in body:
        mapper = _restore_adaptive(body, cls=QilinMapper, telemetry=telemetry)
        q = body["qilin"]
        mapper.training_seconds = float(q["training_seconds"])
        mapper.training_observations = int(q["training_observations"])
        if q["frozen"]:
            mapper.freeze()
        return name, mapper
    if "database_g" in body:
        return name, _restore_adaptive(body, telemetry=telemetry)
    return name, StaticMapper(body["gsplit"], body["n_cores"])


def restore_mapper(state: dict, telemetry=None):
    """Back-compat entry point: the restored object, name discarded."""
    return restore_named(state, telemetry=telemetry)[1]


# -- file I/O ---------------------------------------------------------------

def save_mapper(obj, path: Union[str, Path], name: Optional[str] = None) -> Path:
    """Write *obj*'s learned state to *path* as JSON, atomically.

    The payload goes through :func:`repro.util.io.atomic_write_text`
    (same-directory temp + ``os.replace``), so a crash mid-write leaves
    either the old file or the new one — never a truncated database.
    """
    return atomic_write_text(path, json.dumps(mapper_state(obj, name=name), indent=2))


def load_mapper(path: Union[str, Path], telemetry=None):
    """Read an object previously written by :func:`save_mapper`."""
    return restore_mapper(json.loads(Path(path).read_text()), telemetry=telemetry)


def load_named(path: Union[str, Path], telemetry=None) -> tuple[str, object]:
    """Like :func:`load_mapper`, but also returns the scheduler name."""
    return restore_named(json.loads(Path(path).read_text()), telemetry=telemetry)
