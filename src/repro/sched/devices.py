"""The device-set view of a compute element for task-DAG scheduling.

A :class:`DeviceSet` flattens an :class:`~repro.machine.specs.ElementSpec`
into schedulable devices: one per compute CPU core (the transfer core stays
dedicated to staging, exactly as in Section IV.C) and one per GPU chip.
Execution-time models reuse the machine model's calibrated curves — a CPU
core sustains ``core_peak * dgemm_efficiency``; the GPU follows the
saturating workload-efficiency curve ``eff_max * W / (W + w_half)`` plus the
CAL kernel-launch overhead, which is what makes small tasks CPU-friendly and
large tasks GPU-friendly (the tension every scheduler here negotiates).

Data movement is modeled as memory *domains*: all CPU cores share ``host``;
each GPU owns its local memory.  Crossing domains costs PCIe latency plus
bytes over the pinned-path bandwidth.

``GpuDropout`` faults from :mod:`repro.faults.spec` apply here too:
:meth:`DeviceSet.from_element` drops GPUs whose dropout fires at or before
time zero, and the executor kills them mid-run otherwise — a scheduler must
never place work on a dead device (asserted by the property suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.machine.presets import tianhe1_element
from repro.machine.specs import ElementSpec
from repro.util.validation import require, require_positive

#: Fixed per-task dispatch overhead on a CPU core (thread wake + BLAS setup).
CPU_TASK_OVERHEAD_S = 5e-6


@dataclass(frozen=True)
class Device:
    """One schedulable execution resource."""

    index: int
    kind: str  # "cpu" | "gpu"
    name: str
    memory_domain: str  # "host" or "gpu<N>"
    peak_flops: float
    #: CPU: sustained efficiency; GPU: eff_max of the saturating curve.
    efficiency: float
    #: GPU only: workload at which efficiency reaches eff_max/2.
    w_half: float = 0.0
    #: Fixed per-task overhead (kernel launch / dispatch), seconds.
    task_overhead_s: float = 0.0
    #: Dies at this virtual time (math.inf = never) — GpuDropout faults.
    alive_until: float = math.inf

    def exec_time(self, flops: float) -> float:
        """Modeled execution time of a *flops*-sized task on this device."""
        require(flops >= 0, "flops must be >= 0")
        if flops == 0:
            return self.task_overhead_s
        if self.kind == "gpu":
            eff = self.efficiency * flops / (flops + self.w_half)
            return self.task_overhead_s + flops / (self.peak_flops * eff)
        return self.task_overhead_s + flops / (self.peak_flops * self.efficiency)

    def rate(self, flops: float) -> float:
        """Effective flop rate for a *flops*-sized task (overhead included)."""
        t = self.exec_time(flops)
        return flops / t if t > 0 else 0.0

    def alive_at(self, time: float) -> bool:
        return time < self.alive_until


@dataclass(frozen=True)
class TransferPath:
    """Cost model of crossing between two memory domains (the PCIe hop)."""

    bandwidth: float  # bytes/s (effective pinned-path rate)
    latency: float  # seconds per transfer

    def time(self, nbytes: float) -> float:
        if nbytes <= 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class DeviceSet:
    """The devices of one machine plus its inter-domain transfer model."""

    name: str
    devices: tuple[Device, ...]
    transfer: TransferPath

    def __post_init__(self) -> None:
        require(len(self.devices) >= 1, "a device set needs at least one device")
        for i, d in enumerate(self.devices):
            require(d.index == i, f"device {d.name} index {d.index} != position {i}")

    @classmethod
    def from_element(
        cls,
        spec: Optional[ElementSpec] = None,
        name: str = "element",
        faults=None,
    ) -> "DeviceSet":
        """Flatten *spec* (default: the TianHe-1 E5540 element) into devices.

        *faults* (a :class:`~repro.faults.spec.FaultSpec`) threads GPU
        dropouts through: a dropout at t <= 0 removes the GPU entirely, a
        later one sets its ``alive_until``.
        """
        spec = spec if spec is not None else tianhe1_element()
        gpu_dies_at = math.inf
        if faults is not None:
            for dropout in getattr(faults, "dropouts", ()) or ():
                gpu_dies_at = min(gpu_dies_at, dropout.at)
        devices: list[Device] = []
        for core in spec.compute_core_indices:
            devices.append(
                Device(
                    index=len(devices),
                    kind="cpu",
                    name=f"cpu{core}",
                    memory_domain="host",
                    peak_flops=spec.cpu.core_peak_flops,
                    efficiency=spec.cpu.dgemm_efficiency,
                    task_overhead_s=CPU_TASK_OVERHEAD_S,
                )
            )
        if gpu_dies_at > 0:
            devices.append(
                Device(
                    index=len(devices),
                    kind="gpu",
                    name=spec.gpu.name.lower(),
                    memory_domain="gpu0",
                    peak_flops=spec.gpu.peak_flops(spec.gpu_clock_mhz),
                    efficiency=spec.gpu.eff_max,
                    w_half=spec.gpu.w_half,
                    task_overhead_s=spec.gpu.kernel_launch_overhead,
                    alive_until=gpu_dies_at,
                )
            )
        return cls(
            name=name,
            devices=tuple(devices),
            transfer=TransferPath(
                bandwidth=spec.pcie.pinned_bw, latency=spec.pcie.latency
            ),
        )

    @property
    def cpus(self) -> tuple[Device, ...]:
        return tuple(d for d in self.devices if d.kind == "cpu")

    @property
    def gpus(self) -> tuple[Device, ...]:
        return tuple(d for d in self.devices if d.kind == "gpu")

    def alive(self, time: float) -> tuple[Device, ...]:
        """Devices still alive at virtual *time*."""
        return tuple(d for d in self.devices if d.alive_at(time))

    def comm_time(self, nbytes: float, src_domain: str, dst_domain: str) -> float:
        """Transfer time for *nbytes* between two memory domains."""
        if src_domain == dst_domain:
            return 0.0
        return self.transfer.time(nbytes)
