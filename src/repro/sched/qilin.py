"""Train-then-fix mapping modeled on Qilin (Luk, Hong & Kim, MICRO'09).

Qilin "first needs to conduct a training step and does not tune the mapping
when running" (Section II).  The mapper below is fed observations during an
explicit *training phase* using the same update mathematics as the adaptive
mapper; once :meth:`freeze` is called the databases never change again, so
any drift between training conditions and run conditions (thermal warm-up,
jitter, neighbours) turns into load imbalance.

The class also carries the paper's training-cost accounting (Section VI.C):
two hours per cabinet at 18.5 kW is 37 kWh per cabinet, 2 960 kWh for the
full 80-cabinet system — the energy argument against training at petascale.
"""

from __future__ import annotations

from repro.sched.adaptive import AdaptiveMapper, Observation
from repro.util.validation import require, require_nonnegative


class QilinMapper(AdaptiveMapper):
    """Adaptive updates during training; frozen at run time."""

    name = "qilin"
    adapts_at_runtime = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._frozen = False
        self.training_seconds = 0.0
        self.training_observations = 0

    @property
    def frozen(self) -> bool:
        """True once training has finished."""
        return self._frozen

    def observe(self, obs: Observation) -> None:
        """Training observations update the databases; run-time ones do not."""
        if self._frozen:
            return
        self.training_observations += 1
        super().observe(obs)

    def record_training_time(self, seconds: float) -> None:
        """Accumulate wall time spent in the training phase."""
        require(not self._frozen, "training already finished")
        require_nonnegative(seconds, "seconds")
        self.training_seconds += seconds

    def freeze(self) -> None:
        """End the training phase; mappings are fixed from here on."""
        self._frozen = True

    def training_energy_kwh(self, power_kw: float) -> float:
        """Energy burned by training at the given machine power draw.

        With the paper's numbers (2 h at 18.5 kW per cabinet) this returns
        the 37 kWh/cabinet figure of Section VI.C.
        """
        require_nonnegative(power_kw, "power_kw")
        return power_kw * self.training_seconds / 3600.0

    @property
    def total_overhead_seconds(self) -> float:
        """Run-time overhead is zero; the cost was paid up front in training."""
        return 0.0 if self._frozen else super().total_overhead_seconds
