"""Name-based scheduler registry plus the ambient scheduler context.

The registry maps stable names to :class:`~repro.sched.base.Scheduler`
factories.  Legacy :class:`~repro.hpl.driver.Configuration` keys register as
*aliases*: ``"acmlg_both"`` resolves to the ``adaptive`` scheduler while
keeping its own name (and its exact historical
:class:`~repro.hpl.analytic.AnalyticConfig` build, see
:mod:`repro.sched.builds`), so golden traces, result labels and cache keys
are byte-stable across the migration.

The ambient context mirrors :mod:`repro.exec.policy` and :mod:`repro.obs`::

    import repro.sched as sched

    with sched.use("heft"):
        ...               # sched.current() -> "heft" inside the block

``current()`` returns :data:`DEFAULT_SCHEDULER` when no ``use`` block is
active, so a :class:`~repro.session.Scenario` built without an explicit
``scheduler=`` runs the paper's full framework.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Union

from repro.sched.base import Scheduler
from repro.util.validation import require

#: The scheduler a Scenario uses when neither ``scheduler=`` nor an ambient
#: ``use(...)`` block names one: the paper's full framework.
DEFAULT_SCHEDULER = "adaptive"


@dataclass(frozen=True)
class SchedulerInfo:
    """One registry entry: a named scheduler factory plus its capabilities."""

    name: str
    description: str
    factory: Callable[[], Scheduler] = field(repr=False)
    source: str = "paper"  # "paper" | "extension"
    supports_hpl: bool = False
    supports_dag: bool = False
    adapts_at_runtime: bool = False


_REGISTRY: dict[str, SchedulerInfo] = {}
#: Legacy configuration name -> canonical scheduler name.
_ALIASES: dict[str, str] = {}


def register(info: SchedulerInfo, aliases: tuple[str, ...] = ()) -> SchedulerInfo:
    """Add *info* under its name (plus legacy *aliases*); idempotent re-adds."""
    existing = _REGISTRY.get(info.name)
    require(
        existing is None or existing == info,
        f"scheduler {info.name!r} already registered with different metadata",
    )
    _REGISTRY[info.name] = info
    for alias in aliases:
        require(
            _ALIASES.get(alias, info.name) == info.name,
            f"alias {alias!r} already points at {_ALIASES.get(alias)!r}",
        )
        _ALIASES[alias] = info.name
    return info


def names() -> list[str]:
    """Canonical scheduler names, registration order."""
    _ensure_builtin()
    return list(_REGISTRY)


def aliases() -> dict[str, str]:
    """Legacy-name -> canonical-name mapping (the Configuration keys)."""
    _ensure_builtin()
    return dict(_ALIASES)


def canonical_name(name: str) -> str:
    """Resolve *name* (canonical or alias) to its canonical registry name."""
    _ensure_builtin()
    resolved = _ALIASES.get(name, name)
    if resolved not in _REGISTRY:
        valid = ", ".join(list(_REGISTRY) + sorted(_ALIASES))
        raise ValueError(
            f"unknown scheduler {name!r}; valid schedulers/aliases: {valid}"
        )
    return resolved


def get(name: str) -> SchedulerInfo:
    """The :class:`SchedulerInfo` for *name* (aliases resolve)."""
    return _REGISTRY[canonical_name(name)]


def create(name: str) -> Scheduler:
    """A fresh scheduler instance for *name* (aliases resolve)."""
    return get(name).factory()


def resolve_name(spec: "Union[str, Scheduler]") -> str:
    """Validate *spec* into a scheduler name, preserving alias spellings.

    Strings (including legacy :class:`~repro.hpl.driver.Configuration`
    members, which are ``str`` subclasses) are validated against the
    registry but returned *as given* — ``"acmlg_both"`` stays
    ``"acmlg_both"`` so downstream labels and cache keys are unchanged.
    Scheduler instances resolve to their ``name``.
    """
    if isinstance(spec, Scheduler):
        return spec.name
    name = str(spec)
    canonical_name(name)  # raises on unknown names
    return name


def describe() -> list[dict]:
    """One row per canonical scheduler for ``python -m repro.sched list``."""
    _ensure_builtin()
    rows = []
    for info in _REGISTRY.values():
        entry_aliases = sorted(a for a, c in _ALIASES.items() if c == info.name)
        rows.append(
            {
                "name": info.name,
                "description": info.description,
                "source": info.source,
                "hpl": info.supports_hpl,
                "dag": info.supports_dag,
                "adaptive": info.adapts_at_runtime,
                "aliases": entry_aliases,
            }
        )
    return rows


def _ensure_builtin() -> None:
    """Import the built-in scheduler modules (registration side effects)."""
    from repro.sched import mappers, heft, affinity, hesp  # noqa: F401


# -- ambient context -------------------------------------------------------

_STACK: list["Union[str, Scheduler]"] = []


def current() -> "Union[str, Scheduler]":
    """The innermost ambient scheduler spec (default: ``"adaptive"``)."""
    return _STACK[-1] if _STACK else DEFAULT_SCHEDULER


@contextmanager
def use(spec: "Optional[Union[str, Scheduler]]") -> Iterator[None]:
    """Install *spec* as the ambient scheduler for the ``with`` block.

    ``use(None)`` is a no-op context (mirrors ``exec.use``/``obs.use``), so
    call sites can thread an optional scheduler without branching.
    """
    if spec is None:
        yield
        return
    resolve_name(spec)  # validate before installing
    _STACK.append(spec)
    try:
        yield
    finally:
        _STACK.pop()
