"""Entry point for ``python -m repro.sched``."""

import sys

from repro.sched.cli import main

sys.exit(main())
