"""Task-DAG workload generators: tiled Cholesky, tiled LU, mixed kernel stream.

These open the machine model to non-HPL work (the ROADMAP's "scheduler zoo +
non-HPL workloads" item).  Each workload builds deterministic
:class:`~repro.sched.dag.TaskGraph` instances; :meth:`Workload.variants`
returns the same computation at several tile granularities, which is the
search space a HeSP-style scheduler optimises over (arXiv 1602.05510: the
partitioning decision is part of the scheduling problem).

Kernel costs use the textbook flop counts on ``b``-sized tiles:

* Cholesky: ``potrf`` b³/3, ``trsm`` b³, ``syrk`` b³, ``gemm`` 2b³.
* LU (tiled, no pivoting across tiles): ``getrf`` 2b³/3, ``trsm`` b³,
  ``gemm`` 2b³.
* Mixed stream: an inference-style sequence of small kernels in R parallel
  chains — a few large ``gemm`` tasks among many small ``conv``/``norm``
  tasks, sized so neither a pure-GPU nor a pure-CPU placement wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.sched.dag import DagTask, TaskGraph
from repro.util.units import DOUBLE_BYTES
from repro.util.validation import require


def tiled_cholesky(n_tiles: int = 6, tile: int = 2048) -> TaskGraph:
    """The tiled Cholesky DAG on an ``n_tiles`` x ``n_tiles`` tile grid."""
    require(n_tiles >= 1, "n_tiles must be >= 1")
    require(tile >= 1, "tile must be >= 1")
    b3 = float(tile) ** 3
    tile_bytes = tile * tile * DOUBLE_BYTES
    tasks: list[DagTask] = []

    def add(tid: str, kind: str, flops: float, deps: Sequence[str]) -> None:
        tasks.append(
            DagTask(id=tid, kind=kind, flops=flops, out_bytes=tile_bytes, deps=tuple(deps))
        )

    for k in range(n_tiles):
        deps = [f"syrk_{k}_{k}_{k-1}"] if k > 0 else []
        add(f"potrf_{k}", "potrf", b3 / 3.0, deps)
        for i in range(k + 1, n_tiles):
            deps = [f"potrf_{k}"]
            if k > 0:
                deps.append(f"gemm_{i}_{k}_{k-1}")
            add(f"trsm_{i}_{k}", "trsm", b3, deps)
        for i in range(k + 1, n_tiles):
            deps = [f"trsm_{i}_{k}"]
            if k > 0:
                deps.append(f"syrk_{i}_{i}_{k-1}")
            add(f"syrk_{i}_{i}_{k}", "syrk", b3, deps)
            for j in range(k + 1, i):
                deps = [f"trsm_{i}_{k}", f"trsm_{j}_{k}"]
                if k > 0:
                    deps.append(f"gemm_{i}_{j}_{k-1}")
                add(f"gemm_{i}_{j}_{k}", "gemm", 2.0 * b3, deps)
    return TaskGraph(
        name=f"cholesky[{n_tiles}x{n_tiles},b={tile}]",
        tasks=tuple(tasks),
        meta={"workload": "cholesky", "n_tiles": n_tiles, "tile": tile},
    )


def tiled_lu(n_tiles: int = 6, tile: int = 2048) -> TaskGraph:
    """The tiled LU DAG (block factorization without cross-tile pivoting)."""
    require(n_tiles >= 1, "n_tiles must be >= 1")
    require(tile >= 1, "tile must be >= 1")
    b3 = float(tile) ** 3
    tile_bytes = tile * tile * DOUBLE_BYTES
    tasks: list[DagTask] = []

    def add(tid: str, kind: str, flops: float, deps: Sequence[str]) -> None:
        tasks.append(
            DagTask(id=tid, kind=kind, flops=flops, out_bytes=tile_bytes, deps=tuple(deps))
        )

    for k in range(n_tiles):
        deps = [f"gemm_{k}_{k}_{k-1}"] if k > 0 else []
        add(f"getrf_{k}", "getrf", 2.0 * b3 / 3.0, deps)
        for i in range(k + 1, n_tiles):
            deps_r = [f"getrf_{k}"]
            deps_c = [f"getrf_{k}"]
            if k > 0:
                deps_r.append(f"gemm_{k}_{i}_{k-1}")
                deps_c.append(f"gemm_{i}_{k}_{k-1}")
            add(f"trsm_r_{k}_{i}", "trsm", b3, deps_r)  # row panel U
            add(f"trsm_c_{i}_{k}", "trsm", b3, deps_c)  # column panel L
        for i in range(k + 1, n_tiles):
            for j in range(k + 1, n_tiles):
                deps = [f"trsm_c_{i}_{k}", f"trsm_r_{k}_{j}"]
                if k > 0:
                    deps.append(f"gemm_{i}_{j}_{k-1}")
                add(f"gemm_{i}_{j}_{k}", "gemm", 2.0 * b3, deps)
    return TaskGraph(
        name=f"lu[{n_tiles}x{n_tiles},b={tile}]",
        tasks=tuple(tasks),
        meta={"workload": "lu", "n_tiles": n_tiles, "tile": tile},
    )


def mixed_stream(chains: int = 8, depth: int = 6, big_every: int = 3) -> TaskGraph:
    """An inference-style stream: parallel chains of small kernels + big GEMMs.

    Every ``big_every``-th stage of a chain is a large ``gemm`` (GPU
    territory); the rest are small ``conv``/``norm`` kernels whose launch
    overhead makes them CPU territory.  A final ``reduce`` joins the chains.
    """
    require(chains >= 1 and depth >= 1, "chains and depth must be >= 1")
    small_flops = 2.0e8  # ~0.2 Gflop conv tile
    norm_flops = 4.0e7
    big_flops = 2.0 * 3072.0**3  # one large GEMM
    small_bytes = 512 * 512 * DOUBLE_BYTES
    big_bytes = 3072 * 3072 * DOUBLE_BYTES
    tasks: list[DagTask] = []
    heads: list[str] = []
    for c in range(chains):
        prev: tuple[str, ...] = ()
        for d in range(depth):
            tid = f"c{c}_s{d}"
            if big_every > 0 and d % big_every == big_every - 1:
                kind, flops, out = "gemm", big_flops, big_bytes
            elif d % 2 == 0:
                kind, flops, out = "conv", small_flops, small_bytes
            else:
                kind, flops, out = "norm", norm_flops, small_bytes
            tasks.append(DagTask(id=tid, kind=kind, flops=flops, out_bytes=out, deps=prev))
            prev = (tid,)
        heads.append(prev[0])
    tasks.append(
        DagTask(id="reduce", kind="reduce", flops=norm_flops, out_bytes=small_bytes,
                deps=tuple(heads))
    )
    return TaskGraph(
        name=f"stream[{chains}x{depth}]",
        tasks=tuple(tasks),
        meta={"workload": "stream", "chains": chains, "depth": depth},
    )


@dataclass(frozen=True)
class Workload:
    """A named workload with a default graph plus partitioning variants."""

    name: str
    description: str
    build: Callable[[], TaskGraph] = field(repr=False)
    #: Alternative granularities of the same computation (HeSP search space).
    variant_builds: tuple[Callable[[], TaskGraph], ...] = field(
        default=(), repr=False
    )

    def graph(self) -> TaskGraph:
        return self.build()

    def variants(self, devices=None) -> list[TaskGraph]:
        """Every granularity, default first (at least one entry)."""
        graphs = [self.build()]
        graphs.extend(b() for b in self.variant_builds)
        return graphs


def _cholesky_workload(n_tiles: int, tile: int) -> Workload:
    total = n_tiles * tile
    return Workload(
        name="cholesky",
        description=f"tiled Cholesky factorization of a {total}x{total} matrix",
        build=lambda: tiled_cholesky(n_tiles, tile),
        variant_builds=tuple(
            (lambda t=t: tiled_cholesky(max(1, total // t), t))
            for t in _variant_tiles(tile)
        ),
    )


def _lu_workload(n_tiles: int, tile: int) -> Workload:
    total = n_tiles * tile
    return Workload(
        name="lu",
        description=f"tiled LU factorization of a {total}x{total} matrix",
        build=lambda: tiled_lu(n_tiles, tile),
        variant_builds=tuple(
            (lambda t=t: tiled_lu(max(1, total // t), t)) for t in _variant_tiles(tile)
        ),
    )


def _variant_tiles(tile: int) -> tuple[int, ...]:
    """Coarser and finer granularities around the default tile size."""
    return (tile * 2, tile // 2)


def _stream_workload(chains: int, depth: int) -> Workload:
    return Workload(
        name="stream",
        description=f"mixed small-kernel inference stream ({chains} chains x {depth})",
        build=lambda: mixed_stream(chains, depth),
    )


def standard_workloads(quick: bool = False) -> dict[str, Workload]:
    """The tournament's workload catalogue (smaller graphs under *quick*)."""
    if quick:
        return {
            "cholesky": _cholesky_workload(4, 2048),
            "lu": _lu_workload(4, 2048),
            "stream": _stream_workload(6, 6),
        }
    return {
        "cholesky": _cholesky_workload(8, 2048),
        "lu": _lu_workload(8, 2048),
        "stream": _stream_workload(12, 9),
    }
