"""Saving and restoring the mapping databases.

Section IV.B: "The new mapping is the next initial mapping for a program,
whose problem size is in the same range as the problem size of that
program" — i.e. ``database_g``/``database_c`` outlive a single execution.
This module serialises a mapper's databases to JSON so a later run (or a
later process) starts from the learned mappings instead of the peak ratio,
which is exactly how the paper's Fig. 8 "second run" numbers arise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.adaptive import AdaptiveMapper
from repro.util.io import atomic_write_text
from repro.util.validation import require

FORMAT_VERSION = 1


def mapper_state(mapper: AdaptiveMapper) -> dict:
    """The mapper's databases as a JSON-serialisable dict."""
    db_g = mapper.database_g
    return {
        "version": FORMAT_VERSION,
        "database_g": {
            "n_bins": db_g.n_bins,
            "max_workload": db_g.max_workload,
            "initial": db_g.initial,
            "values": db_g.values().tolist(),
            "written": db_g.written_mask().tolist(),
        },
        "database_c": {
            "n_cores": mapper.database_c.n_cores,
            "values": mapper.database_c.lookup().tolist(),
        },
        "min_gsplit": mapper.min_gsplit,
        "min_csplit": mapper.min_csplit,
        "updates": mapper.updates,
    }


def restore_mapper(state: dict, telemetry=None) -> AdaptiveMapper:
    """Rebuild an :class:`AdaptiveMapper` from :func:`mapper_state` output.

    Telemetry is deliberately *not* part of the persisted state: metrics
    describe a live process, not the learned databases.  Pass *telemetry* to
    start instrumenting the restored mapper; its counters/series begin at
    whatever the supplied registry already holds (reset it explicitly with
    ``telemetry.metrics.reset()`` for a clean slate) while ``updates`` —
    part of the learned state — is restored from the file.  No silent
    half-state either way.
    """
    require(state.get("version") == FORMAT_VERSION,
            f"unsupported mapper state version {state.get('version')!r}")
    g = state["database_g"]
    c = state["database_c"]
    mapper = AdaptiveMapper(
        initial_gsplit=g["initial"],
        n_cores=c["n_cores"],
        max_workload=g["max_workload"],
        n_bins=g["n_bins"],
        min_gsplit=state["min_gsplit"],
        min_csplit=state["min_csplit"],
        telemetry=telemetry,
    )
    mapper.database_g._values = np.asarray(g["values"], dtype=float)
    mapper.database_g._written = np.asarray(g["written"], dtype=bool)
    require(mapper.database_g._values.shape == (g["n_bins"],), "corrupt database_g values")
    mapper.database_c.store(np.asarray(c["values"], dtype=float))
    mapper.database_c.history.clear()  # restoring is not an observed update
    mapper.updates = int(state["updates"])
    return mapper


def save_mapper(mapper: AdaptiveMapper, path: Union[str, Path]) -> Path:
    """Write the mapper's databases to *path* as JSON, atomically.

    The payload goes through :func:`repro.util.io.atomic_write_text`
    (same-directory temp + ``os.replace``), so a crash mid-write leaves
    either the old file or the new one — never a truncated database.  The
    learned ``database_g``/``database_c`` state is exactly what the paper's
    "second run" numbers depend on; corrupting it would silently cost the
    warm start.
    """
    return atomic_write_text(path, json.dumps(mapper_state(mapper), indent=2))


def load_mapper(path: Union[str, Path], telemetry=None) -> AdaptiveMapper:
    """Read databases previously written by :func:`save_mapper`."""
    return restore_mapper(json.loads(Path(path).read_text()), telemetry=telemetry)
