"""Deprecated location: persistence moved to :mod:`repro.sched.persistence`.

This shim re-exports the registry-aware implementation so existing imports
keep working.  New code should import from :mod:`repro.sched.persistence`.
"""

from repro.sched.persistence import (
    FORMAT_VERSION,
    LEGACY_FORMAT_VERSION,
    load_mapper,
    load_named,
    mapper_state,
    restore_mapper,
    restore_named,
    save_mapper,
)

__all__ = [
    "FORMAT_VERSION",
    "LEGACY_FORMAT_VERSION",
    "load_mapper",
    "load_named",
    "mapper_state",
    "restore_mapper",
    "restore_named",
    "save_mapper",
]
