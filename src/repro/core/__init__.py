"""The paper's contribution: adaptive two-level task mapping + software pipelining.

* :mod:`repro.core.split` — the two split databases (``database_g`` indexed
  by workload bins, ``database_c`` indexed by core number) of Section IV.B.
* :mod:`repro.core.adaptive` — the two-level adaptive mapper: measure
  ``P = W/T`` at run time, re-split as ``P_G/(P_G+P_C)``.
* :mod:`repro.core.static_map` — the static peak-ratio baseline
  (Fatica-style mapping, what the vendor path uses).
* :mod:`repro.core.qilin` — the train-then-fix baseline modeled on Qilin,
  with the training-cost accounting of Section VI.C.
* :mod:`repro.core.taskqueue` — texture-limit task splitting, bounce-corner-
  turn ordering and GPU-memory residency planning (Section V.C).
* :mod:`repro.core.pipeline` — the CT/NT software pipeline with INPUT and
  fused Execution/Output stages (Section V, Table I).
* :mod:`repro.core.hybrid_dgemm` — the hybrid DGEMM executor combining a
  mapper, the pipeline and a compute element; Fig. 3's two-level partition.
"""

from repro.core.split import CoreSplitDatabase, SplitDatabase
from repro.core.adaptive import AdaptiveMapper, Observation
from repro.core.static_map import StaticMapper
from repro.core.qilin import QilinMapper
from repro.core.taskqueue import GpuTask, TaskQueue, bounce_corner_turn_order, build_task_queue
from repro.core.pipeline import PipelineResult, SoftwarePipeline, SyncExecutor
from repro.core.hybrid_dgemm import HybridDgemm, HybridDgemmResult

__all__ = [
    "SplitDatabase",
    "CoreSplitDatabase",
    "AdaptiveMapper",
    "Observation",
    "StaticMapper",
    "QilinMapper",
    "GpuTask",
    "TaskQueue",
    "bounce_corner_turn_order",
    "build_task_queue",
    "SoftwarePipeline",
    "SyncExecutor",
    "PipelineResult",
    "HybridDgemm",
    "HybridDgemmResult",
]
