"""The hybrid DGEMM executor: mapper x pipeline x compute element.

This is Fig. 3 end to end.  One call:

1. looks up GSplit in the mapper (level 1) and partitions A's rows into
   ``A1`` (GPU) and ``A2`` (CPU);
2. looks up CSplit_i (level 2) and partitions ``A2``'s rows across the
   compute cores;
3. runs the GPU portion through the task queue + (optionally) the software
   pipeline, and the CPU portions concurrently on the cores;
4. measures ``T_G`` (host-visible, transfers included) and every ``T_Ci``,
   and feeds the observation back to the mapper — which, for the adaptive
   mapper, writes the new mappings into both databases.

In numeric mode the same call also performs the real float64 math, so
correctness is testable independently of the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.blas.dgemm import split_rows
from repro.core.adaptive import Observation, update_overhead_seconds
from repro.core.pipeline import (
    NumericContext,
    PipelineResult,
    SoftwarePipeline,
    SyncExecutor,
)
from repro.core.taskqueue import build_task_queue
from repro.machine.node import ComputeElement
from repro.sim import Event
from repro.util.units import dgemm_flops
from repro.util.validation import require


@dataclass
class HybridDgemmResult:
    """Timing of one hybrid DGEMM call."""

    m: int
    n: int
    k: int
    workload: float
    gsplit: float
    m1: int
    core_rows: tuple[int, ...]
    t_total: float
    t_gpu: float
    core_times: tuple[float, ...]
    pipeline: PipelineResult
    mapper_overhead: float

    @property
    def t_cpu(self) -> float:
        """CPU-portion completion: the slowest core."""
        return max(self.core_times) if self.core_times else 0.0

    @property
    def gflops(self) -> float:
        """Achieved whole-call rate in GFLOPS."""
        return self.workload / self.t_total / 1e9 if self.t_total > 0 else 0.0


class HybridDgemm:
    """Reusable hybrid-DGEMM engine bound to one compute element and mapper."""

    def __init__(
        self,
        element: ComputeElement,
        mapper,
        pipelined: bool = True,
        pinned: bool = True,
        reuse: bool = True,
        eo_block_rows: int = 512,
        input_chunk_bytes: float = 64e6,
        record_states: bool = False,
        jitter: bool = True,
        enforce_gpu_memory: bool = True,
        telemetry=None,
    ) -> None:
        self.element = element
        self.sim = element.sim
        self.mapper = mapper
        self.pipelined = pipelined
        self.pinned = pinned
        self.reuse = reuse
        self.jitter = jitter
        self.enforce_gpu_memory = enforce_gpu_memory
        executor_cls = SoftwarePipeline if pipelined else SyncExecutor
        self.executor = executor_cls(
            element,
            pinned=pinned,
            eo_block_rows=eo_block_rows,
            input_chunk_bytes=input_chunk_bytes,
            record_states=record_states,
            jitter=jitter,
            telemetry=telemetry,
        )
        #: Shared with the executor (which defaults it from the element).
        self.telemetry = self.executor.telemetry

    # -- DES process --------------------------------------------------------------
    def run(
        self,
        m: int,
        n: int,
        k: int,
        beta_nonzero: bool = True,
        a: Optional[np.ndarray] = None,
        b: Optional[np.ndarray] = None,
        c: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 1.0,
    ) -> Generator[Event, Any, HybridDgemmResult]:
        """DES process body for one call ``C[m,n] (+)= alpha A[m,k] B[k,n] + beta C``.

        Pass *a*, *b*, *c* for numeric mode (*c* is updated in place); leave
        them ``None`` for pure performance simulation.
        """
        numeric = a is not None
        if numeric:
            require(b is not None and c is not None, "numeric mode needs a, b and c")
            require(a.shape == (m, k), f"A shape {a.shape} != {(m, k)}")
            require(b.shape == (k, n), f"B shape {b.shape} != {(k, n)}")
            require(c.shape == (m, n), f"C shape {c.shape} != {(m, n)}")
            beta_nonzero = beta != 0.0

        sim = self.sim
        element = self.element
        workload = dgemm_flops(m, n, k)
        gsplit = self.mapper.gsplit(workload)
        m1, m2 = split_rows(m, [gsplit, 1.0 - gsplit])
        csplits = self.mapper.csplits()
        cores = element.compute_cores
        require(
            len(csplits) == len(cores),
            f"mapper has {len(csplits)} core splits, element has {len(cores)} compute cores",
        )
        core_rows = split_rows(m2, list(csplits))

        queue = build_task_queue(
            m1,
            n,
            k,
            texture_limit=element.spec.gpu.max_texture_dim,
            reuse=self.reuse,
            beta_nonzero=beta_nonzero,
            gpu_memory_bytes=(
                element.spec.gpu.local_memory_bytes if self.enforce_gpu_memory else None
            ),
            eo_block_rows=self.executor.eo_block_rows,
            telemetry=self.telemetry,
        )
        w_gpu = dgemm_flops(m1, n, k)
        rate = element.gpu.kernel_rate(w_gpu) if w_gpu > 0 else None

        gpu_numeric = None
        if numeric and m1 > 0:
            gpu_numeric = NumericContext(
                a1=a[:m1, :], b=b, c1=c[:m1, :], alpha=alpha, beta=beta
            )

        start = sim.now
        waits: list[Event] = []
        gpu_proc: Optional[Event] = None
        hybrid = len(queue) > 0
        if hybrid:
            element.begin_hybrid()
            gpu_proc = sim.process(
                self.executor.execute(queue, rate, gpu_numeric), name="gpu.portion"
            )
            waits.append(gpu_proc)

        core_procs: list[Event] = []
        row_offset = m1
        for core, rows in zip(cores, core_rows):
            a2 = a[row_offset : row_offset + rows, :] if numeric else None
            c2 = c[row_offset : row_offset + rows, :] if numeric else None
            proc = sim.process(
                self._core_work(core, rows, n, k, a2, b, c2, alpha, beta),
                name=f"cpu.{core.name}",
            )
            core_procs.append(proc)
            waits.append(proc)
            row_offset += rows

        if waits:
            yield sim.all_of(waits)
        if hybrid:
            element.end_hybrid()
        t_gpu = float(gpu_proc.value.duration) if gpu_proc is not None else 0.0
        core_times = tuple(float(p.value) for p in core_procs)

        # Step 2 of both levels: measure, recompute, store (Section IV.B).
        obs = Observation(
            workload=workload,
            gpu_workload=w_gpu,
            gpu_time=t_gpu,
            core_workloads=tuple(dgemm_flops(rows, n, k) for rows in core_rows),
            core_times=core_times,
        )
        self.mapper.observe(obs)
        overhead = update_overhead_seconds() if self.mapper.adapts_at_runtime else 0.0
        if overhead > 0:
            yield sim.timeout(overhead)

        pipeline_result = (
            gpu_proc.value
            if gpu_proc is not None
            else PipelineResult(0.0, 0.0, 0.0, 0.0, 0)
        )
        return HybridDgemmResult(
            m=m,
            n=n,
            k=k,
            workload=workload,
            gsplit=gsplit,
            m1=m1,
            core_rows=tuple(core_rows),
            t_total=sim.now - start,
            t_gpu=t_gpu,
            core_times=core_times,
            pipeline=pipeline_result,
            mapper_overhead=overhead,
        )

    def _core_work(
        self,
        core,
        rows: int,
        n: int,
        k: int,
        a2: Optional[np.ndarray],
        b: Optional[np.ndarray],
        c2: Optional[np.ndarray],
        alpha: float,
        beta: float,
    ) -> Generator[Event, Any, float]:
        start = self.sim.now
        flops = dgemm_flops(rows, n, k)
        if flops > 0:
            yield core.compute(flops, jitter=self.jitter)
            if a2 is not None and rows > 0:
                block = a2 @ b
                if beta == 0.0:
                    c2[...] = alpha * block
                else:
                    c2 *= beta
                    c2 += alpha * block
        return self.sim.now - start

    # -- convenience ---------------------------------------------------------------
    def run_to_completion(self, *args, **kwargs) -> HybridDgemmResult:
        """Run one call on a fresh slice of simulated time and return the result."""
        return self.sim.run(until=self.sim.process(self.run(*args, **kwargs)))


def cpu_only_dgemm(
    element: ComputeElement,
    m: int,
    n: int,
    k: int,
    jitter: bool = True,
) -> Generator[Event, Any, float]:
    """DES process: DGEMM on all four CPU cores (the "CPU"/MKL configuration).

    No transfer core is reserved — a host-only run uses the whole socket.
    Returns the elapsed time; an even row split models MKL's own scheduling.
    """
    sim = element.sim
    cores = element.all_cores
    rows = split_rows(m, [1.0 / len(cores)] * len(cores))
    start = sim.now
    procs = [
        sim.process(_plain_core(core, dgemm_flops(r, n, k), jitter)) for core, r in zip(cores, rows)
    ]
    yield sim.all_of(procs)
    return sim.now - start


def _plain_core(core, flops: float, jitter: bool) -> Generator[Event, Any, None]:
    if flops > 0:
        yield core.compute(flops, jitter=jitter)
