"""Deprecated location: the Qilin mapper moved to :mod:`repro.sched.qilin`.

This shim re-exports the public names so existing imports keep working;
new code should import from :mod:`repro.sched`.
"""

from repro.sched.qilin import QilinMapper

__all__ = ["QilinMapper"]
