"""Deprecated location: the split databases moved to :mod:`repro.sched.split`.

This shim re-exports the public names so existing imports keep working;
new code should import from :mod:`repro.sched`.
"""

from repro.sched.split import CoreSplitDatabase, SplitDatabase, SplitWrite

__all__ = ["SplitDatabase", "CoreSplitDatabase", "SplitWrite"]
