"""Deprecated location: the adaptive mapper moved to :mod:`repro.sched.adaptive`.

This shim re-exports the public names so existing imports keep working;
new code should import from :mod:`repro.sched`.
"""

from repro.sched.adaptive import (
    AdaptiveMapper,
    Observation,
    converged_gsplit,
    floor_normalize,
    update_overhead_seconds,
)

__all__ = [
    "AdaptiveMapper",
    "Observation",
    "converged_gsplit",
    "floor_normalize",
    "update_overhead_seconds",
]
