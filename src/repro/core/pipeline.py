"""Software pipelining of the GPU task queue (Section V).

Two controller objects manage the queue exactly as the paper describes:

* **CT (Current Task)** — states ``IDLE -> INPUT -> EO``.  The INPUT state is
  the pipeline prologue; the fused Execution/Output (EO) stage runs the
  kernel in H-row blocks, writing results alternately into the CB0/CB1
  buffers so each block's output transfer overlaps the next block's kernel
  (Fig. 6).
* **NT (Next Task)** — states ``N-IDLE -> N-INPUT``.  While CT is in EO, NT
  stages the following task's input blocks, so from the second task onward
  input time is hidden (Fig. 7 / Table I).

All transfers (CT outputs and NT inputs) flow through the element's single
PCIe path, which serialises them FIFO — the "one thread dedicated to
transfer" constraint that motivates splitting the input phase into blocks.

:class:`SyncExecutor` is the unpipelined counterpart (vendor-library
behaviour): input, kernel and output strictly serial per task.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

import numpy as np

from repro.core.taskqueue import GpuTask, TaskQueue
from repro.faults.injector import FaultInjector
from repro.faults.spec import DegradedMode, PcieTransferError
from repro.machine.node import ComputeElement
from repro.obs.telemetry import current as _ambient_telemetry
from repro.sim import Event
from repro.util.validation import require, require_positive

#: CT states (Section V.C).
IDLE, INPUT, EO = "Idle", "Input", "EO"
#: NT states.
N_IDLE, N_INPUT = "N-Idle", "N-Input"


@dataclass(frozen=True)
class StateRecord:
    """One controller state transition — the raw material of Table I."""

    time: float
    controller: str  # "CT" | "NT"
    state: str
    task: Optional[int]  # task index, None when the queue is exhausted


@dataclass
class NumericContext:
    """Real-array side of the GPU portion (numeric mode).

    ``a1`` is the GPU's row slice of A, ``b`` the full B, ``c1`` the GPU's
    row slice of C (updated in place with ``alpha``/``beta`` semantics).
    """

    a1: np.ndarray
    b: np.ndarray
    c1: np.ndarray
    alpha: float = 1.0
    beta: float = 1.0


@dataclass
class PipelineResult:
    """Timing and traffic of one task-queue execution on the GPU path."""

    duration: float
    kernel_time: float
    input_bytes: float
    output_bytes: float
    n_tasks: int
    state_log: list[StateRecord] = field(default_factory=list)
    #: PCIe transfers retried under an injected fault (0 on clean runs).
    retries: int = 0
    #: Fault summary for this execution; ``None`` means no fault was seen.
    degraded: Optional[DegradedMode] = None

    def stage_occupancy(self) -> dict[str, float]:
        """Fraction of the execution each CT/NT state occupied.

        Computed from ``state_log`` (so it needs ``record_states=True`` or an
        attached telemetry): per controller, each state runs from its record
        until the controller's next record; the last state of each controller
        runs to the log horizon.  This is Table I's column-occupancy view —
        e.g. a well-overlapped queue shows Input occupying only the prologue.
        """
        if not self.state_log:
            return {}
        horizon = max(rec.time for rec in self.state_log)
        start = min(rec.time for rec in self.state_log)
        span = horizon - start
        if span <= 0:
            return {}
        per_ctrl: dict[str, list[StateRecord]] = {}
        for rec in self.state_log:
            per_ctrl.setdefault(rec.controller, []).append(rec)
        totals: dict[str, float] = {}
        for recs in per_ctrl.values():
            for cur, nxt in zip(recs, recs[1:]):
                totals[cur.state] = totals.get(cur.state, 0.0) + (nxt.time - cur.time)
            last = recs[-1]
            totals[last.state] = totals.get(last.state, 0.0) + (horizon - last.time)
        return {state: total / span for state, total in totals.items()}

    def schedule_rows(self) -> list[dict[str, str]]:
        """Table-I-shaped rows: one per state change, T<i> in the state column."""
        rows = []
        current = {IDLE: "", INPUT: "", EO: "", N_IDLE: "", N_INPUT: ""}
        for rec in self.state_log:
            for col in ([IDLE, INPUT, EO] if rec.controller == "CT" else [N_IDLE, N_INPUT]):
                current[col] = ""
            if rec.task is not None:
                current[rec.state] = f"T{rec.task}"
            rows.append(dict(current))
        return rows


class _ExecutorBase:
    """Shared plumbing: transfers, kernels, numeric block updates."""

    def __init__(
        self,
        element: ComputeElement,
        pinned: bool = True,
        eo_block_rows: int = 512,
        input_chunk_bytes: float = 64e6,
        record_states: bool = False,
        jitter: bool = True,
        tracer=None,
        telemetry=None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        require_positive(eo_block_rows, "eo_block_rows")
        require_positive(input_chunk_bytes, "input_chunk_bytes")
        self.element = element
        self.sim = element.sim
        self.pinned = pinned
        self.eo_block_rows = eo_block_rows
        self.input_chunk_bytes = input_chunk_bytes
        self.record_states = record_states
        self.jitter = jitter
        #: Optional :class:`repro.faults.FaultInjector`; when its spec has a
        #: PCIe fault window, every transfer runs through the bounded
        #: retry+backoff policy of :meth:`_pcie_transfer`.
        self.faults = fault_injector
        self._retries = 0
        #: Optional :class:`repro.sim.Tracer`; when set, each task's input
        #: and EO stages are recorded as intervals (renderable as a Gantt).
        self.tracer = tracer if tracer is not None else element.tracer
        #: Optional :class:`repro.obs.Telemetry`; when set, CT/NT states and
        #: per-task stages are emitted as spans (one Chrome-trace thread per
        #: controller/task under the element's process) and execution
        #: counters/occupancy land in the metrics registry.  Defaults to the
        #: element's telemetry, then the ambient :func:`repro.obs.current`.
        if telemetry is None:
            telemetry = getattr(element, "telemetry", None)
        if telemetry is None:
            telemetry = _ambient_telemetry()
        self.telemetry = telemetry
        #: The GPU this executor launches kernels on.  Defaults to the
        #: element's (only) chip; a dual-GPU driver binds one executor per
        #: chip while both share the element's PCIe link.
        self.gpu = element.gpu
        self._log: list[StateRecord] = []
        self._span_open: dict[str, tuple[str, Optional[int], float]] = {}

    def _trace(self, method: str, task: GpuTask, phase: str) -> None:
        if self.tracer is not None:
            getattr(self.tracer, method)(f"T{task.index}", phase)
        if self.telemetry is not None:
            sink = self.telemetry.sink
            fn = sink.begin if method == "begin" else sink.end
            fn(f"{self.element.name}/T{task.index}", phase, self.sim.now)

    def _record(self, controller: str, state: str, task: Optional[int]) -> None:
        telemetry = self.telemetry
        if self.record_states or telemetry is not None:
            self._log.append(StateRecord(self.sim.now, controller, state, task))
        if telemetry is not None:
            now = self.sim.now
            prev = self._span_open.get(controller)
            if prev is not None:
                pstate, ptask, pstart = prev
                if now > pstart:
                    telemetry.sink.complete(
                        f"{self.element.name}/{controller}", pstate, pstart, now, task=ptask
                    )
            self._span_open[controller] = (state, task, now)
            telemetry.metrics.counter(
                "pipeline.transitions", "CT/NT controller state changes"
            ).inc(controller=controller, state=state)

    def _finish(self, result: "PipelineResult") -> None:
        """Close open controller spans and publish execution metrics."""
        telemetry = self.telemetry
        if telemetry is None:
            return
        now = self.sim.now
        for controller, (state, task, start) in self._span_open.items():
            if now > start:
                telemetry.sink.complete(
                    f"{self.element.name}/{controller}", state, start, now, task=task
                )
        self._span_open.clear()
        counter = telemetry.metrics.counter
        counter("pipeline.executions", "task-queue executions").inc(executor=self.name)
        counter("pipeline.tasks_executed", "GPU tasks run").inc(result.n_tasks)
        counter("pipeline.kernel_seconds", "virtual seconds in kernels").inc(
            result.kernel_time
        )
        counter("pipeline.busy_seconds", "virtual seconds start-to-drain").inc(
            result.duration
        )
        occupancy = telemetry.metrics.series(
            "pipeline.stage_occupancy", "fraction of an execution per CT/NT state"
        )
        for state, fraction in result.stage_occupancy().items():
            occupancy.append(now, fraction, stage=state, executor=self.name)

    def _pcie_transfer(self, submit) -> Generator[Event, Any, None]:
        """Run one PCIe transfer (re-submitted by *submit*) under faults.

        Without an active PCIe fault window this is a plain wait on the
        transfer event.  Under one, each completed transfer draws from the
        injector's seeded stream; a failed draw is retried after an
        exponentially-growing backoff up to the spec's ``max_retries``, then
        :class:`PcieTransferError` is raised out of the executing process.
        """
        injector = self.faults
        if injector is None or injector.pcie is None:
            yield submit()
            return
        pcie = injector.pcie
        attempt = 0
        while True:
            yield submit()
            if not injector.pcie_transfer_fails(self.sim.now):
                return
            if attempt >= pcie.max_retries:
                injector.record_pcie_exhausted(self.sim.now)
                raise PcieTransferError(
                    f"PCIe transfer on {self.element.name} still failing "
                    f"after {pcie.max_retries} retries"
                )
            injector.record_pcie_retry(self.sim.now)
            self._retries += 1
            yield self.sim.timeout(pcie.backoff_s * pcie.backoff_multiplier**attempt)
            attempt += 1

    def _transfer_in(self, nbytes: float) -> Generator[Event, Any, None]:
        """Stage *nbytes* host -> GPU in chunks (so outputs can interleave)."""
        remaining = float(nbytes)
        while remaining > 0:
            chunk = min(remaining, self.input_chunk_bytes)
            yield from self._pcie_transfer(
                lambda chunk=chunk: self.element.pcie.to_gpu(chunk, pinned=self.pinned)
            )
            remaining -= chunk

    def _input_task(self, task: GpuTask) -> Generator[Event, Any, None]:
        """Stage one task's required operand blocks."""
        if task.input_bytes > 0:
            self._trace("begin", task, "input")
            yield from self._transfer_in(task.input_bytes)
            self._trace("end", task, "input")

    def _kernel_block(
        self,
        task: GpuTask,
        rows: int,
        row_offset: int,
        rate: float,
        numeric: Optional[NumericContext],
    ) -> Generator[Event, Any, None]:
        """Run the kernel for *rows* rows of the task (and the real math)."""
        flops = 2.0 * rows * task.n * task.k
        yield self.gpu.run_kernel(flops, jitter=self.jitter, rate=rate)
        if numeric is not None:
            r0 = task.row_start + row_offset
            r1 = r0 + rows
            c0, c1 = task.col_start, task.col_start + task.n
            k0, k1 = task.k_start, task.k_start + task.k
            block = numeric.a1[r0:r1, k0:k1] @ numeric.b[k0:k1, c0:c1]
            target = numeric.c1[r0:r1, c0:c1]
            if task.is_first_k:
                if numeric.beta == 0.0:
                    target[...] = numeric.alpha * block
                else:
                    target *= numeric.beta
                    target += numeric.alpha * block
            else:
                target += numeric.alpha * block


class SoftwarePipeline(_ExecutorBase):
    """The paper's pipelined executor (CT/NT + fused EO)."""

    name = "pipelined"
    pipelined = True

    def execute(
        self,
        queue: TaskQueue,
        rate: float,
        numeric: Optional[NumericContext] = None,
    ) -> Generator[Event, Any, PipelineResult]:
        """DES process body: run *queue* at the call-level kernel *rate*.

        A single-task queue degenerates to the synchronous path — matching
        the paper's measurement that "the pipeline method has no performance
        benefit when the matrix size N is less than or equal to 8192, since
        only one task is in the queue" (Section VI.B).
        """
        if len(queue) <= 1:
            sync = SyncExecutor(
                self.element,
                pinned=self.pinned,
                eo_block_rows=self.eo_block_rows,
                input_chunk_bytes=self.input_chunk_bytes,
                record_states=self.record_states,
                jitter=self.jitter,
                telemetry=self.telemetry,
                fault_injector=self.faults,
            )
            result = yield from sync.execute(queue, rate, numeric)
            return result
        sim = self.sim
        start = sim.now
        kernel_time = 0.0
        pending_outputs: list[Event] = []
        prefetched: dict[int, Event] = {}
        tasks = queue.tasks
        self._log = []
        self._span_open = {}
        self._retries = 0
        self._record("NT", N_IDLE, 1 if len(tasks) > 1 else None)

        for idx, task in enumerate(tasks):
            self._record("CT", IDLE, task.index)
            ready = prefetched.pop(idx, None)
            if ready is None:
                # Prologue (or a task NT never reached): CT does the input.
                self._record("CT", INPUT, task.index)
                yield from self._input_task(task)
            else:
                yield ready  # usually already complete; otherwise wait it out
            # NT stages the following task while CT executes this one.
            if idx + 1 < len(tasks):
                nxt = tasks[idx + 1]
                self._record("NT", N_INPUT, nxt.index)
                prefetched[idx + 1] = sim.process(
                    self._input_task(nxt), name=f"nt.input.T{nxt.index}"
                )
            self._record("CT", EO, task.index)
            self._trace("begin", task, "eo")
            kernel_before = sim.now
            yield from self._eo_stage(task, rate, pending_outputs, numeric)
            kernel_time += sim.now - kernel_before
            self._trace("end", task, "eo")
        # Pipeline epilogue: drain the remaining output transfers.
        if pending_outputs:
            yield sim.all_of(pending_outputs)
        self._record("CT", IDLE, None)
        result = PipelineResult(
            duration=sim.now - start,
            kernel_time=kernel_time,
            input_bytes=queue.input_bytes,
            output_bytes=queue.output_bytes,
            n_tasks=len(tasks),
            state_log=list(self._log),
            retries=self._retries,
            degraded=self.faults.degraded_mode() if self.faults else None,
        )
        self._finish(result)
        return result

    def _eo_stage(
        self,
        task: GpuTask,
        rate: float,
        pending_outputs: list[Event],
        numeric: Optional[NumericContext],
    ) -> Generator[Event, Any, None]:
        """Fused Execution/Output: blocked kernel with CB0/CB1 double buffering.

        Block i+1's kernel may start once block i-1's output buffer is free
        (two buffers); each block's output transfer is submitted without
        waiting, overlapping the next kernel.
        """
        h = min(self.eo_block_rows, task.m)
        n_blocks = math.ceil(task.m / h)
        buffer_free: list[Optional[Event]] = [None, None]  # CB0 / CB1
        offset = 0
        for i in range(n_blocks):
            rows = min(h, task.m - offset)
            gate = buffer_free[i % 2]
            if gate is not None and not gate.processed:
                yield gate
            yield from self._kernel_block(task, rows, offset, rate, numeric)
            if task.is_last_k:
                nbytes = rows * task.n * 8.0
                if self.faults is not None and self.faults.pcie is not None:
                    # The retry loop must not stall the next kernel block, so
                    # it runs as its own process — a process is an Event, so
                    # the CB0/CB1 gates and the epilogue drain work unchanged
                    # (and a retry-exhausted failure propagates when waited).
                    out = self.sim.process(
                        self._pcie_transfer(
                            lambda nbytes=nbytes: self.element.pcie.to_host(
                                nbytes, pinned=self.pinned
                            )
                        ),
                        name=f"ct.output.T{task.index}",
                    )
                else:
                    out = self.element.pcie.to_host(nbytes, pinned=self.pinned)
                buffer_free[i % 2] = out
                pending_outputs.append(out)
            offset += rows


class SyncExecutor(_ExecutorBase):
    """Unpipelined execution: input -> kernel -> output, strictly serial.

    This is the vendor-library behaviour the paper's +pipe configurations
    are measured against; it still honours the task split (texture limits
    are physical) and optional operand reuse.
    """

    name = "synchronous"
    pipelined = False

    def execute(
        self,
        queue: TaskQueue,
        rate: float,
        numeric: Optional[NumericContext] = None,
    ) -> Generator[Event, Any, PipelineResult]:
        """DES process body: run *queue* without any overlap."""
        sim = self.sim
        start = sim.now
        kernel_time = 0.0
        self._log = []
        self._span_open = {}
        self._retries = 0
        for task in queue.tasks:
            self._record("CT", INPUT, task.index)
            yield from self._input_task(task)
            self._record("CT", EO, task.index)
            self._trace("begin", task, "eo")
            before = sim.now
            yield from self._kernel_block(task, task.m, 0, rate, numeric)
            kernel_time += sim.now - before
            if task.output_bytes > 0:
                yield from self._pcie_transfer(
                    lambda: self.element.pcie.to_host(
                        task.output_bytes, pinned=self.pinned
                    )
                )
            self._trace("end", task, "eo")
        self._record("CT", IDLE, None)
        result = PipelineResult(
            duration=sim.now - start,
            kernel_time=kernel_time,
            input_bytes=queue.input_bytes,
            output_bytes=queue.output_bytes,
            n_tasks=len(queue.tasks),
            state_log=list(self._log),
            retries=self._retries,
            degraded=self.faults.degraded_mode() if self.faults else None,
        )
        self._finish(result)
        return result
