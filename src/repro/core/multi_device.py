"""Generalised adaptive mapping over D devices, and the dual-GPU executor.

The paper's two levels are the D=2 and D=n instances of one rule:
``fraction_i <- P_i / sum_j P_j`` with measured rates ``P_i = W_i / T_i``.
:class:`MultiDeviceMapper` applies that rule over an arbitrary device list
(here: GPU chip 0, GPU chip 1, the CPU core group), keeping the per-workload
binning of ``database_g`` and the per-core level 2 of ``database_c``.

:class:`DualGpuDgemm` executes one DGEMM across both chips of a
:class:`~repro.machine.dual.DualGpuElement` plus the compute cores — each
chip gets its own task queue and software pipeline, but the two pipelines
share the element's single PCIe link and transfer thread, which is where
the sublinear scaling comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.blas.dgemm import split_rows
from repro.core.adaptive import floor_normalize, update_overhead_seconds
from repro.core.pipeline import SoftwarePipeline, SyncExecutor
from repro.core.split import CoreSplitDatabase
from repro.core.taskqueue import build_task_queue
from repro.machine.dual import DualGpuElement
from repro.sim import Event
from repro.util.units import dgemm_flops
from repro.util.validation import require, require_positive


class MultiSplitDatabase:
    """Per-workload-bin device fractions (database_g generalised to D devices)."""

    def __init__(self, n_devices: int, n_bins: int, max_workload: float,
                 initial: "list[float] | np.ndarray") -> None:
        require(n_devices >= 2, "need at least two devices")
        require(n_bins >= 1, "n_bins must be >= 1")
        require_positive(max_workload, "max_workload")
        initial = np.asarray(initial, dtype=float)
        require(initial.shape == (n_devices,), f"expected {n_devices} initial fractions")
        require(abs(initial.sum() - 1.0) < 1e-6, "initial fractions must sum to 1")
        self.n_devices = n_devices
        self.n_bins = n_bins
        self.max_workload = float(max_workload)
        self._values = np.tile(initial, (n_bins, 1))

    def bin_index(self, workload: float) -> int:
        if workload <= 0:
            return 0
        width = self.max_workload / self.n_bins
        return min(self.n_bins - 1, int(np.ceil(workload / width)) - 1)

    def lookup(self, workload: float) -> np.ndarray:
        return self._values[self.bin_index(workload)].copy()

    def store(self, workload: float, fractions: np.ndarray) -> None:
        fractions = np.asarray(fractions, dtype=float)
        require(fractions.shape == (self.n_devices,), "wrong fraction count")
        require(np.all(fractions >= 0), "fractions must be >= 0")
        require(abs(fractions.sum() - 1.0) < 1e-6, "fractions must sum to 1")
        self._values[self.bin_index(workload)] = fractions


class MultiDeviceMapper:
    """Level 1 over D devices + the usual level 2 over CPU cores."""

    name = "multi-adaptive"
    adapts_at_runtime = True

    def __init__(
        self,
        initial: "list[float]",
        n_cores: int,
        max_workload: float,
        n_bins: int = 64,
        min_fraction: float = 0.01,
    ) -> None:
        self.database = MultiSplitDatabase(len(initial), n_bins, max_workload, initial)
        self.database_c = CoreSplitDatabase(n_cores)
        self.min_fraction = min_fraction
        self.updates = 0

    def fractions(self, workload: float) -> np.ndarray:
        return self.database.lookup(workload)

    def csplits(self) -> np.ndarray:
        return self.database_c.lookup()

    def observe(self, workload: float, device_workloads, device_times,
                core_workloads=(), core_times=()) -> None:
        """fraction_i <- P_i / sum P_j, with a starvation floor."""
        rates = []
        for w, t in zip(device_workloads, device_times):
            rates.append(w / t if (w > 0 and t > 0) else 0.0)
        total = sum(rates)
        if total > 0:
            new = floor_normalize(np.array(rates) / total, self.min_fraction)
            self.database.store(workload, new)
        if core_workloads and all(w > 0 and t > 0 for w, t in zip(core_workloads, core_times)):
            core_rates = np.array([w / t for w, t in zip(core_workloads, core_times)])
            self.database_c.store(core_rates / core_rates.sum())
        self.updates += 1


@dataclass
class DualGpuResult:
    """Timing of one dual-GPU hybrid DGEMM."""

    workload: float
    fractions: tuple[float, ...]  # (gpu0, gpu1, cpu)
    t_gpu: tuple[float, float]
    core_times: tuple[float, ...]
    t_total: float

    @property
    def gflops(self) -> float:
        return self.workload / self.t_total / 1e9 if self.t_total > 0 else 0.0


class DualGpuDgemm:
    """Hybrid DGEMM across both chips + CPU cores of a DualGpuElement."""

    def __init__(
        self,
        element: DualGpuElement,
        mapper: MultiDeviceMapper,
        pipelined: bool = True,
        pinned: bool = True,
        jitter: bool = True,
    ) -> None:
        require(isinstance(element, DualGpuElement), "DualGpuDgemm needs a DualGpuElement")
        self.element = element
        self.sim = element.sim
        self.mapper = mapper
        self.jitter = jitter
        executor_cls = SoftwarePipeline if pipelined else SyncExecutor
        # One executor per chip: kernels go to that chip, but all transfers
        # flow through the element's single shared PCIe link.
        self.executors = []
        for gpu in element.gpus:
            executor = executor_cls(element, pinned=pinned, jitter=jitter)
            executor.gpu = gpu
            self.executors.append((executor, gpu))

    def _gpu_portion(self, executor, gpu, rows, n, k, rate):
        queue = build_task_queue(
            rows, n, k,
            texture_limit=gpu.spec.max_texture_dim,
            beta_nonzero=True,
            gpu_memory_bytes=gpu.spec.local_memory_bytes,
        )
        start = self.sim.now

        def body():
            yield from executor.execute(queue, rate)
            return self.sim.now - start

        return self.sim.process(body(), name=f"dual.{gpu.name}")

    def run(self, m: int, n: int, k: int) -> Generator[Event, Any, DualGpuResult]:
        """DES process body for one call (timing only)."""
        sim = self.sim
        element = self.element
        workload = dgemm_flops(m, n, k)
        fractions = self.mapper.fractions(workload)
        rows = split_rows(m, list(fractions))
        gpu_rows, cpu_rows_total = rows[:-1], rows[-1]
        csplits = self.mapper.csplits()
        core_rows = split_rows(cpu_rows_total, list(csplits))

        element.begin_hybrid()
        start = sim.now
        gpu_procs = []
        for (executor, gpu), g_rows in zip(self.executors, gpu_rows):
            if g_rows > 0:
                rate = gpu.kernel_rate(dgemm_flops(g_rows, n, k))
                gpu_procs.append(self._gpu_portion(executor, gpu, g_rows, n, k, rate))
            else:
                gpu_procs.append(None)
        core_procs = []
        for core, c_rows in zip(element.compute_cores, core_rows):
            flops = dgemm_flops(c_rows, n, k)
            core_procs.append(sim.process(_timed_compute(core, flops, self.jitter)))
        waits = [p for p in gpu_procs if p is not None] + core_procs
        if waits:
            yield sim.all_of(waits)
        element.end_hybrid()

        t_gpu = tuple(float(p.value) if p is not None else 0.0 for p in gpu_procs)
        core_times = tuple(float(p.value) for p in core_procs)
        device_workloads = [dgemm_flops(r, n, k) for r in gpu_rows] + [
            dgemm_flops(cpu_rows_total, n, k)
        ]
        device_times = list(t_gpu) + [max(core_times) if core_times else 0.0]
        self.mapper.observe(
            workload, device_workloads, device_times,
            core_workloads=tuple(dgemm_flops(r, n, k) for r in core_rows),
            core_times=core_times,
        )
        yield sim.timeout(update_overhead_seconds())
        return DualGpuResult(
            workload=workload,
            fractions=tuple(float(f) for f in fractions),
            t_gpu=(t_gpu[0], t_gpu[1]),
            core_times=core_times,
            t_total=sim.now - start,
        )

    def run_to_completion(self, m: int, n: int, k: int) -> DualGpuResult:
        return self.sim.run(until=self.sim.process(self.run(m, n, k)))


def _timed_compute(core, flops: float, jitter: bool):
    start = core.sim.now
    if flops > 0:
        yield core.compute(flops, jitter=jitter)
    return core.sim.now - start
