"""Deprecated location: task-queue construction moved to :mod:`repro.sched.taskqueue`.

This shim re-exports the public names so existing imports keep working;
new code should import from :mod:`repro.sched`.
"""

from repro.sched.taskqueue import (
    GpuTask,
    TaskQueue,
    bounce_corner_turn_order,
    build_task_queue,
    effective_block_limits,
    split_extents,
)

__all__ = [
    "GpuTask",
    "TaskQueue",
    "bounce_corner_turn_order",
    "build_task_queue",
    "effective_block_limits",
    "split_extents",
]
