"""Deprecated location: the static mapper moved to :mod:`repro.sched.static_map`.

This shim re-exports the public names so existing imports keep working;
new code should import from :mod:`repro.sched`.
"""

from repro.sched.static_map import StaticMapper

__all__ = ["StaticMapper"]
