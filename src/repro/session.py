"""The front door: describe a run as data, then execute it.

A :class:`Scenario` is a frozen, keyword-only description of one Linpack
experiment — which :class:`~repro.hpl.driver.Configuration` to build, the
problem order, the machine it runs over, the variability and fault schedule
it meets, and the seeds that make all of it reproducible.  A
:class:`Session` executes a scenario::

    from repro.session import Scenario, Session

    result = Session(Scenario(configuration="acmlg_both", n=40000)).run()
    print(result.gflops, result.degraded)

Every knob is validated at construction time (unknown configurations and
typo'd ``overrides`` keys raise immediately, with the valid names in the
message), so a scenario that constructs is a scenario that runs.  The old
free functions ``run_linpack`` / ``run_linpack_element`` survive as
deprecated shims delegating to the same implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.faults.spec import FaultSpec
from repro.hpl.driver import (
    Configuration,
    LinpackResult,
    _run_linpack,
    single_element_cluster,
    validate_overrides,
)
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.presets import STANDARD_CLOCK_MHZ
from repro.machine.variability import VariabilitySpec
from repro.util.validation import require, require_positive

__all__ = ["Scenario", "Session", "run"]


@dataclass(frozen=True, kw_only=True)
class Scenario:
    """One Linpack experiment, fully described and validated up front.

    With no ``cluster``, the run uses the single-element Section VI.B
    testbed (built from ``gpu_clock_mhz`` / ``variability`` /
    ``cluster_seed``).  Passing an explicit ``cluster`` means the machine is
    already fully specified — combining it with ``gpu_clock_mhz`` or
    ``variability`` is rejected rather than silently ignored.
    """

    configuration: "str | Configuration"
    n: int
    cluster: Optional[Cluster] = None
    grid: "ProcessGrid | tuple[int, int]" = (1, 1)
    gpu_clock_mhz: float = STANDARD_CLOCK_MHZ
    variability: Optional[VariabilitySpec] = None
    seed: int = 7
    cluster_seed: int = 2009
    faults: Optional[FaultSpec] = None
    overrides: Optional[Mapping] = None
    collect_steps: bool = False

    def __post_init__(self) -> None:
        require_positive(self.n, "n")
        object.__setattr__(
            self, "configuration", Configuration.parse(self.configuration)
        )
        validate_overrides(dict(self.overrides) if self.overrides else None)
        if not isinstance(self.grid, ProcessGrid):
            nprow, npcol = self.grid
            object.__setattr__(self, "grid", ProcessGrid(nprow, npcol))
        if self.cluster is not None:
            require(
                self.variability is None
                and self.gpu_clock_mhz == STANDARD_CLOCK_MHZ,
                "an explicit cluster already fixes the machine; do not also "
                "pass gpu_clock_mhz or variability",
            )

    def build_cluster(self) -> Cluster:
        """The cluster this scenario runs over (building the default lazily)."""
        if self.cluster is not None:
            return self.cluster
        return single_element_cluster(
            self.gpu_clock_mhz, self.variability, seed=self.cluster_seed
        )

    def content_hash(self) -> str:
        """A short stable digest of this scenario's full description.

        Run ledgers record it in their manifest so two runs are comparable
        exactly when their hashes match; it deliberately excludes the code
        version (the manifest carries that separately).
        """
        import hashlib

        from repro.exec.cache import canonical_json

        payload = {
            "configuration": self.configuration,
            "n": self.n,
            "cluster": None if self.cluster is None else repr(self.cluster),
            "grid": (self.grid.nprow, self.grid.npcol),
            "gpu_clock_mhz": self.gpu_clock_mhz,
            "variability": self.variability,
            "seed": self.seed,
            "cluster_seed": self.cluster_seed,
            "faults": self.faults,
            "overrides": dict(self.overrides) if self.overrides else None,
        }
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:16]


class Session:
    """Executes a :class:`Scenario`; reusable, stateless between runs."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario

    def run(self, progress=None, telemetry=None, ledger=None) -> LinpackResult:
        """Run the scenario once and return its :class:`LinpackResult`.

        *progress* is called with each panel's
        :class:`~repro.hpl.analytic.StepTrace`; *telemetry* (a
        :class:`repro.obs.Telemetry`, defaulting to the ambient one)
        receives per-panel spans, GFLOPS series and — under an active
        :class:`~repro.faults.FaultSpec` — the ``faults.*`` counters and
        fault-track instants.  Neither hook affects results.

        *ledger* (a :class:`repro.obs.RunLedger`) turns the run into a
        flight-recorded one: the scenario hash is stamped into the
        manifest, spans/metrics stream incrementally into the run
        directory, and a result summary (or the exception) is written on
        exit — a killed run stays readable via ``python -m repro.obs``.
        When *ledger* is given and *telemetry* is not, the ledger's
        telemetry is used.
        """
        s = self.scenario
        if ledger is not None:
            ledger.annotate(
                scenario_hash=s.content_hash(),
                scenario={"configuration": str(s.configuration), "n": s.n,
                          "grid": [s.grid.nprow, s.grid.npcol], "seed": s.seed},
            )
            if telemetry is None:
                telemetry = ledger.telemetry
        try:
            result = _run_linpack(
                s.configuration,
                s.n,
                s.build_cluster(),
                s.grid,
                seed=s.seed,
                collect_steps=s.collect_steps,
                overrides=dict(s.overrides) if s.overrides else None,
                progress=progress,
                telemetry=telemetry,
                faults=s.faults,
            )
        except BaseException as error:
            if ledger is not None:
                ledger.fail(f"{type(error).__name__}: {error}")
            raise
        if ledger is not None:
            ledger.finish(
                {
                    "gflops": result.gflops,
                    "elapsed_seconds": result.elapsed,
                    "degraded": None if result.degraded is None else str(result.degraded),
                }
            )
        return result


def run(scenario: Scenario, progress=None, telemetry=None, ledger=None) -> LinpackResult:
    """Convenience one-shot: ``Session(scenario).run(...)``."""
    return Session(scenario).run(progress=progress, telemetry=telemetry, ledger=ledger)
