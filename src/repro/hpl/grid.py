"""Process grids and block-cyclic data distribution (the HPL layout).

HPL arranges P*Q processes in a P x Q grid (row-major rank order) and
distributes the N x N matrix in NB x NB blocks cyclically: global row block
``i`` lives on grid row ``i % P``, global column block ``j`` on grid column
``j % Q``.  TianHe-1's full run used a 64 x 80 grid with NB = 1216
(Section VI.A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class ProcessGrid:
    """A P x Q grid with row-major rank numbering."""

    nprow: int
    npcol: int

    def __post_init__(self) -> None:
        require_positive(self.nprow, "nprow")
        require_positive(self.npcol, "npcol")

    @property
    def size(self) -> int:
        return self.nprow * self.npcol

    def coords(self, rank: int) -> tuple[int, int]:
        """(grid row, grid column) of *rank*."""
        require(0 <= rank < self.size, f"rank {rank} out of range")
        return rank // self.npcol, rank % self.npcol

    def rank_of(self, p: int, q: int) -> int:
        require(0 <= p < self.nprow and 0 <= q < self.npcol, f"coords ({p},{q}) out of range")
        return p * self.npcol + q

    def row_members(self, p: int) -> list[int]:
        """All ranks in grid row *p* (ordered by grid column)."""
        return [self.rank_of(p, q) for q in range(self.npcol)]

    def col_members(self, q: int) -> list[int]:
        """All ranks in grid column *q* (ordered by grid row)."""
        return [self.rank_of(p, q) for p in range(self.nprow)]

    def row_comm(self, comm):
        """Row sub-communicator for *comm*'s rank (local ranks = grid columns).

        Topology is known to every rank, so this needs no collective
        exchange — unlike ``comm.split`` it can be built mid-computation at
        zero simulated cost.  Tag-namespaced per row, so the Q row
        communicators never steal each other's messages.
        """
        from repro.mpi.group import Group  # local: hpl.grid must stay mpi-free at import

        p, _ = self.coords(comm.rank)
        return Group(comm, self.row_members(p), tag_space=("row", p))

    def col_comm(self, comm):
        """Column sub-communicator for *comm*'s rank (local ranks = grid rows)."""
        from repro.mpi.group import Group

        _, q = self.coords(comm.rank)
        return Group(comm, self.col_members(q), tag_space=("col", q))


class BlockCyclic:
    """1-D block-cyclic map of *n* items in blocks of *nb* over *nprocs*."""

    def __init__(self, n: int, nb: int, nprocs: int) -> None:
        require(n >= 0, "n must be >= 0")
        require_positive(nb, "nb")
        require_positive(nprocs, "nprocs")
        self.n = n
        self.nb = nb
        self.nprocs = nprocs

    def owner(self, g: int) -> int:
        """The process owning global index *g*."""
        require(0 <= g < self.n, f"index {g} out of range")
        return (g // self.nb) % self.nprocs

    def to_local(self, g: int) -> tuple[int, int]:
        """(owner, local index) of global index *g*."""
        block, offset = divmod(g, self.nb)
        return block % self.nprocs, (block // self.nprocs) * self.nb + offset

    def local_index(self, g: int) -> int:
        """Local index of *g* on its owner."""
        return self.to_local(g)[1]

    def to_global(self, proc: int, l: int) -> int:
        """Global index of local index *l* on process *proc*."""
        require(0 <= proc < self.nprocs, f"proc {proc} out of range")
        require(l >= 0, "local index must be >= 0")
        block, offset = divmod(l, self.nb)
        return (block * self.nprocs + proc) * self.nb + offset

    def local_count(self, proc: int) -> int:
        """Number of items process *proc* owns (the numroc formula)."""
        require(0 <= proc < self.nprocs, f"proc {proc} out of range")
        nblocks = -(-self.n // self.nb) if self.n else 0
        if nblocks == 0:
            return 0
        owned_blocks = (nblocks - proc + self.nprocs - 1) // self.nprocs
        count = owned_blocks * self.nb
        if (nblocks - 1) % self.nprocs == proc:
            count -= nblocks * self.nb - self.n  # shave the ragged last block
        return count

    def globals_of(self, proc: int) -> np.ndarray:
        """All global indices owned by *proc*, ascending (= local order)."""
        out = []
        block = proc
        nblocks = -(-self.n // self.nb) if self.n else 0
        while block < nblocks:
            start = block * self.nb
            out.append(np.arange(start, min(start + self.nb, self.n)))
            block += self.nprocs
        return np.concatenate(out) if out else np.empty(0, dtype=int)

    def first_local_at_or_after(self, proc: int, g: int) -> int:
        """Smallest local index on *proc* whose global index is >= *g*.

        Because local order preserves global order, the local indices at or
        after this value form exactly the trailing-submatrix suffix.
        """
        require(0 <= g <= self.n, f"index {g} out of range")
        if g >= self.n:
            return self.local_count(proc)
        block, offset = divmod(g, self.nb)
        cycle, pos = divmod(block, self.nprocs)
        if pos == proc:
            return cycle * self.nb + offset
        if pos < proc:
            return cycle * self.nb
        return (cycle + 1) * self.nb

    def local_count_at_or_after(self, proc: int, g: int) -> int:
        """How many of *proc*'s items have global index >= *g*."""
        return self.local_count(proc) - self.first_local_at_or_after(proc, g)
