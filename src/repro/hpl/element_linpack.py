"""Event-driven Linpack on a single compute element.

The exact-DES twin of the single-element analytic runs: every trailing
update (and the U12 DTRSM) executes through the real
:class:`~repro.core.hybrid_dgemm.HybridDgemm` machinery — task queues,
bounce-corner-turn transfers, the CT/NT pipeline, the adaptive mapper
updating its databases — on the virtual clock.  The panel factorization is
charged to the compute cores (optionally overlapped with the update,
depth-1 look-ahead); there is no process grid, so no network terms.

Used by tests to cross-validate :mod:`repro.hpl.analytic`, and by Fig. 10 to
replay the paper's database-evolution experiment with full fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.core.hybrid_dgemm import HybridDgemm
from repro.hpl.dist import panel_factor_flops
from repro.machine.node import ComputeElement
from repro.sim import Event
from repro.util.units import lu_flops
from repro.util.validation import require, require_positive


@dataclass
class ElementStep:
    """Timing of one panel step on the element."""

    j: int
    trailing: int
    gsplit: float
    update_time: float
    dtrsm_time: float
    panel_time: float
    step_time: float


@dataclass
class ElementLinpackResult:
    """Outcome of one DES single-element Linpack."""

    n: int
    nb: int
    elapsed: float
    flops: float
    steps: list[ElementStep] = field(default_factory=list)

    @property
    def gflops(self) -> float:
        return self.flops / self.elapsed / 1e9


class ElementLinpack:
    """Reusable DES Linpack bound to one element and mapper."""

    def __init__(
        self,
        element: ComputeElement,
        mapper,
        nb: int = 1216,
        pipelined: bool = True,
        pinned: bool = True,
        lookahead: bool = True,
        panel_efficiency: float = 0.6,
        jitter: bool = True,
    ) -> None:
        require_positive(nb, "nb")
        self.element = element
        self.sim = element.sim
        self.nb = nb
        self.lookahead = lookahead
        self.panel_efficiency = panel_efficiency
        self.hybrid = HybridDgemm(
            element, mapper, pipelined=pipelined, pinned=pinned, jitter=jitter
        )

    def _panel(self, rows: int, jbw: int) -> Generator[Event, Any, float]:
        """Panel factorization charged to the compute cores.

        Under look-ahead this runs in the shadow of the trailing update; the
        CPU-contention between the two is ignored, exactly as in the
        analytic model (the panel is a few percent of the update's flops).
        """
        start = self.sim.now
        flops = panel_factor_flops(rows, jbw)
        rate = self.element.cpu_compute_rate() * self.panel_efficiency
        if flops > 0:
            yield self.sim.timeout(flops / rate)
        return self.sim.now - start

    def run(self, n: int, collect_steps: bool = False) -> Generator[Event, Any, ElementLinpackResult]:
        """DES process body: one full Linpack of order *n*."""
        require_positive(n, "n")
        sim = self.sim
        nb = self.nb
        start = sim.now
        steps: list[ElementStep] = []
        n_blocks = -(-n // nb)
        pending_panel: Optional[Event] = None  # look-ahead panel in flight
        for jb in range(n_blocks):
            j = jb * nb
            jbw = min(nb, n - j)
            trailing = n - j - jbw
            step_start = sim.now
            # Panel for THIS step: either prefactored by look-ahead, or now.
            if pending_panel is not None:
                panel_time = yield pending_panel
                pending_panel = None
                panel_exposed = 0.0
            else:
                panel_time = yield sim.process(self._panel(n - j, jbw))
                panel_exposed = panel_time
            dtrsm_time = 0.0
            update_time = 0.0
            gsplit = 0.0
            if trailing > 0:
                if self.lookahead and jb + 1 < n_blocks:
                    next_jbw = min(nb, n - (j + jbw))
                    pending_panel = sim.process(self._panel(n - j - jbw, next_jbw))
                # U12 = L11^-1 A12: BLAS3 of jbw^2 x trailing flops, run
                # hybrid like the update (rows jbw/2 gives the same count).
                before = sim.now
                dtrsm_result = yield from self.hybrid.run(
                    max(1, jbw // 2), trailing, jbw, beta_nonzero=False
                )
                dtrsm_time = sim.now - before
                before = sim.now
                update = yield from self.hybrid.run(trailing, trailing, jbw)
                update_time = sim.now - before
                gsplit = update.gsplit
            if collect_steps:
                steps.append(
                    ElementStep(
                        j=j,
                        trailing=trailing,
                        gsplit=gsplit,
                        update_time=update_time,
                        dtrsm_time=dtrsm_time,
                        panel_time=panel_time,
                        step_time=sim.now - step_start,
                    )
                )
        if pending_panel is not None:
            yield pending_panel
        # Back substitution: 2 N^2 flops on the compute cores.
        solve_rate = self.element.cpu_compute_rate()
        yield sim.timeout(2.0 * n * n / solve_rate)
        return ElementLinpackResult(
            n=n, nb=nb, elapsed=sim.now - start, flops=lu_flops(n), steps=steps
        )

    def run_to_completion(self, n: int, collect_steps: bool = False) -> ElementLinpackResult:
        """Run on a fresh slice of simulated time and return the result."""
        return self.sim.run(until=self.sim.process(self.run(n, collect_steps)))
