"""Vectorized analytic HPL stepper — the petascale engine.

Exactly the per-panel dataflow of :mod:`repro.hpl.dist`, but with every
rank's timing computed from the calibrated closed-form models
(:mod:`repro.model.dgemm_model`'s formulas, vectorized over the whole P x Q
grid with numpy) instead of discrete events.  This is what makes the paper's
full-configuration experiments computable: N = 2 240 000 over a 64 x 80 grid
is ~1840 panel steps of array arithmetic.

Per step (panel ``jb``, width ``jbw``):

1. panel factorization on the owning grid column (CPU, plus the per-column
   pivot-search allreduce),
2. panel broadcast along grid rows (binomial alpha-beta),
3. pivot row exchanges inside grid columns,
4. U12 triangular solve on the owning grid row + broadcast down columns,
5. per-rank hybrid trailing update — GPU path (task split, transfers,
   pipeline overlap) vs CPU path, split according to the configured mapping
   — and the step completes when the slowest rank finishes.

Mappings:

* ``adaptive``  — the paper's framework: split from *fresh* (last-step)
  measurements, per-core level-2 balancing.
* ``static``    — peak-ratio split, even core splits, never updated.
* ``qilin``     — split trained before the run (cold rates + measurement
  noise, an independent realisation of the slow condition noise), then
  frozen; even core splits (Qilin has no level 2 — Section IV.A).
* ``gpu_only``  — the vendor-library offload (ACML-GPU): everything on the
  GPU, synchronous transfers.
* ``cpu_only``  — MKL on all four cores, no GPU, no transfers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.spec import DegradedMode, FaultSpec
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import ElementRateTable
from repro.machine.specs import InterconnectSpec
from repro.machine.variability import SlowNoise, VariabilitySpec
from repro.mpi.bcast import canonical_algorithm
from repro.util.rng import RngStream
from repro.util.units import DOUBLE_BYTES, lu_flops
from repro.util.validation import require, require_positive

MAPPINGS = ("adaptive", "static", "qilin", "gpu_only", "cpu_only")


def panel_bcast_time(algo: str, panel_bytes, q: int, latency: float, bandwidth):
    """Alpha-beta completion time of one panel broadcast along a Q-rank row.

    Mirrors the DES algorithms in :mod:`repro.mpi.bcast` in closed form
    (B = panel bytes, a = latency, B/bw = serialisation time):

    * ``binomial`` — ``ceil(log2 Q)`` full-message hops.
    * ``1ring`` — pipelined chain: ~2 message times once streaming, plus the
      remaining per-hop latencies.
    * ``1rm`` — same chain volume, one extra latency (the root's second
      send); its payoff is the *critical-path* time below, not this total.
    * ``long`` — scatter + ring allgather: ``2 (Q-1)`` latencies but only
      ``~2 B (Q-1)/Q`` bytes through any rank.

    Works elementwise when *panel_bytes* is an array (the batch stepper).
    ``bandwidth=None`` (no network) costs zero.
    """
    if q <= 1 or bandwidth is None:
        return 0.0 * panel_bytes
    message = latency + panel_bytes / bandwidth
    if algo == "1ring":
        return 2.0 * message + (q - 2) * latency
    if algo == "1rm":
        return 2.0 * message + (q - 1) * latency
    if algo == "long":
        return 2.0 * (q - 1) * latency + (2.0 * (q - 1) / q) * (panel_bytes / bandwidth)
    return math.ceil(math.log2(q)) * message


def panel_bcast_critical_time(algo: str, panel_bytes, q: int, latency: float, bandwidth):
    """Time until the *next* panel's owner holds this panel.

    Look-ahead only needs the next diagonal owner (the rank after the root)
    to have the panel before the following step can start its factorization.
    ``1rm`` serves that rank first with a single direct message — the whole
    reason HPL pairs it with look-ahead; every other algorithm frees it only
    when the broadcast completes.
    """
    if q <= 1 or bandwidth is None:
        return 0.0 * panel_bytes
    if algo == "1rm":
        return latency + panel_bytes / bandwidth
    return panel_bcast_time(algo, panel_bytes, q, latency, bandwidth)


@dataclass(frozen=True)
class AnalyticConfig:
    """Configuration of one analytic Linpack run."""

    nb: int = 1216
    mapping: str = "adaptive"
    pipelined: bool = True
    pinned: bool = True
    host_bw_override: Optional[float] = None  # explicit host-hop bandwidth
    lookahead: bool = True  # overlap panel factorization with the update
    level2: bool = True  # per-core (level-2) adaptation for adaptive mapping
    # Section VI.C closes with "the GPU is less effective when the matrix
    # size is relatively small and this can be a potential optimization".
    # This flag implements that future-work idea: when a rank's hybrid
    # makespan would exceed a pure-CPU update on all four cores (transfer
    # core reclaimed, no PCIe traffic), fall back to the CPU path.
    endgame_cpu_fallback: bool = False
    # Panel broadcast algorithm along grid rows — HPL's BCAST family (see
    # repro.mpi.bcast and docs/distributed.md): "binomial" costs
    # ceil(log2 Q) alpha-beta hops; "1ring" (alias "ring") pipelines long
    # messages down the chain, ~2 message times once streaming; "1rm" frees
    # the next panel's owner after a single message (the look-ahead
    # critical path); "long" is the scatter+allgather spread-roll moving
    # only ~2B(Q-1)/Q bytes per rank.
    bcast_algo: str = "binomial"

    texture_limit: int = 8192
    panel_efficiency: float = 0.6  # CPU efficiency on the panel phase
    split_iterations: int = 6  # fixed-point iterations for balanced splits
    seed: int = 7

    def __post_init__(self) -> None:
        require(self.mapping in MAPPINGS, f"unknown mapping {self.mapping!r}")
        require_positive(self.nb, "nb")
        # Normalise aliases ("ring" -> "1ring") and reject unknown names.
        object.__setattr__(self, "bcast_algo", canonical_algorithm(self.bcast_algo))


@dataclass
class StepTrace:
    """Timing of one panel step (for the progress curve, Fig. 13)."""

    step: int
    j: int
    trailing: int
    step_time: float
    update_time: float
    panel_time: float
    comm_time: float
    flops: float
    cum_time: float
    cum_flops: float
    mean_gsplit: float

    @property
    def cum_gflops(self) -> float:
        """Average rate up to and including this step."""
        return self.cum_flops / self.cum_time / 1e9 if self.cum_time > 0 else 0.0


@dataclass
class AnalyticResult:
    """Outcome of one analytic Linpack run."""

    n: int
    grid: tuple[int, int]
    config: AnalyticConfig
    elapsed: float
    flops: float
    steps: list[StepTrace] = field(default_factory=list)
    #: Fault/degradation summary; None when the run saw no fault at all.
    degraded: Optional[DegradedMode] = None

    @property
    def gflops(self) -> float:
        """The HPL figure of merit: (2/3 N^3 + 2 N^2) / time."""
        return self.flops / self.elapsed / 1e9

    @property
    def tflops(self) -> float:
        return self.gflops / 1e3

    def progress_curve(self) -> list[tuple[float, float]]:
        """(fraction of flops completed, cumulative GFLOPS) per step — Fig. 13."""
        return [(s.cum_flops / self.flops, s.cum_gflops) for s in self.steps]


def _first_local_at_or_after(g: int, nb: int, nprocs: int) -> np.ndarray:
    """Vectorized BlockCyclic.first_local_at_or_after over all procs."""
    procs = np.arange(nprocs)
    block, offset = divmod(g, nb)
    cycle, pos = divmod(block, nprocs)
    out = np.where(procs > pos, cycle * nb, (cycle + 1) * nb)
    out = np.where(procs == pos, cycle * nb + offset, out)
    return out


def _local_count(n: int, nb: int, nprocs: int) -> np.ndarray:
    """Vectorized BlockCyclic.local_count over all procs."""
    procs = np.arange(nprocs)
    nblocks = -(-n // nb) if n else 0
    if nblocks == 0:
        return np.zeros(nprocs, dtype=int)
    owned = (nblocks - procs + nprocs - 1) // nprocs
    count = owned * nb
    count[(nblocks - 1) % nprocs] -= nblocks * nb - n
    return count


class AnalyticHpl:
    """One reusable stepper bound to a rate table, grid and interconnect."""

    def __init__(
        self,
        table: ElementRateTable,
        grid: ProcessGrid,
        interconnect: Optional[InterconnectSpec],
        variability: Optional[VariabilitySpec] = None,
        config: AnalyticConfig = AnalyticConfig(),
        faults: Optional[FaultSpec] = None,
    ) -> None:
        require(
            table.n_elements >= grid.size,
            f"rate table has {table.n_elements} elements, grid needs {grid.size}",
        )
        self.table = table.subset(np.arange(grid.size))
        self.grid = grid
        self.net = interconnect
        self.var = variability if variability is not None else VariabilitySpec()
        self.config = config
        self.faults = faults if faults else None
        self._rng = RngStream(config.seed).child("analytic").generator()
        self._kernel_overhead2d = np.asarray(self.table.kernel_overhead)[
            : grid.size
        ].reshape(grid.nprow, grid.npcol)

    # -- per-rank 2-D views of the element population ------------------------------
    def _grid_array(self, flat: np.ndarray) -> np.ndarray:
        return np.asarray(flat)[: self.grid.size].reshape(self.grid.nprow, self.grid.npcol)

    def _alpha_beta(self, nbytes: float, hops: int) -> float:
        if self.net is None or hops <= 0:
            return 0.0
        return hops * (self.net.latency + nbytes / self.net.bandwidth)

    # -- the hybrid update model (vectorized twin of model.dgemm_model) ------------
    def _update_times(
        self,
        m: np.ndarray,
        n: np.ndarray,
        k: int,
        gsplit: np.ndarray,
        gpu_rate_of,  # callable w_gpu -> rate array
        cpu_rate: np.ndarray,
        xfer_factor: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(t_gpu, t_cpu, makespan) for C[m,n] += A[m,k] B[k,n] per rank.

        ``xfer_factor`` >= 1 inflates every PCIe transfer term — the
        expected cost of retried transfers under an active PCIe fault.
        """
        cfg = self.config
        m1 = np.rint(m * gsplit)
        w = 2.0 * m * n * k
        w_gpu = 2.0 * m1 * n * k
        w_cpu = w - w_gpu
        rate = gpu_rate_of(w_gpu)
        rows = np.maximum(1, np.ceil(m1 / cfg.texture_limit))
        colsb = np.maximum(1, np.ceil(n / cfg.texture_limit))
        n_tasks = np.where(m1 > 0, rows * colsb, 0)
        t_kernel = np.where(
            w_gpu > 0, n_tasks * self._kernel_overhead2d + w_gpu / np.maximum(rate, 1e-9), 0.0
        )
        if cfg.host_bw_override is not None:
            host_bw = cfg.host_bw_override
        else:
            host_bw = self.table.pinned_bw if cfg.pinned else self.table.pageable_bw
        if xfer_factor != 1.0:
            host_bw = host_bw / xfer_factor
        per_byte_serial = 1.0 / host_bw + xfer_factor / self.table.gpu_bw
        in_bytes = (m1 * k + k * n + m1 * n) * DOUBLE_BYTES  # A1, B, C-in (beta=1)
        out_bytes = m1 * n * DOUBLE_BYTES
        lat = self.table.pcie_latency * xfer_factor
        t_in = 3 * n_tasks * lat + in_bytes * per_byte_serial
        t_out = n_tasks * lat + out_bytes * per_byte_serial
        if cfg.pipelined:
            first_in = (m1 / np.maximum(rows, 1) * (k + n / np.maximum(colsb, 1)) + k * n / np.maximum(colsb, 1)) * DOUBLE_BYTES
            prologue = 3 * lat + first_in * per_byte_serial
            t_link = 4 * n_tasks * lat + (in_bytes + out_bytes) / host_bw
            t_pipe = np.maximum(t_kernel, t_link - prologue) + prologue
            t_sync = t_in + t_kernel + t_out
            t_gpu = np.where(n_tasks > 1, t_pipe, t_sync)
        else:
            t_gpu = t_in + t_kernel + t_out
        t_gpu = np.where(w_gpu > 0, t_gpu, 0.0)
        t_cpu = np.where(w_cpu > 0, w_cpu / np.maximum(cpu_rate, 1e-9), 0.0)
        return t_gpu, t_cpu, np.maximum(t_gpu, t_cpu)

    def _publish_step(self, telemetry, trace: StepTrace, step_start: float) -> None:
        """One panel's spans (virtual timeline) and progress series."""
        sink = telemetry.sink
        # Phase spans laid out on the step's slice of the virtual timeline.
        # Under look-ahead the panel overlaps the update, so both start at
        # the step start; communication closes the step.
        sink.complete(
            "hpl/update", "update", step_start, step_start + trace.update_time,
            step=trace.step,
        )
        sink.complete(
            "hpl/panel", "panel+dtrsm", step_start, step_start + trace.panel_time,
            step=trace.step,
        )
        sink.complete(
            "hpl/comm", "comm",
            step_start + trace.step_time - trace.comm_time,
            step_start + trace.step_time,
            step=trace.step,
        )
        metrics = telemetry.metrics
        metrics.counter("hpl.panels", "panel steps completed").inc()
        metrics.series("hpl.cum_gflops", "running GFLOPS vs virtual time").append(
            trace.cum_time, trace.cum_gflops
        )
        metrics.series("hpl.mean_gsplit", "grid-mean GSplit per panel").append(
            trace.step, trace.mean_gsplit
        )
        metrics.series("hpl.step_seconds", "per-panel step time").append(
            trace.step, trace.step_time
        )

    def _balanced_split(
        self,
        m: np.ndarray,
        n: np.ndarray,
        k: int,
        gpu_rate_of,
        cpu_rate: np.ndarray,
        xfer_factor: float = 1.0,
    ) -> np.ndarray:
        """The level-1 fixed point GSplit <- P_G/(P_G+P_C), vectorized."""
        gsplit = np.full(m.shape, 0.7)
        for _ in range(self.config.split_iterations):
            t_gpu, t_cpu, _ = self._update_times(
                m, n, k, gsplit, gpu_rate_of, cpu_rate, xfer_factor
            )
            w = 2.0 * m * n * k
            w_gpu = w * gsplit
            p_g = np.where(t_gpu > 0, w_gpu / np.maximum(t_gpu, 1e-12), 0.0)
            p_c = np.where(t_cpu > 0, (w - w_gpu) / np.maximum(t_cpu, 1e-12), cpu_rate)
            with np.errstate(invalid="ignore"):
                new = p_g / np.maximum(p_g + p_c, 1e-9)
            gsplit = np.clip(np.where(np.isfinite(new), new, gsplit), 0.01, 1.0)
        return gsplit

    # -- the run -----------------------------------------------------------------------
    def run(
        self,
        n: int,
        collect_steps: bool = True,
        progress=None,
        telemetry=None,
    ) -> AnalyticResult:
        """Run one Linpack of order *n*; returns timing (no numerics).

        *progress*, if given, is called with each panel's :class:`StepTrace`
        as the factorization advances — the hook live dashboards and the
        Fig. 13 progress bench use.  *telemetry*
        (:class:`repro.obs.Telemetry`) additionally records one span per
        panel on the virtual timeline (tracks ``hpl/update`` / ``hpl/panel``
        / ``hpl/comm``) plus running-GFLOPS and mean-GSplit series.  Both
        hooks only read values the run already computes, so enabling them
        cannot change the result.
        """
        require_positive(n, "n")
        cfg = self.config
        grid, table, var = self.grid, self.table, self.var
        P, Q = grid.nprow, grid.npcol
        nb = cfg.nb
        n_blocks = -(-n // nb)

        # Independent slowly-varying condition noise for the GPU (thermal
        # state) and the CPU side (OS/daemon activity, memory contention) of
        # each element.  Their *relative* drift is what staleness costs: a
        # split balanced for trained rates puts the slower-than-trained side
        # on the critical path, and "the end time is the last who finishes".
        gpu_noise = SlowNoise(grid.size, var.slow_noise_sigma, var.slow_noise_rho, self._rng)
        cpu_noise = SlowNoise(grid.size, var.slow_noise_sigma, var.slow_noise_rho, self._rng)
        meas_sigma = var.measurement_sigma

        gpu_base = self._grid_array(table.gpu_peak)
        eff_max = self._grid_array(table.eff_max)
        w_half = self._grid_array(table.w_half)
        drift_depth = self._grid_array(table.drift_depth)
        cpu_hybrid = self._grid_array(table.cpu_hybrid_rate)
        cpu_even = self._grid_array(table.cpu_hybrid_even_rate)
        cpu_full = self._grid_array(table.cpu_full_rate)
        initial_gsplit = self._grid_array(table.initial_gsplit)

        def gpu_rate_factory(peak_now: np.ndarray):
            def rate_of(w_gpu: np.ndarray) -> np.ndarray:
                eff = np.where(w_gpu > 0, eff_max * w_gpu / (w_gpu + w_half), 0.0)
                return peak_now * eff

            return rate_of

        # Qilin: one training realisation, frozen for the whole run.
        frozen_split_of = None
        if cfg.mapping == "qilin":
            train_noise = SlowNoise(
                grid.size, var.slow_noise_sigma, var.slow_noise_rho,
                RngStream(cfg.seed).child("qilin-train").generator(),
            )
            train_peak = gpu_base * self._grid_array(train_noise.factors())
            train_sigma = var.training_measurement_sigma
            if train_sigma > 0:
                err = RngStream(cfg.seed).child("qilin-meas").generator()
                train_peak = train_peak * np.exp(
                    err.normal(-0.5 * train_sigma**2, train_sigma, train_peak.shape)
                )
                train_cpu = cpu_even * np.exp(
                    err.normal(-0.5 * train_sigma**2, train_sigma, cpu_even.shape)
                )
            else:
                train_cpu = cpu_even
            train_rate_of = gpu_rate_factory(train_peak)

            def frozen_split_of(m: np.ndarray, nn: np.ndarray, k: int) -> np.ndarray:
                return self._balanced_split(m, nn, k, train_rate_of, train_cpu)

        # Fault injection: one fresh injector per run replays the schedule
        # against this run's virtual clock (deterministic for a fixed spec
        # and seed).  None when no faults are configured — the hot loop then
        # carries no extra work at all.
        injector = (
            FaultInjector(self.faults, grid.size, seed=cfg.seed, telemetry=telemetry)
            if self.faults
            else None
        )

        elapsed = 0.0
        cum_flops = 0.0
        steps: list[StepTrace] = []
        total_flops = lu_flops(n)

        for jb in range(n_blocks):
            j = jb * nb
            jbw = min(nb, n - j)
            gpu_noise.step()
            cpu_noise.step()
            gpu_slow = self._grid_array(gpu_noise.factors())
            cpu_slow = self._grid_array(cpu_noise.factors())
            drift = 1.0 - drift_depth * (1.0 - math.exp(-elapsed / table.drift_tau)) if table.drift_tau > 0 else 1.0 - drift_depth
            if injector is not None:
                injector.advance(elapsed)
                fault_gpu = self._grid_array(injector.gpu_factor())
                fault_cpu = self._grid_array(injector.cpu_factor())
                gpu_ok = self._grid_array(injector.gpu_alive()).astype(bool)
                xfer_factor = injector.transfer_inflation(elapsed)
            else:
                fault_gpu = fault_cpu = 1.0
                gpu_ok = None
                xfer_factor = 1.0
            peak_now = gpu_base * drift * gpu_slow * fault_gpu
            rate_of = gpu_rate_factory(peak_now)

            m_after = _first_local_at_or_after(j + jbw, nb, P)
            m_loc = _local_count(n, nb, P) - m_after  # rows below the panel, per grid row
            n_after = _first_local_at_or_after(j + jbw, nb, Q)
            n_loc = _local_count(n, nb, Q) - n_after  # trailing cols per grid col
            m2 = m_loc[:, None] * np.ones((1, Q))
            n2 = np.ones((P, 1)) * n_loc[None, :]

            # -- choose the split per mapping --------------------------------------
            if cfg.mapping == "cpu_only":
                gsplit = np.zeros((P, Q))
                cpu_rate = cpu_full * cpu_slow
            elif cfg.mapping == "gpu_only":
                gsplit = np.ones((P, Q))
                cpu_rate = cpu_hybrid * cpu_slow  # unused (no CPU share)
            elif cfg.mapping == "static":
                gsplit = initial_gsplit.copy()
                cpu_rate = cpu_even * cpu_slow
            elif cfg.mapping == "qilin":
                gsplit = frozen_split_of(m2, n2, jbw)
                cpu_rate = cpu_even * cpu_slow
            else:  # adaptive: fresh (last-step) measurements, level-2 balanced
                cpu_rate = (cpu_hybrid if cfg.level2 else cpu_even) * cpu_slow
                if meas_sigma > 0:
                    mfac = np.exp(
                        self._rng.normal(-0.5 * meas_sigma**2, meas_sigma, (2, P, Q))
                    )
                else:
                    mfac = np.ones((2, P, Q))
                measured_rate_of = gpu_rate_factory(peak_now * mfac[0])
                gsplit = self._balanced_split(
                    m2, n2, jbw, measured_rate_of, cpu_rate * mfac[1], xfer_factor
                )

            # -- graceful degradation -------------------------------------------------
            # Stragglers hit every mapping (the hardware is simply slower);
            # GPU *loss* is where reaction matters: the adaptive mapping
            # clamps GSplit to 0 on dead elements and reclaims the transfer
            # core (the cpu_only_dgemm fallback, so the element runs at the
            # cpu_only configuration's rate), while static/Qilin/gpu_only
            # keep offloading into the failsafe-rate device.  The injector
            # is then told what split each element actually applied — the
            # feedback that lets a load-shedding mapping cool a throttled
            # GPU back to full clock.
            if injector is not None:
                cpu_rate = cpu_rate * fault_cpu
                if cfg.mapping == "adaptive" and not gpu_ok.all():
                    gsplit = np.where(gpu_ok, gsplit, 0.0)
                    cpu_rate = np.where(gpu_ok, cpu_rate, cpu_full * cpu_slow * fault_cpu)
                injector.note_load(np.broadcast_to(gsplit, (P, Q)).ravel(), elapsed)

            # -- the trailing update (slowest rank gates the step) ------------------
            t_gpu_u, t_cpu_u, makespan = self._update_times(
                m2, n2, jbw, gsplit, rate_of, cpu_rate, xfer_factor
            )
            if cfg.endgame_cpu_fallback and cfg.mapping not in ("cpu_only",):
                # Future-work optimization: reclaim the transfer core and run
                # small updates on all four cores when that is faster.
                w_step = 2.0 * m2 * n2 * jbw
                t_cpu_full = np.where(
                    w_step > 0, w_step / np.maximum(cpu_full * cpu_slow * fault_cpu, 1e-9), 0.0
                )
                makespan = np.minimum(makespan, t_cpu_full)
            t_update = float(makespan.max()) if makespan.size else 0.0

            # DTRSM (the U12 block row) runs through the same hybrid engine as
            # the update — it is BLAS3 of jbw^2 x n_loc flops, ~NB/2M of the
            # update, so charge it at the update's effective hybrid rate.
            n_loc_max = int(n_loc.max()) if n_loc.size else 0
            w_update_max = float((2.0 * m2 * n2 * jbw).max()) if makespan.size else 0.0
            hybrid_rate = w_update_max / t_update if t_update > 0 else float(np.mean(cpu_rate))
            t_dtrsm = (jbw * jbw * n_loc_max) / max(hybrid_rate, 1e-9)

            # -- panel factorization + communication --------------------------------
            panel_rows_local = max(int(np.ceil((n - j) / P)), jbw) if P > 1 else n - j
            cpu_panel_rate = float(np.mean(cpu_hybrid)) * cfg.panel_efficiency
            t_panel = (panel_rows_local * jbw * jbw - jbw**3 / 3.0) / cpu_panel_rate
            if P > 1:
                # pivot search allreduce per column of the panel
                t_panel += jbw * self._alpha_beta(16.0, max(1, math.ceil(math.log2(P))))
            panel_bytes = panel_rows_local * jbw * DOUBLE_BYTES
            net_latency = self.net.latency if self.net else 0.0
            net_bandwidth = self.net.bandwidth if self.net else None
            t_pbcast = panel_bcast_time(
                cfg.bcast_algo, panel_bytes, Q, net_latency, net_bandwidth
            )
            swap_bytes = jbw * n_loc_max * DOUBLE_BYTES
            t_swap = self._alpha_beta(swap_bytes, 1) if P > 1 else 0.0
            t_ubcast = self._alpha_beta(
                jbw * n_loc_max * DOUBLE_BYTES, math.ceil(math.log2(P)) if P > 1 else 0
            )
            t_comm = t_pbcast + t_swap + t_ubcast
            if cfg.lookahead:
                # Depth-1 look-ahead: next panel's factorization + broadcast
                # proceed in the shadow of the current trailing update.  Only
                # the next owner's copy gates the shadowed path (1rm delivers
                # it in one message); the full broadcast still bounds the step.
                t_pbcast_crit = panel_bcast_critical_time(
                    cfg.bcast_algo, panel_bytes, Q, net_latency, net_bandwidth
                )
                step_time = (
                    max(t_update + t_dtrsm, t_panel + t_pbcast_crit, t_pbcast)
                    + t_swap
                    + t_ubcast
                )
            else:
                step_time = t_panel + t_dtrsm + t_comm + t_update

            step_start = elapsed
            elapsed += step_time
            step_flops = (2.0 / 3.0) * ((n - j) ** 3 - (n - j - jbw) ** 3)
            cum_flops += step_flops
            if collect_steps or progress is not None or telemetry is not None:
                trace = StepTrace(
                    step=jb,
                    j=j,
                    trailing=n - j - jbw,
                    step_time=step_time,
                    update_time=t_update,
                    panel_time=t_panel + t_dtrsm,
                    comm_time=t_comm,
                    flops=step_flops,
                    cum_time=elapsed,
                    cum_flops=cum_flops,
                    mean_gsplit=float(np.mean(gsplit)),
                )
                if collect_steps:
                    steps.append(trace)
                if progress is not None:
                    progress(trace)
                if telemetry is not None:
                    self._publish_step(telemetry, trace, step_start)

        # Back-substitution: 2 N^2 flops spread over the grid, CPU-bound.
        solve_rate = float(np.mean(cpu_full if cfg.mapping == "cpu_only" else cpu_hybrid))
        elapsed += 2.0 * n * n / (grid.size * solve_rate) + self._alpha_beta(
            n * DOUBLE_BYTES, 2 * (P + Q)
        )
        result = AnalyticResult(
            n=n,
            grid=(P, Q),
            config=cfg,
            elapsed=elapsed,
            flops=total_flops,
            steps=steps,
            degraded=injector.degraded_mode() if injector is not None else None,
        )
        if telemetry is not None:
            # Final figures match AnalyticResult exactly (backsolve included).
            telemetry.metrics.gauge("hpl.elapsed_seconds", "virtual run time").set(elapsed)
            telemetry.metrics.gauge("hpl.gflops", "HPL figure of merit").set(result.gflops)
        return result
