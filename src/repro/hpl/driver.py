"""HPL.dat-style configuration and the paper's five benchmark setups.

Section VI.B evaluates five Linpack builds on one compute element:

* ``cpu``             — MKL on all four cores (NB=196, the paper's CPU-only
  block size).
* ``acmlg``           — HPL linked straight against ACML-GPU: full offload,
  synchronous transfers out of HPL's pageable buffers, NB=1216.
* ``acmlg_adaptive``  — the vendor kernel wrapped in the adaptive two-level
  mapper (hybrid CPU+GPU, framework-managed pinned staging).
* ``acmlg_pipe``      — the vendor kernel wrapped in the software pipeline
  (GPU offload, transfers overlapped).
* ``acmlg_both``      — the full framework: adaptive mapping + pipelining.

The same configurations scale to multi-element grids for Section VI.C.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro import obs
from repro.hpl.analytic import AnalyticConfig, AnalyticHpl, AnalyticResult
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.presets import (
    NB_CPU_ONLY,
    NB_GPU,
    STANDARD_CLOCK_MHZ,
    tianhe1_cluster,
)
from repro.machine.variability import VariabilitySpec
from repro.util.validation import require

#: The five configurations of Fig. 8 / Fig. 9, by paper label.
CONFIGURATIONS: dict[str, AnalyticConfig] = {
    # Plain HPL 2.0 builds have no look-ahead; the framework configurations
    # add it among the paper's "well-known optimizations".
    "cpu": AnalyticConfig(
        nb=NB_CPU_ONLY, mapping="cpu_only", pipelined=False, pinned=True, lookahead=False
    ),
    # The vendor-linked HPL moves HPL's *pageable* matrix memory on every
    # call; 650 MB/s is the sustained pageable copy rate (the paper's §V.A
    # illustration rounds it to 500).  The framework configurations manage
    # their own pinned staging instead.
    "acmlg": AnalyticConfig(
        nb=NB_GPU, mapping="gpu_only", pipelined=False, pinned=False,
        host_bw_override=650e6, lookahead=False,
    ),
    "acmlg_adaptive": AnalyticConfig(nb=NB_GPU, mapping="adaptive", pipelined=False, pinned=True),
    "acmlg_pipe": AnalyticConfig(nb=NB_GPU, mapping="gpu_only", pipelined=True, pinned=True),
    "acmlg_both": AnalyticConfig(nb=NB_GPU, mapping="adaptive", pipelined=True, pinned=True),
}

#: Paper-facing display names.
CONFIG_LABELS = {
    "cpu": "CPU",
    "acmlg": "ACMLG",
    "acmlg_adaptive": "ACMLG+adaptive",
    "acmlg_pipe": "ACMLG+pipe",
    "acmlg_both": "ACMLG+both",
    "qilin": "Qilin",
}


@dataclass(frozen=True)
class HplConfig:
    """A full Linpack run description (the HPL.dat essentials)."""

    n: int
    grid: ProcessGrid
    analytic: AnalyticConfig

    @property
    def nb(self) -> int:
        return self.analytic.nb


@dataclass
class LinpackResult:
    """One Linpack measurement."""

    configuration: str
    n: int
    grid: tuple[int, int]
    gflops: float
    elapsed: float
    analytic: AnalyticResult

    @property
    def tflops(self) -> float:
        return self.gflops / 1e3


def _analytic_for(
    configuration: str,
    cluster: Cluster,
    grid: ProcessGrid,
    seed: int,
    overrides: Optional[dict] = None,
) -> AnalyticHpl:
    require(configuration in CONFIGURATIONS or configuration == "qilin",
            f"unknown configuration {configuration!r}")
    if configuration == "qilin":
        config = replace(CONFIGURATIONS["acmlg_both"], mapping="qilin", seed=seed)
    else:
        config = replace(CONFIGURATIONS[configuration], seed=seed)
    if overrides:
        config = replace(config, **overrides)
    return AnalyticHpl(
        cluster.rate_table(),
        grid,
        cluster.spec.interconnect,
        variability=cluster.spec.variability,
        config=config,
    )


def run_linpack(
    configuration: str,
    n: int,
    cluster: Cluster,
    grid: ProcessGrid,
    seed: int = 7,
    collect_steps: bool = False,
    overrides: Optional[dict] = None,
    progress=None,
    telemetry=None,
) -> LinpackResult:
    """Run one analytic Linpack on *grid* over *cluster*'s elements.

    *progress* is called with each panel's
    :class:`~repro.hpl.analytic.StepTrace`.  *telemetry* records per-panel
    spans and running-GFLOPS series; when None, the ambient
    :func:`repro.obs.current` telemetry (installed by e.g. ``python -m
    repro.bench ... --trace-out``) is used, so benchmark figures emit
    traces without any per-figure wiring.  Neither hook affects results.
    """
    if telemetry is None:
        telemetry = obs.current()
    stepper = _analytic_for(configuration, cluster, grid, seed, overrides)
    result = stepper.run(n, collect_steps=collect_steps, progress=progress, telemetry=telemetry)
    if telemetry is not None:
        telemetry.metrics.series(
            "hpl.final_gflops", "final GFLOPS per completed run"
        ).append(n, result.gflops, configuration=configuration)
    return LinpackResult(
        configuration=configuration,
        n=n,
        grid=(grid.nprow, grid.npcol),
        gflops=result.gflops,
        elapsed=result.elapsed,
        analytic=result,
    )


def single_element_cluster(
    gpu_clock_mhz: float = STANDARD_CLOCK_MHZ,
    variability: Optional[VariabilitySpec] = None,
    seed: int = 2009,
) -> Cluster:
    """A one-cabinet cluster whose element 0 is the single-element testbed.

    The element-to-element static spread is zeroed so single-element results
    describe the *nominal* element (the paper benchmarks one physical node).
    """
    from dataclasses import replace as _replace

    var = variability if variability is not None else VariabilitySpec()
    var = _replace(var, element_spread_sigma=0.0)
    spec = tianhe1_cluster(cabinets=1, gpu_clock_mhz=gpu_clock_mhz, variability=var)
    return Cluster(spec, seed=seed)


def run_linpack_element(
    configuration: str,
    n: int,
    gpu_clock_mhz: float = STANDARD_CLOCK_MHZ,
    variability: Optional[VariabilitySpec] = None,
    seed: int = 7,
    collect_steps: bool = False,
    overrides: Optional[dict] = None,
    progress=None,
    telemetry=None,
) -> LinpackResult:
    """Single compute element Linpack (the Section VI.B setting)."""
    cluster = single_element_cluster(gpu_clock_mhz, variability)
    return run_linpack(
        configuration,
        n,
        cluster,
        ProcessGrid(1, 1),
        seed=seed,
        collect_steps=collect_steps,
        overrides=overrides,
        progress=progress,
        telemetry=telemetry,
    )
