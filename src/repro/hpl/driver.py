"""HPL.dat-style configuration and the paper's five benchmark setups.

Section VI.B evaluates five Linpack builds on one compute element:

* ``cpu``             — MKL on all four cores (NB=196, the paper's CPU-only
  block size).
* ``acmlg``           — HPL linked straight against ACML-GPU: full offload,
  synchronous transfers out of HPL's pageable buffers, NB=1216.
* ``acmlg_adaptive``  — the vendor kernel wrapped in the adaptive two-level
  mapper (hybrid CPU+GPU, framework-managed pinned staging).
* ``acmlg_pipe``      — the vendor kernel wrapped in the software pipeline
  (GPU offload, transfers overlapped).
* ``acmlg_both``      — the full framework: adaptive mapping + pipelining.

The same configurations scale to multi-element grids for Section VI.C.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from enum import Enum
from typing import Optional

from repro import obs
from repro.faults.spec import DegradedMode, FaultSpec
from repro.hpl.analytic import AnalyticConfig, AnalyticHpl, AnalyticResult
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.presets import STANDARD_CLOCK_MHZ, tianhe1_cluster
from repro.machine.variability import VariabilitySpec
from repro.sched.builds import (  # noqa: F401  (re-exported legacy home)
    CONFIG_LABELS,
    CONFIGURATIONS,
    HPL_BUILDS,
    resolve_hpl_build,
)


class Configuration(str, Enum):
    """The benchmark configurations, as a closed, parse-time-validated set.

    Members are ``str`` subclasses comparing equal to their key, so code that
    matched on ``"acmlg_both"`` keeps working; new code should pass the enum
    (or call :meth:`parse` on user input, which raises a :class:`ValueError`
    naming the valid keys instead of failing deep inside the driver).

    Beyond the paper's five builds this adds the two comparison mappings the
    adaptive argument is measured against: ``QILIN`` (train-once, frozen
    splits) and ``STATIC_PEAK`` (the full framework but with GSplit pinned to
    the peak-trained value — the configuration that cannot react to faults).
    """

    CPU = "cpu"
    ACMLG = "acmlg"
    ACMLG_ADAPTIVE = "acmlg_adaptive"
    ACMLG_PIPE = "acmlg_pipe"
    ACMLG_BOTH = "acmlg_both"
    QILIN = "qilin"
    STATIC_PEAK = "static_peak"

    # Full string interchangeability: members format, compare AND hash as
    # their key, so dicts keyed by one are reachable by the other.
    __str__ = str.__str__
    __hash__ = str.__hash__

    @property
    def label(self) -> str:
        """The paper-facing display name (``ACMLG+both``, ``Qilin``, ...)."""
        return CONFIG_LABELS[self.value]

    @property
    def analytic(self) -> AnalyticConfig:
        """The :class:`AnalyticConfig` this configuration runs (seed unset)."""
        return _ANALYTIC[self]

    @classmethod
    def parse(cls, value: "str | Configuration") -> "Configuration":
        """Validate *value* into a member; clear error on unknown keys."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            valid = ", ".join(member.value for member in cls)
            raise ValueError(
                f"unknown configuration {value!r}; valid configurations: {valid}"
            ) from None


_ANALYTIC: dict[Configuration, AnalyticConfig] = {
    member: HPL_BUILDS[member.value] for member in Configuration
}


def validate_overrides(overrides: Optional[dict]) -> dict:
    """Check *overrides* keys against :class:`AnalyticConfig`'s fields.

    Returns a plain dict safe to splat into ``dataclasses.replace``; a typo'd
    key raises a :class:`ValueError` listing the valid field names instead of
    the opaque ``TypeError`` ``replace`` would produce.
    """
    if not overrides:
        return {}
    valid = {f.name for f in fields(AnalyticConfig)}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise ValueError(
            f"unknown AnalyticConfig override(s): {', '.join(unknown)}; "
            f"valid fields: {', '.join(sorted(valid))}"
        )
    return dict(overrides)


@dataclass(frozen=True)
class HplConfig:
    """A full Linpack run description (the HPL.dat essentials)."""

    n: int
    grid: ProcessGrid
    analytic: AnalyticConfig

    @property
    def nb(self) -> int:
        return self.analytic.nb


@dataclass
class LinpackResult:
    """One Linpack measurement."""

    configuration: str
    n: int
    grid: tuple[int, int]
    gflops: float
    elapsed: float
    analytic: AnalyticResult

    @property
    def tflops(self) -> float:
        return self.gflops / 1e3

    @property
    def degraded(self) -> Optional[DegradedMode]:
        """Fault summary of the run; ``None`` when nothing ever degraded."""
        return self.analytic.degraded


def _analytic_for(
    scheduler: "str | Configuration",
    cluster: Cluster,
    grid: ProcessGrid,
    seed: int,
    overrides: Optional[dict] = None,
    faults: Optional[FaultSpec] = None,
) -> AnalyticHpl:
    _, build = resolve_hpl_build(scheduler)
    config = replace(build, seed=seed)
    if overrides:
        config = replace(config, **validate_overrides(overrides))
    return AnalyticHpl(
        cluster.rate_table(),
        grid,
        cluster.spec.interconnect,
        variability=cluster.spec.variability,
        config=config,
        faults=faults,
    )


def _run_linpack(
    scheduler: "str | Configuration",
    n: int,
    cluster: Cluster,
    grid: ProcessGrid,
    seed: int = 7,
    collect_steps: bool = False,
    overrides: Optional[dict] = None,
    progress=None,
    telemetry=None,
    faults: Optional[FaultSpec] = None,
) -> LinpackResult:
    """The driver's run implementation (see :class:`repro.session.Session`).

    *scheduler* is any HPL-capable scheduler spec — a registry name, a
    legacy :class:`Configuration` key, or a
    :class:`~repro.sched.base.Scheduler` instance.  *progress* is called
    with each panel's :class:`~repro.hpl.analytic.StepTrace`.  *telemetry*
    records per-panel spans and running-GFLOPS series; when None, the
    ambient :func:`repro.obs.current` telemetry (installed by e.g. ``python
    -m repro.bench ... --trace-out``) is used, so benchmark figures emit
    traces without any per-figure wiring.  Neither hook affects results.
    """
    name, _ = resolve_hpl_build(scheduler)
    if telemetry is None:
        telemetry = obs.current()
    stepper = _analytic_for(scheduler, cluster, grid, seed, overrides, faults)
    result = stepper.run(n, collect_steps=collect_steps, progress=progress, telemetry=telemetry)
    if telemetry is not None:
        telemetry.metrics.series(
            "hpl.final_gflops", "final GFLOPS per completed run"
        ).append(n, result.gflops, configuration=name)
    return LinpackResult(
        configuration=name,
        n=n,
        grid=(grid.nprow, grid.npcol),
        gflops=result.gflops,
        elapsed=result.elapsed,
        analytic=result,
    )


def run_linpack(
    configuration: str,
    n: int,
    cluster: Cluster,
    grid: ProcessGrid,
    seed: int = 7,
    collect_steps: bool = False,
    overrides: Optional[dict] = None,
    progress=None,
    telemetry=None,
) -> LinpackResult:
    """Deprecated: build a :class:`repro.session.Scenario` and call
    :meth:`repro.session.Session.run` instead.  Results are identical."""
    warnings.warn(
        "run_linpack() is deprecated; build a repro.session.Scenario and "
        "call Session.run() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_linpack(
        configuration,
        n,
        cluster,
        grid,
        seed=seed,
        collect_steps=collect_steps,
        overrides=overrides,
        progress=progress,
        telemetry=telemetry,
    )


def single_element_cluster(
    gpu_clock_mhz: float = STANDARD_CLOCK_MHZ,
    variability: Optional[VariabilitySpec] = None,
    seed: int = 2009,
) -> Cluster:
    """A one-cabinet cluster whose element 0 is the single-element testbed.

    The element-to-element static spread is zeroed so single-element results
    describe the *nominal* element (the paper benchmarks one physical node).
    """
    from dataclasses import replace as _replace

    var = variability if variability is not None else VariabilitySpec()
    var = _replace(var, element_spread_sigma=0.0)
    spec = tianhe1_cluster(cabinets=1, gpu_clock_mhz=gpu_clock_mhz, variability=var)
    return Cluster(spec, seed=seed)


def run_linpack_element(
    configuration: str,
    n: int,
    gpu_clock_mhz: float = STANDARD_CLOCK_MHZ,
    variability: Optional[VariabilitySpec] = None,
    seed: int = 7,
    collect_steps: bool = False,
    overrides: Optional[dict] = None,
    progress=None,
    telemetry=None,
) -> LinpackResult:
    """Deprecated: build a :class:`repro.session.Scenario` (default grid is
    already the single-element Section VI.B setting) and call
    :meth:`repro.session.Session.run` instead.  Results are identical."""
    warnings.warn(
        "run_linpack_element() is deprecated; build a repro.session.Scenario "
        "and call Session.run() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    cluster = single_element_cluster(gpu_clock_mhz, variability)
    return _run_linpack(
        configuration,
        n,
        cluster,
        ProcessGrid(1, 1),
        seed=seed,
        collect_steps=collect_steps,
        overrides=overrides,
        progress=progress,
        telemetry=telemetry,
    )
