"""Read and write HPL.dat — the classic HPL input file format.

The paper's runs are plain HPL configurations ("The version of HPL is 2.0"),
so the reproduction speaks the same file format: problem sizes, block sizes
and process grids are parsed from/emitted to HPL.dat lines, and mapped onto
:class:`~repro.hpl.driver.HplConfig` objects.

The format is positional: line 1-2 header, then pairs of
``<count>``/``<values...>`` lines for Ns, NBs, and the PMAP line followed by
the counts/values for Ps and Qs.  Only the fields this reproduction uses are
interpreted; the rest are preserved for round-tripping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.hpl.grid import ProcessGrid
from repro.util.validation import require


@dataclass
class HplDat:
    """The subset of HPL.dat this reproduction consumes."""

    ns: list[int] = field(default_factory=lambda: [46000])
    nbs: list[int] = field(default_factory=lambda: [1216])
    grids: list[tuple[int, int]] = field(default_factory=lambda: [(1, 1)])
    header: str = "HPLinpack benchmark input file"
    origin: str = "repro: TianHe-1 adaptive hybrid Linpack reproduction"

    def __post_init__(self) -> None:
        require(len(self.ns) >= 1, "need at least one problem size")
        require(len(self.nbs) >= 1, "need at least one block size")
        require(len(self.grids) >= 1, "need at least one process grid")
        for n in self.ns:
            require(n >= 1, f"N must be >= 1, got {n}")
        for nb in self.nbs:
            require(nb >= 1, f"NB must be >= 1, got {nb}")
        for p, q in self.grids:
            require(p >= 1 and q >= 1, f"grid must be positive, got {(p, q)}")

    def process_grids(self) -> list[ProcessGrid]:
        return [ProcessGrid(p, q) for p, q in self.grids]

    def runs(self) -> Iterable[tuple[int, int, ProcessGrid]]:
        """Every (N, NB, grid) combination, HPL-style cross product."""
        for grid in self.process_grids():
            for nb in self.nbs:
                for n in self.ns:
                    yield n, nb, ProcessGrid(grid.nprow, grid.npcol)

    def render(self) -> str:
        """Emit an HPL.dat (HPL 2.0 layout, defaults for unused knobs)."""
        ps = " ".join(str(p) for p, _ in self.grids)
        qs = " ".join(str(q) for _, q in self.grids)
        lines = [
            self.header,
            self.origin,
            "HPL.out      output file name (if any)",
            "6            device out (6=stdout,7=stderr,file)",
            f"{len(self.ns)}            # of problems sizes (N)",
            " ".join(str(n) for n in self.ns) + "         Ns",
            f"{len(self.nbs)}            # of NBs",
            " ".join(str(nb) for nb in self.nbs) + "         NBs",
            "0            PMAP process mapping (0=Row-,1=Column-major)",
            f"{len(self.grids)}            # of process grids (P x Q)",
            ps + "            Ps",
            qs + "            Qs",
            "16.0         threshold",
        ]
        return "\n".join(lines)


def parse_hpl_dat(text: str) -> HplDat:
    """Parse the N/NB/P/Q structure out of an HPL.dat document."""
    lines = text.splitlines()
    require(len(lines) >= 12, "HPL.dat too short")

    def ints(line: str) -> list[int]:
        out = []
        for token in line.split():
            try:
                out.append(int(token))
            except ValueError:
                break  # the trailing comment starts
        require(len(out) >= 1, f"expected integers in line {line!r}")
        return out

    n_ns = ints(lines[4])[0]
    ns = ints(lines[5])[:n_ns]
    require(len(ns) == n_ns, f"expected {n_ns} Ns, found {len(ns)}")
    n_nbs = ints(lines[6])[0]
    nbs = ints(lines[7])[:n_nbs]
    require(len(nbs) == n_nbs, f"expected {n_nbs} NBs, found {len(nbs)}")
    n_grids = ints(lines[9])[0]
    ps = ints(lines[10])[:n_grids]
    qs = ints(lines[11])[:n_grids]
    require(
        len(ps) == n_grids and len(qs) == n_grids,
        f"expected {n_grids} Ps and Qs",
    )
    return HplDat(
        ns=ns, nbs=nbs, grids=list(zip(ps, qs)), header=lines[0], origin=lines[1]
    )


#: The paper's full-system configuration as an HPL.dat (Section VI.A).
TIANHE1_HPL_DAT = HplDat(ns=[2_240_000], nbs=[1216], grids=[(64, 80)])
