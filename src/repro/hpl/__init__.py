"""High-Performance Linpack on the simulated TianHe-1.

* :mod:`repro.hpl.grid` — P x Q process grids and 1-D/2-D block-cyclic maps.
* :mod:`repro.hpl.dist` — a *numeric* distributed right-looking LU with
  partial pivoting over the simulated MPI: panel gather-factor, row-wise
  panel broadcast, cross-row pivot exchanges, column-wise U broadcast and
  hybrid local updates.  Passes the official HPL residual test.
* :mod:`repro.hpl.solve` — back-substitution and the HPL acceptance metric.
* :mod:`repro.hpl.analytic` — the vectorized per-panel critical-path stepper
  used for paper-scale runs (single element up to the 5120-element system).
* :mod:`repro.hpl.driver` — HPL.dat-style configuration and the five
  benchmark configurations of Section VI.B.
"""

from repro.hpl.grid import BlockCyclic, ProcessGrid
from repro.hpl.solve import hpl_residual_ok
from repro.hpl.driver import (
    CONFIGURATIONS,
    Configuration,
    HplConfig,
    LinpackResult,
    run_linpack,
    run_linpack_element,
    validate_overrides,
)
from repro.hpl.analytic import AnalyticConfig, AnalyticHpl, StepTrace
from repro.hpl.dist import DistributedLU, ElementEngine, InstantEngine
from repro.hpl.element_linpack import ElementLinpack
from repro.hpl.hpl_dat import HplDat, parse_hpl_dat

__all__ = [
    "BlockCyclic",
    "ProcessGrid",
    "hpl_residual_ok",
    "HplConfig",
    "LinpackResult",
    "run_linpack",
    "run_linpack_element",
    "CONFIGURATIONS",
    "Configuration",
    "validate_overrides",
    "AnalyticConfig",
    "AnalyticHpl",
    "StepTrace",
    "DistributedLU",
    "ElementEngine",
    "InstantEngine",
    "ElementLinpack",
    "HplDat",
    "parse_hpl_dat",
]
