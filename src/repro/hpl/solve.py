"""Solve phase and the HPL acceptance test.

After the distributed factorization the triangular solves are O(N^2) —
negligible against the O(N^3) factorization — so the numeric path collects
the factors and solves centrally, then checks the official HPL residual:

    ||Ax - b||_inf / (eps * (||A||_inf * ||x||_inf + ||b||_inf) * N)  <  16
"""

from __future__ import annotations

import numpy as np

from repro.blas.dgetrf import lu_solve
from repro.blas.reference import hpl_residual
from repro.hpl.dist import FactorResult, collect_matrix
from repro.hpl.grid import ProcessGrid

#: The official HPL acceptance threshold.
HPL_THRESHOLD = 16.0


def solve_from_factorization(
    grid: ProcessGrid, result: FactorResult, n: int, nb: int, b: np.ndarray
) -> np.ndarray:
    """Solve ``A x = b`` from a :class:`FactorResult` (collect + lu_solve)."""
    factored = collect_matrix(grid, result.locals_, n, n, nb)
    return lu_solve(factored, result.piv, b)


def hpl_residual_ok(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> tuple[float, bool]:
    """(scaled residual, passes-the-Top500-test)."""
    r = hpl_residual(a, x, b)
    return r, bool(r < HPL_THRESHOLD)
