"""Batch mode for the analytic stepper: whole sweeps as array ops.

:meth:`repro.hpl.analytic.AnalyticHpl.run` walks one Linpack's panel steps
in a Python loop whose per-step arithmetic is already vectorized over the
P x Q grid.  A *sweep* — Fig. 9's five sizes, a split-ratio study, a
scaling curve — runs that loop once per point, paying the Python-level
per-step overhead ``sum(ceil(N_i/NB_i))`` times.  This module runs the loop
**once for the whole sweep** by giving every per-step array a leading batch
axis: step ``jb`` evaluates all points that still have a panel ``jb``, and
points that finished earlier are masked out of the elapsed accumulation.

Why this is exact, not approximate: every stochastic draw in the scalar
stepper (slow-noise innovations, adaptive measurement noise, Qilin training
realisations) happens once per *step index* with a size that depends only on
the grid — never on N or NB.  Two scalar runs with the same config and seed
therefore consume identical RNG sequences step-for-step, which is precisely
what lets one shared draw serve every point of the batch.  All remaining
arithmetic is elementwise or exact reductions (max), so batch results match
a fresh scalar run **bit-for-bit** in practice; the declared contract
(tested, and documented in ``docs/performance.md``) is agreement to 1e-9
relative.  The scalar path remains the verification oracle.

Restrictions: no fault injection (the injector's schedule is a function of
each run's own elapsed time), no per-step traces, no progress/telemetry
hooks.  Sweeps that need any of those fall back to the scalar stepper.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from repro.hpl.analytic import (
    AnalyticHpl,
    AnalyticResult,
    panel_bcast_critical_time,
    panel_bcast_time,
)
from repro.machine.variability import SlowNoise
from repro.util.rng import RngStream
from repro.util.units import DOUBLE_BYTES, lu_flops
from repro.util.validation import require, require_positive


def batch_linpack(
    configuration,
    ns: Sequence[int],
    cluster,
    grid,
    seed: int = 7,
    overrides: Optional[dict] = None,
    nbs: Optional[Sequence[int]] = None,
) -> list:
    """Batch twin of :func:`repro.hpl.driver._run_linpack` over a size sweep.

    Returns one :class:`~repro.hpl.driver.LinpackResult` per point, equal to
    running the scalar driver per point (no telemetry, no faults, no step
    traces — exactly the sweep fast path).
    """
    from repro.hpl.driver import LinpackResult, _analytic_for
    from repro.sched.builds import resolve_hpl_build

    name, _ = resolve_hpl_build(configuration)
    stepper = _analytic_for(configuration, cluster, grid, seed, overrides)
    return [
        LinpackResult(
            configuration=name,
            n=result.n,
            grid=result.grid,
            gflops=result.gflops,
            elapsed=result.elapsed,
            analytic=result,
        )
        for result in run_batch(stepper, ns, nbs)
    ]


def _first_local_at_or_after_batch(g: np.ndarray, nb: np.ndarray, nprocs: int) -> np.ndarray:
    """(B, nprocs) twin of ``analytic._first_local_at_or_after`` with per-point nb."""
    procs = np.arange(nprocs)
    block, offset = np.divmod(g, nb)
    cycle, pos = np.divmod(block, nprocs)
    low = (cycle * nb)[:, None]
    high = ((cycle + 1) * nb)[:, None]
    out = np.where(procs[None, :] > pos[:, None], low, high)
    return np.where(procs[None, :] == pos[:, None], low + offset[:, None], out)


def _local_count_batch(n: np.ndarray, nb: np.ndarray, nprocs: int) -> np.ndarray:
    """(B, nprocs) twin of ``analytic._local_count`` with per-point nb."""
    procs = np.arange(nprocs)
    nblocks = -(-n // nb)
    owned = (nblocks[:, None] - procs[None, :] + nprocs - 1) // nprocs
    count = owned * nb[:, None]
    count[np.arange(len(n)), (nblocks - 1) % nprocs] -= nblocks * nb - n
    return count


def run_batch(
    stepper: AnalyticHpl,
    ns: Sequence[int],
    nbs: Optional[Sequence[int]] = None,
) -> list[AnalyticResult]:
    """Evaluate every ``(ns[i], nbs[i])`` point in one vectorized pass.

    Equivalent to building a *fresh* stepper per point (the way
    :func:`repro.hpl.driver._run_linpack` does) and calling
    ``run(n, collect_steps=False)`` — same seeds, same noise realisations,
    same numbers.  ``nbs=None`` uses the stepper config's NB everywhere.
    Results carry no step traces; use the scalar oracle when you need them.
    """
    cfg = stepper.config
    require(stepper.faults is None, "batch mode does not support fault injection")
    nv = np.asarray(list(ns), dtype=np.int64)
    require(nv.size > 0, "batch needs at least one point")
    for n in nv:
        require_positive(int(n), "n")
    if nbs is None:
        nbv = np.full(nv.shape, cfg.nb, dtype=np.int64)
    else:
        nbv = np.asarray(list(nbs), dtype=np.int64)
        require(nbv.shape == nv.shape, "nbs must match ns point-for-point")
        for nb in nbv:
            require_positive(int(nb), "nb")

    grid, table, var = stepper.grid, stepper.table, stepper.var
    P, Q = grid.nprow, grid.npcol
    B = nv.size
    n_blocks = -(-nv // nbv)
    max_blocks = int(n_blocks.max())

    # A fresh generator, exactly like a fresh scalar stepper's: the scalar
    # oracle builds one AnalyticHpl per run, so its stream always starts here.
    rng = RngStream(cfg.seed).child("analytic").generator()
    gpu_noise = SlowNoise(grid.size, var.slow_noise_sigma, var.slow_noise_rho, rng)
    cpu_noise = SlowNoise(grid.size, var.slow_noise_sigma, var.slow_noise_rho, rng)
    meas_sigma = var.measurement_sigma

    ga = stepper._grid_array
    gpu_base = ga(table.gpu_peak)
    eff_max = ga(table.eff_max)
    w_half = ga(table.w_half)
    drift_depth = ga(table.drift_depth)
    cpu_hybrid = ga(table.cpu_hybrid_rate)
    cpu_even = ga(table.cpu_hybrid_even_rate)
    cpu_full = ga(table.cpu_full_rate)
    initial_gsplit = ga(table.initial_gsplit)

    def gpu_rate_factory(peak_now: np.ndarray):
        def rate_of(w_gpu: np.ndarray) -> np.ndarray:
            eff = np.where(w_gpu > 0, eff_max * w_gpu / (w_gpu + w_half), 0.0)
            return peak_now * eff

        return rate_of

    frozen_split_of = None
    if cfg.mapping == "qilin":
        train_noise = SlowNoise(
            grid.size, var.slow_noise_sigma, var.slow_noise_rho,
            RngStream(cfg.seed).child("qilin-train").generator(),
        )
        train_peak = gpu_base * ga(train_noise.factors())
        train_sigma = var.training_measurement_sigma
        if train_sigma > 0:
            err = RngStream(cfg.seed).child("qilin-meas").generator()
            train_peak = train_peak * np.exp(
                err.normal(-0.5 * train_sigma**2, train_sigma, train_peak.shape)
            )
            train_cpu = cpu_even * np.exp(
                err.normal(-0.5 * train_sigma**2, train_sigma, cpu_even.shape)
            )
        else:
            train_cpu = cpu_even
        train_rate_of = gpu_rate_factory(train_peak)

        def frozen_split_of(m: np.ndarray, nn: np.ndarray, k: np.ndarray) -> np.ndarray:
            return stepper._balanced_split(m, nn, k, train_rate_of, train_cpu)

    # Per-point block-cyclic totals (constant over the run).
    total_rows = _local_count_batch(nv, nbv, P)  # (B, P)
    total_cols = _local_count_batch(nv, nbv, Q)  # (B, Q)

    elapsed = np.zeros(B)
    cpu_panel_rate = float(np.mean(cpu_hybrid)) * cfg.panel_efficiency
    log2P = math.ceil(math.log2(P)) if P > 1 else 0
    log2Q = math.ceil(math.log2(Q)) if Q > 1 else 0

    for jb in range(max_blocks):
        active = jb < n_blocks
        j = jb * nbv
        jbw = np.maximum(np.minimum(nbv, nv - j), 0)  # 0 on finished points
        gpu_noise.step()
        cpu_noise.step()
        gpu_slow = ga(gpu_noise.factors())
        cpu_slow = ga(cpu_noise.factors())
        # math.exp per point keeps the drift factor bit-identical to the
        # scalar oracle (np.exp may differ from libm by an ulp).
        if table.drift_tau > 0:
            warm = np.array([math.exp(-float(e) / table.drift_tau) for e in elapsed])
            drift = 1.0 - drift_depth[None, :, :] * (1.0 - warm)[:, None, None]
        else:
            drift = np.broadcast_to(1.0 - drift_depth, (B, P, Q))
        peak_now = gpu_base[None, :, :] * drift * gpu_slow[None, :, :]
        rate_of = gpu_rate_factory(peak_now)

        g = j + jbw
        m_loc = np.maximum(total_rows - _first_local_at_or_after_batch(g, nbv, P), 0)
        n_loc = np.maximum(total_cols - _first_local_at_or_after_batch(g, nbv, Q), 0)
        m2 = m_loc[:, :, None] * np.ones((1, 1, Q))
        n2 = np.ones((1, P, 1)) * n_loc[:, None, :]
        k3 = jbw.astype(float)[:, None, None]

        if cfg.mapping == "cpu_only":
            gsplit = np.zeros((B, P, Q))
            cpu_rate = cpu_full * cpu_slow
        elif cfg.mapping == "gpu_only":
            gsplit = np.ones((B, P, Q))
            cpu_rate = cpu_hybrid * cpu_slow
        elif cfg.mapping == "static":
            gsplit = np.broadcast_to(initial_gsplit, (B, P, Q))
            cpu_rate = cpu_even * cpu_slow
        elif cfg.mapping == "qilin":
            gsplit = frozen_split_of(m2, n2, k3)
            cpu_rate = cpu_even * cpu_slow
        else:  # adaptive
            cpu_rate = (cpu_hybrid if cfg.level2 else cpu_even) * cpu_slow
            if meas_sigma > 0:
                mfac = np.exp(rng.normal(-0.5 * meas_sigma**2, meas_sigma, (2, P, Q)))
            else:
                mfac = np.ones((2, P, Q))
            measured_rate_of = gpu_rate_factory(peak_now * mfac[0])
            gsplit = stepper._balanced_split(m2, n2, k3, measured_rate_of, cpu_rate * mfac[1])

        _, _, makespan = stepper._update_times(m2, n2, k3, gsplit, rate_of, cpu_rate)
        if cfg.endgame_cpu_fallback and cfg.mapping not in ("cpu_only",):
            w_step = 2.0 * m2 * n2 * k3
            t_cpu_full = np.where(
                w_step > 0, w_step / np.maximum(cpu_full * cpu_slow, 1e-9), 0.0
            )
            makespan = np.minimum(makespan, t_cpu_full)
        t_update = makespan.max(axis=(1, 2))

        n_loc_max = n_loc.max(axis=1)
        w_update_max = (2.0 * m2 * n2 * k3).max(axis=(1, 2))
        # Guard matches the scalar oracle's `if t_update > 0` branch: real
        # update times are far above the 1e-300 floor, and t_update == 0
        # takes the mean-CPU-rate branch exactly as the scalar code does.
        hybrid_rate = np.where(
            t_update > 0,
            w_update_max / np.maximum(t_update, 1e-300),
            float(np.mean(cpu_rate)),
        )
        t_dtrsm = (jbw * jbw * n_loc_max) / np.maximum(hybrid_rate, 1e-9)

        if P > 1:
            panel_rows_local = np.maximum(np.ceil((nv - j) / P).astype(np.int64), jbw)
        else:
            panel_rows_local = nv - j
        t_panel = (panel_rows_local * jbw * jbw - jbw**3 / 3.0) / cpu_panel_rate
        if P > 1:
            t_panel = t_panel + jbw * stepper._alpha_beta(16.0, max(1, log2P))
        panel_bytes = panel_rows_local * jbw * DOUBLE_BYTES
        net_latency = stepper.net.latency if stepper.net else 0.0
        net_bandwidth = stepper.net.bandwidth if stepper.net else None
        t_pbcast = panel_bcast_time(
            cfg.bcast_algo, panel_bytes.astype(float), Q, net_latency, net_bandwidth
        )
        if np.isscalar(t_pbcast):
            t_pbcast = np.full(B, float(t_pbcast))
        swap_bytes = jbw * n_loc_max * DOUBLE_BYTES
        t_swap = stepper._alpha_beta(swap_bytes, 1) if P > 1 else np.zeros(B)
        t_ubcast = stepper._alpha_beta(jbw * n_loc_max * DOUBLE_BYTES, log2P)
        t_comm = t_pbcast + t_swap + t_ubcast
        if cfg.lookahead:
            t_pbcast_crit = panel_bcast_critical_time(
                cfg.bcast_algo, panel_bytes.astype(float), Q, net_latency, net_bandwidth
            )
            step_time = (
                np.maximum(
                    np.maximum(t_update + t_dtrsm, t_panel + t_pbcast_crit), t_pbcast
                )
                + t_swap
                + t_ubcast
            )
        else:
            step_time = t_panel + t_dtrsm + t_comm + t_update
        elapsed = elapsed + np.where(active, step_time, 0.0)

    solve_rate = float(np.mean(cpu_full if cfg.mapping == "cpu_only" else cpu_hybrid))
    elapsed = elapsed + 2.0 * nv.astype(float) ** 2 / (grid.size * solve_rate) + (
        stepper._alpha_beta(nv.astype(float) * DOUBLE_BYTES, 2 * (P + Q))
    )

    return [
        AnalyticResult(
            n=int(nv[i]),
            grid=(P, Q),
            config=cfg if int(nbv[i]) == cfg.nb else replace(cfg, nb=int(nbv[i])),
            elapsed=float(elapsed[i]),
            flops=lu_flops(int(nv[i])),
            steps=[],
        )
        for i in range(B)
    ]
