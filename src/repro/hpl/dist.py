"""Numeric distributed right-looking LU with partial pivoting.

One DES process per rank executes, for every NB-wide column block (one HPL
iteration):

1. **Panel gather + factor** — the grid column owning the panel gathers its
   distributed rows to the diagonal-block owner, which factors the panel
   with :func:`~repro.blas.dgetrf.dgetf2` (global pivot indices).
2. **Panel scatter + row broadcast** — the diagonal owner scatters each grid
   row's share of the factored panel back down its process column
   (``scatterv``), then every owning-column rank broadcasts its share (plus
   the pivots) along its process *row* with the configured HPL ``BCAST``
   algorithm (binomial / 1ring / 1rm / long — see :mod:`repro.mpi.bcast`).
   This is HPL's row-scoped panel broadcast: no rank ever receives panel
   rows it does not need for its own L21/write-back, which is exactly the
   per-rank volume the analytic model charges.
3. **Pivot application** — each grid column applies the row interchanges to
   its non-panel columns; rows living on different grid rows are exchanged
   point-to-point, in pivot order.
4. **U block row** — the grid row owning the diagonal block solves
   ``U12 = L11^-1 A12`` on its local trailing columns and broadcasts it down
   each grid column (column-scoped sub-communicator).
5. **Trailing update** — every rank performs its local share of
   ``A22 -= L21 @ U12`` through its :class:`RankEngine` (the hybrid DGEMM in
   a full simulation; instantaneous math in pure-numeric tests).

The result passes the official HPL residual test (see tests/hpl/).  A
drained calendar with ranks stuck in a collective surfaces as
:class:`~repro.mpi.comm.CollectiveDeadlockError` naming ranks and tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Sequence

import numpy as np

from repro.blas.dgetrf import dgetf2
from repro.blas.dtrsm import dtrsm
from repro.hpl.grid import BlockCyclic, ProcessGrid
from repro.mpi.comm import SimComm, SimMPI, run_ranks
from repro.sim import Event, Simulator
from repro.util.validation import require


def panel_factor_flops(m: int, nb: int) -> float:
    """Flop count of dgetf2 on an m x nb panel (m >= nb)."""
    if m <= 0 or nb <= 0:
        return 0.0
    return float(m * nb * nb - nb**3 / 3.0)


def dtrsm_flops(nb: int, n_cols: int) -> float:
    """Flop count of the U12 triangular solve."""
    return float(nb * nb * n_cols)


class InstantEngine:
    """Numeric-only engine: real math, zero simulated time."""

    def dgemm_update(self, l21: np.ndarray, u12: np.ndarray, c: np.ndarray):
        """c -= l21 @ u12 (generator for interface parity)."""
        c -= l21 @ u12
        return
        yield  # pragma: no cover - makes this a generator function

    def charge_cpu(self, flops: float):
        """No time charged."""
        return
        yield  # pragma: no cover


class FlopsEngine:
    """Real math, time charged from flop counts at fixed device rates.

    The scalable middle ground between :class:`InstantEngine` (no timing at
    all) and :class:`ElementEngine` (full mapper/pipeline machinery per
    rank): the trailing update and the CPU-side phases take
    ``flops / rate`` simulated seconds, nothing else.  One instance per rank
    is cheap enough to run 8x8 and 16x16 process grids through the DES/
    analytic crossval matrix, while keeping the timing non-trivial (compute
    overlaps communication, the critical path is real).
    """

    def __init__(self, gemm_rate: float = 2.5e11, cpu_rate: float = 4.0e10) -> None:
        require(gemm_rate > 0 and cpu_rate > 0, "engine rates must be > 0")
        self.sim: Optional[Simulator] = None  # bound by DistributedLU.factor
        self.gemm_rate = gemm_rate
        self.cpu_rate = cpu_rate
        self.update_time = 0.0
        self.cpu_phase_time = 0.0

    def dgemm_update(self, l21: np.ndarray, u12: np.ndarray, c: np.ndarray):
        m, k = l21.shape
        n = u12.shape[1]
        c -= l21 @ u12
        duration = 2.0 * m * n * k / self.gemm_rate
        self.update_time += duration
        assert self.sim is not None, "FlopsEngine used outside DistributedLU"
        yield self.sim.timeout(duration)

    def charge_cpu(self, flops: float):
        if flops <= 0:
            return
        duration = flops / self.cpu_rate
        self.cpu_phase_time += duration
        assert self.sim is not None, "FlopsEngine used outside DistributedLU"
        yield self.sim.timeout(duration)


class ElementEngine:
    """Engine backed by one compute element: hybrid DGEMM + CPU-side phases.

    The trailing update runs through :class:`~repro.core.hybrid_dgemm.HybridDgemm`
    (so its time reflects the mapper/pipeline configuration *and* the real
    math is performed); panel factorization and DTRSM are charged to the
    compute cores at a reduced efficiency (they are latency/memory bound).
    """

    def __init__(self, hybrid, panel_efficiency: float = 0.6) -> None:
        self.hybrid = hybrid
        self.element = hybrid.element
        self.panel_efficiency = panel_efficiency
        self.update_time = 0.0
        self.cpu_phase_time = 0.0

    def dgemm_update(self, l21: np.ndarray, u12: np.ndarray, c: np.ndarray):
        m, k = l21.shape
        n = u12.shape[1]
        start = self.element.sim.now
        result = yield from self.hybrid.run(
            m, n, k, a=np.ascontiguousarray(l21), b=u12, c=c, alpha=-1.0, beta=1.0
        )
        self.update_time += self.element.sim.now - start
        return result

    def charge_cpu(self, flops: float):
        if flops <= 0:
            return
        rate = self.element.cpu_compute_rate() * self.panel_efficiency
        duration = flops / rate
        self.cpu_phase_time += duration
        yield self.element.sim.timeout(duration)


@dataclass
class RankStats:
    """Per-rank accounting of one factorization."""

    rank: int
    elapsed: float
    update_time: float = 0.0
    cpu_phase_time: float = 0.0


@dataclass
class FactorResult:
    """Outcome of a distributed factorization."""

    piv: np.ndarray  # global pivot rows, 0-based
    locals_: list[np.ndarray]  # per-rank local arrays (factored in place)
    stats: list[RankStats]
    elapsed: float
    bytes_sent: float
    messages: int


def distribute_matrix(grid: ProcessGrid, a: np.ndarray, nb: int) -> list[np.ndarray]:
    """Scatter a global matrix into per-rank block-cyclic local arrays."""
    n_rows, n_cols = a.shape
    rows = BlockCyclic(n_rows, nb, grid.nprow)
    cols = BlockCyclic(n_cols, nb, grid.npcol)
    locals_: list[np.ndarray] = []
    for rank in range(grid.size):
        p, q = grid.coords(rank)
        gr = rows.globals_of(p)
        gc = cols.globals_of(q)
        locals_.append(np.ascontiguousarray(a[np.ix_(gr, gc)]))
    return locals_


def collect_matrix(
    grid: ProcessGrid, locals_: Sequence[np.ndarray], n_rows: int, n_cols: int, nb: int
) -> np.ndarray:
    """Inverse of :func:`distribute_matrix`."""
    rows = BlockCyclic(n_rows, nb, grid.nprow)
    cols = BlockCyclic(n_cols, nb, grid.npcol)
    out = np.empty((n_rows, n_cols))
    for rank in range(grid.size):
        p, q = grid.coords(rank)
        out[np.ix_(rows.globals_of(p), cols.globals_of(q))] = locals_[rank]
    return out


class DistributedLU:
    """Runs the distributed factorization on a simulator."""

    def __init__(
        self,
        sim: Simulator,
        grid: ProcessGrid,
        nb: int,
        world: SimMPI,
        engines: Optional[Sequence[Any]] = None,
        bcast_algorithm: str = "binomial",
    ) -> None:
        require(world.n_ranks == grid.size, "world size must match the grid")
        self.sim = sim
        self.grid = grid
        self.nb = nb
        self.world = world
        self.engines = list(engines) if engines is not None else [InstantEngine()] * grid.size
        require(len(self.engines) == grid.size, "one engine per rank required")
        for engine in self.engines:
            if getattr(engine, "sim", False) is None:  # an unbound FlopsEngine
                engine.sim = sim
        self.bcast_algorithm = bcast_algorithm

    def factor(self, a: np.ndarray) -> FactorResult:
        """Factor the global matrix *a* (not modified); returns the result."""
        require(a.ndim == 2 and a.shape[0] == a.shape[1], "A must be square")
        n = a.shape[0]
        locals_ = distribute_matrix(self.grid, a, self.nb)
        piv_store: dict[int, list[np.ndarray]] = {}
        start = self.sim.now
        values = run_ranks(
            self.sim,
            self.world,
            lambda comm: self._rank_lu(comm.rank, n, locals_[comm.rank], comm, piv_store),
            name="lu.rank",
        )
        elapsed = self.sim.now - start
        piv = np.concatenate(piv_store[0]) if piv_store.get(0) else np.empty(0, dtype=np.int64)
        stats = []
        for rank, value in enumerate(values):
            engine = self.engines[rank]
            stats.append(
                RankStats(
                    rank=rank,
                    elapsed=float(value),
                    update_time=getattr(engine, "update_time", 0.0),
                    cpu_phase_time=getattr(engine, "cpu_phase_time", 0.0),
                )
            )
        return FactorResult(
            piv=piv,
            locals_=locals_,
            stats=stats,
            elapsed=elapsed,
            bytes_sent=self.world.bytes_sent,
            messages=self.world.messages_sent,
        )

    # -- the per-rank algorithm ---------------------------------------------------
    def _rank_lu(
        self,
        rank: int,
        n: int,
        local: np.ndarray,
        comm: SimComm,
        piv_store: dict[int, list[np.ndarray]],
    ) -> Generator[Event, Any, float]:
        sim = self.sim
        t0 = sim.now
        grid, nb = self.grid, self.nb
        p, q = grid.coords(rank)
        rows = BlockCyclic(n, nb, grid.nprow)
        cols = BlockCyclic(n, nb, grid.npcol)
        col_group = grid.col_comm(comm)
        row_group = grid.row_comm(comm)
        engine = self.engines[rank]
        my_row_globals = rows.globals_of(p)
        my_pivs: list[np.ndarray] = []
        piv_store[rank] = my_pivs

        n_blocks = -(-n // nb)
        for jb in range(n_blocks):
            j = jb * nb
            jbw = min(nb, n - j)
            owner_q = jb % grid.npcol
            owner_p = jb % grid.nprow

            # 1. Panel gather (within the owning grid column) + factor.
            lr0 = rows.first_local_at_or_after(p, j)
            part = None
            if q == owner_q:
                lcp = cols.local_index(j)
                contribution = (my_row_globals[lr0:], local[lr0:, lcp : lcp + jbw].copy())
                gathered = yield from col_group.gather(
                    contribution, root_local=owner_p, tag=("pg", jb)
                )
                parts = None
                if p == owner_p:
                    panel = np.empty((n - j, jbw))
                    for globals_g, block in gathered:
                        panel[globals_g - j, :] = block
                    yield from engine.charge_cpu(panel_factor_flops(n - j, jbw))
                    piv = dgetf2(panel, offset=j)
                    # Each grid row's share of L: its own globals >= j.
                    parts = []
                    for pp in range(grid.nprow):
                        gsel = rows.globals_of(pp)
                        gsel = gsel[rows.first_local_at_or_after(pp, j) :]
                        parts.append((np.ascontiguousarray(panel[gsel - j, :]), piv))
                # 2a. Scatter the factored shares back down the owning column.
                part = yield from col_group.scatterv(parts, root_local=owner_p, tag=("ps", jb))

            # 2b. Row-scoped broadcast of this grid row's share + pivots,
            # with the configured HPL BCAST algorithm.
            panel_rows, piv = yield from row_group.bcast(
                part, root_local=owner_q, algorithm=self.bcast_algorithm, tag=("pb", jb)
            )
            my_pivs.append(piv)

            # 3. Apply the interchanges to the non-panel columns.
            if q == owner_q:
                lcp = cols.local_index(j)
                other_cols = np.r_[0:lcp, lcp + jbw : local.shape[1]]
            else:
                other_cols = np.arange(local.shape[1])
            yield from self._apply_swaps(local, piv, j, rows, p, q, other_cols, comm, jb)

            # ...and write the factored share into the owning column's rows.
            if q == owner_q:
                lcp = cols.local_index(j)
                local[lr0:, lcp : lcp + jbw] = panel_rows

            # 4. U12 on the diagonal grid row, broadcast down each grid column.
            # Every rank in grid row owner_p holds L11 (the first jbw rows of
            # its share are globals j .. j+jbw-1, which that row owns).
            lc1 = cols.first_local_at_or_after(q, j + jbw)
            u12 = None
            if p == owner_p and lc1 < local.shape[1]:
                lrp = rows.local_index(j)
                a12 = local[lrp : lrp + jbw, lc1:]
                yield from engine.charge_cpu(dtrsm_flops(jbw, a12.shape[1]))
                dtrsm(panel_rows[:jbw, :jbw], a12, side="left", uplo="lower", unit_diag=True)
                u12 = a12
            if grid.nprow > 1 and lc1 < local.shape[1]:
                u12 = yield from col_group.bcast(u12, root_local=owner_p, tag=("ub", jb))

            # 5. Local trailing update through the engine (the hybrid DGEMM).
            lr1 = rows.first_local_at_or_after(p, j + jbw)
            if lr1 < local.shape[0] and lc1 < local.shape[1] and u12 is not None:
                l21 = panel_rows[lr1 - lr0 :, :]
                c = local[lr1:, lc1:]
                yield from engine.dgemm_update(l21, u12, c)
        return sim.now - t0

    def _apply_swaps(
        self,
        local: np.ndarray,
        piv: np.ndarray,
        j: int,
        rows: BlockCyclic,
        p: int,
        q: int,
        other_cols: np.ndarray,
        comm: SimComm,
        jb: int,
    ) -> Generator[Event, Any, None]:
        """Exchange pivot rows across grid rows, in pivot order."""
        if len(other_cols) == 0:
            return
        grid = self.grid
        for i, r2 in enumerate(piv):
            r1 = j + i
            if r1 == r2:
                continue
            o1, o2 = rows.owner(r1), rows.owner(r2)
            if p == o1 == o2:
                l1, l2 = rows.local_index(r1), rows.local_index(r2)
                tmp = local[l1, other_cols].copy()
                local[l1, other_cols] = local[l2, other_cols]
                local[l2, other_cols] = tmp
            elif p == o1:
                l1 = rows.local_index(r1)
                peer = grid.rank_of(o2, q)
                theirs = yield from comm.sendrecv(
                    local[l1, other_cols].copy(), peer, tag=("sw", jb, i)
                )
                local[l1, other_cols] = theirs
            elif p == o2:
                l2 = rows.local_index(r2)
                peer = grid.rank_of(o1, q)
                theirs = yield from comm.sendrecv(
                    local[l2, other_cols].copy(), peer, tag=("sw", jb, i)
                )
                local[l2, other_cols] = theirs
