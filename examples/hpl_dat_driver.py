#!/usr/bin/env python
"""Drive the reproduction from a classic HPL.dat input file.

Reads the same input format the paper's runs used (HPL 2.0), maps each
(N, NB, P x Q) combination onto the analytic stepper over a matching
TianHe-1 slice, and prints an HPL-style results table.  Without an argument
it uses the paper's full-system configuration: N=2 240 000, NB=1216, 64x80.

Run:  python examples/hpl_dat_driver.py [path/to/HPL.dat]
"""

import sys

from repro import Cluster, Scenario, Session, tianhe1_cluster
from repro.hpl.hpl_dat import TIANHE1_HPL_DAT, parse_hpl_dat
from repro.util.tables import TextTable
from repro.util.units import fmt_time


def main(path: str | None = None) -> None:
    if path:
        dat = parse_hpl_dat(open(path).read())
        print(f"parsed {path}:")
    else:
        dat = TIANHE1_HPL_DAT
        print("no input file given — using the paper's full-system HPL.dat:")
    print(dat.render())
    print()

    table = TextTable(
        ["N", "NB", "P", "Q", "time", "GFLOPS"],
        title="repro Linpack results (configuration: ACMLG+both)",
    )
    for n, nb, grid in dat.runs():
        cabinets = max(1, -(-grid.size // 64))
        if cabinets > 80:
            raise SystemExit(f"grid {grid.nprow}x{grid.npcol} exceeds TianHe-1")
        cluster = Cluster(tianhe1_cluster(cabinets=cabinets), seed=2009)
        result = Session(
            Scenario(
                scheduler="acmlg_both", n=n, cluster=cluster, grid=grid,
                overrides={"nb": nb},
            )
        ).run()
        table.add_row(
            n, nb, grid.nprow, grid.npcol, fmt_time(result.elapsed), result.gflops
        )
    print(table.render())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
