#!/usr/bin/env python
"""The numeric distributed HPL: real math over simulated MPI.

Factors a random system on a 2x3 process grid — panel gather/factor, pivot
row exchanges across grid rows, panel and U broadcasts, hybrid trailing
updates on six simulated compute elements — then solves and checks the
official HPL residual.  Every floating-point number is real; only *time* is
simulated.

Run:  python examples/distributed_lu_numeric.py [N]
"""

import sys

import numpy as np

from repro import ComputeElement, HybridDgemm, ProcessGrid, SimMPI, Simulator, StaticMapper
from repro.hpl.dist import DistributedLU, ElementEngine
from repro.hpl.solve import hpl_residual_ok, solve_from_factorization
from repro.machine.interconnect import Interconnect
from repro.machine.presets import QDR_INFINIBAND, tianhe1_element
from repro.util.units import lu_flops


def main(n: int = 96) -> None:
    nb = 16
    grid = ProcessGrid(2, 3)
    sim = Simulator()
    network = Interconnect(sim, QDR_INFINIBAND, grid.size)
    world = SimMPI(sim, grid.size, network)

    engines = []
    for rank in range(grid.size):
        element = ComputeElement(sim, tianhe1_element(), name=f"rank{rank}")
        hybrid = HybridDgemm(element, StaticMapper(element.initial_gsplit, 3), pipelined=True)
        engines.append(ElementEngine(hybrid))

    rng = np.random.default_rng(42)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal(n)

    print(f"factoring a {n}x{n} system on a {grid.nprow}x{grid.npcol} grid (NB={nb})...")
    lu = DistributedLU(sim, grid, nb, world, engines=engines)
    result = lu.factor(a)

    x = solve_from_factorization(grid, result, n, nb, b)
    residual, ok = hpl_residual_ok(a, x, b)

    print(f"simulated wall time : {result.elapsed * 1e3:.3f} ms")
    print(f"simulated rate      : {lu_flops(n) / result.elapsed / 1e9:.2f} GFLOPS aggregate")
    print(f"MPI traffic         : {result.messages} messages, {result.bytes_sent / 1e6:.2f} MB")
    print(f"HPL residual        : {residual:.4f}  ({'PASSED' if ok else 'FAILED'}, threshold 16)")
    print(f"||Ax-b||_inf        : {np.max(np.abs(a @ x - b)):.2e}")
    for stats in result.stats:
        print(f"  rank {stats.rank}: update {stats.update_time * 1e3:7.3f} ms, "
              f"panel/dtrsm {stats.cpu_phase_time * 1e3:7.3f} ms")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 96)
