#!/usr/bin/env python
"""Adaptive mapping under fire: inject failures, watch it rebalance.

Three scenarios on one compute element, adaptive vs static side by side:

1. thermal emergency — the GPU is downclocked 750 -> 575 MHz mid-sequence
   (the paper had to do exactly this for long runs);
2. a compute core degrades to 60% (a sick DIMM, a noisy neighbour — the
   Section IV.A scenario where "the end time is the last who finishes");
3. both at once.

Run:  python examples/adaptive_under_fire.py
"""

from repro import (
    AdaptiveMapper,
    ComputeElement,
    HybridDgemm,
    Simulator,
    StaticMapper,
    tianhe1_element,
)
from repro.machine.presets import DOWNCLOCKED_MHZ
from repro.machine.variability import NO_VARIABILITY
from repro.util.tables import TextTable
from repro.util.units import dgemm_flops

N = 10240
RUNS = 10
INJECT_AT = 4


def make(mapper_kind):
    element = ComputeElement(Simulator(), tianhe1_element(), variability=NO_VARIABILITY)
    if mapper_kind == "adaptive":
        mapper = AdaptiveMapper(
            element.initial_gsplit, 3, max_workload=dgemm_flops(N, N, N) * 1.05
        )
    else:
        mapper = StaticMapper(element.initial_gsplit, 3)
    return element, mapper, HybridDgemm(element, mapper, pipelined=True, jitter=False)


def scenario(name, inject):
    print(f"\n=== {name} (injected before run {INJECT_AT}) ===")
    table = TextTable(["run", "static GFLOPS", "adaptive GFLOPS", "adaptive GSplit"])
    engines = {kind: make(kind) for kind in ("static", "adaptive")}
    for run in range(RUNS):
        row = [run]
        for kind in ("static", "adaptive"):
            element, mapper, engine = engines[kind]
            if run == INJECT_AT:
                inject(element)
            result = engine.run_to_completion(N, N, N)
            row.append(f"{result.gflops:.1f}")
            if kind == "adaptive":
                row.append(f"{result.gsplit:.3f}")
        table.add_row(*row)
    print(table.render())
    for kind in ("static", "adaptive"):
        element, _, _ = engines[kind]
        print(f"  {kind}: total simulated time {element.sim.now:.1f} s")


def main() -> None:
    scenario("GPU downclock 750 -> 575 MHz",
             lambda el: el.gpu.set_clock(DOWNCLOCKED_MHZ))

    def degrade_core(el):
        el.compute_cores[1].static_factor *= 0.6

    scenario("compute core 1 degrades to 60%", degrade_core)

    def both(el):
        el.gpu.set_clock(DOWNCLOCKED_MHZ)
        degrade_core(el)

    scenario("both failures at once", both)

    print("\nThe static mapper keeps shipping 88.9% of every DGEMM to a GPU "
          "that lost a quarter of its clock,\nand keeps splitting the CPU "
          "share evenly across unequal cores; the adaptive mapper re-reads\n"
          "reality every call and re-balances within one iteration.")


if __name__ == "__main__":
    main()
