#!/usr/bin/env python
"""Scale the Linpack from one cabinet toward the full TianHe-1.

Reproduces the Section VI.C story end to end: cabinet-level scaling
(Fig. 12), the adaptive-vs-Qilin comparison with its training-energy bill
(Fig. 11), and the thermal reasoning behind the 575 MHz operating point.

Run:  python examples/tianhe1_scaling.py [max_cabinets]
      (default 8; 80 reproduces the full 0.563 PFLOPS run, ~30 s)
"""

import sys

from repro import Cluster, ProcessGrid, Scenario, Session, tianhe1_cluster
from repro.bench.cabinet import grid_for, problem_size_for
from repro.bench.scaling import GRIDS, problem_size_for_cabinets
from repro.machine.power import TIANHE1_POWER
from repro.machine.variability import ThermalModel
from repro.util.tables import TextTable


def main(max_cabinets: int = 8) -> None:
    thermal = ThermalModel()
    print("why 575 MHz (Section VI.A):")
    for clock in (750.0, 575.0):
        temp = thermal.temperature(clock)
        state = "stable" if thermal.is_stable(clock) else "UNSTABLE for long runs"
        print(f"  {clock:.0f} MHz -> {temp:.0f} C  ({state})")
    print(f"  highest stable clock: {thermal.max_stable_clock():.0f} MHz\n")

    cabinets = [c for c in (1, 2, 4, 8, 16, 32, 64, 80) if c <= max_cabinets]
    table = TextTable(
        ["cabinets", "procs", "N", "TFLOPS", "efficiency", "power kW", "MFLOPS/W"],
        title="Linpack scaling by cabinets (GPUs at 575 MHz)",
    )
    base = None
    for cabs in cabinets:
        cluster = Cluster(tianhe1_cluster(cabinets=cabs), seed=2009)
        grid = ProcessGrid(*GRIDS[cabs])
        n = problem_size_for_cabinets(cabs)
        result = Session(Scenario(scheduler="acmlg_both", n=n, cluster=cluster, grid=grid)).run()
        base = base or result.tflops
        kw = TIANHE1_POWER.system_kw(cabs)
        table.add_row(
            cabs, grid.size, n, result.tflops,
            f"{result.tflops / (base * cabs):.1%}", kw,
            TIANHE1_POWER.mflops_per_watt(result.gflops * 1e9, cabs),
        )
    print(table.render())
    print("paper anchors: 8.02 TFLOPS at 1 cabinet, 563.1 TFLOPS at 80 "
          "(87.76% efficiency), 379.24 MFLOPS/W\n")

    procs = min(64, max_cabinets * 64)
    n = problem_size_for(procs)
    cluster = Cluster(tianhe1_cluster(cabinets=1, gpu_clock_mhz=750.0), seed=2009)
    ours = Session(Scenario(scheduler="acmlg_both", n=n, cluster=cluster, grid=grid_for(procs))).run()
    qilin = Session(Scenario(scheduler="qilin", n=n, cluster=cluster, grid=grid_for(procs))).run()
    training = TIANHE1_POWER.energy_kwh(cabinets=1, seconds=2 * 3600)
    print(f"adaptive vs Qilin at {procs} processes (N={n}):")
    print(f"  ours  {ours.gflops:8.1f} GFLOPS (no training)")
    print(f"  Qilin {qilin.gflops:8.1f} GFLOPS + {training:.0f} kWh training per cabinet")
    print(f"  gap: {ours.gflops / qilin.gflops - 1:+.1%}  (paper: +15.56% at 64)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
