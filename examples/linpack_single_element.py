#!/usr/bin/env python
"""Section VI.B on your laptop: the five Linpack builds on one element.

Runs the analytic Linpack at a handful of sizes for each configuration of
Fig. 9 — CPU-only (MKL), plain ACML-GPU, and the vendor kernel wrapped in
adaptive mapping, pipelining, and both — then prints the headline
comparisons against the paper's numbers.

Run:  python examples/linpack_single_element.py [N]
"""

import sys

from repro import CONFIGURATIONS, Scenario, Session
from repro.hpl.driver import CONFIG_LABELS
from repro.model import calibration as cal
from repro.util.tables import TextTable


def main(n_max: int = 46000) -> None:
    sizes = [n_max // 8, n_max // 4, n_max // 2, n_max]
    table = TextTable(["N"] + [CONFIG_LABELS[c] for c in CONFIGURATIONS],
                      title="Linpack GFLOPS by matrix size (one compute element, 750 MHz)")
    results: dict[str, dict[int, float]] = {c: {} for c in CONFIGURATIONS}
    for n in sizes:
        row = [n]
        for config in CONFIGURATIONS:
            gflops = Session(Scenario(scheduler=config, n=n)).run().gflops
            results[config][n] = gflops
            row.append(f"{gflops:.1f}")
        table.add_row(*row)
    print(table.render())

    best = results["acmlg_both"][n_max]
    print(f"\nat N={n_max}:")
    print(f"  ACMLG+both        {best:6.1f} GFLOPS   (paper: 196.7)")
    print(f"  fraction of peak  {best * 1e9 / cal.ELEMENT_PEAK:6.1%}   (paper: 70.1%)")
    print(f"  vs ACML-GPU       {best / results['acmlg'][n_max]:6.2f}x  (paper: 3.3x)")
    print(f"  vs CPU-only       {best / results['cpu'][n_max]:6.2f}x  (paper: 5.49x)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 46000)
