#!/usr/bin/env python
"""Anatomy of the software pipeline (Section V).

Walks through the machinery on a DGEMM just over the 8192 texture limit:
the 2x2 task split, the bounce-corner-turn order that skips re-sending A and
B1, the CT/NT schedule of Table I, and the sync-vs-pipelined timing.

Run:  python examples/pipeline_anatomy.py
"""

from repro import (
    ComputeElement,
    HybridDgemm,
    Simulator,
    StaticMapper,
    build_task_queue,
    tianhe1_element,
)
from repro.bench import table1_trace, worked_example
from repro.core.pipeline import SoftwarePipeline
from repro.machine.variability import NO_VARIABILITY
from repro.sim import Tracer
from repro.sim.gantt import render_tracer


def main() -> None:
    n, k = 16384, 1216
    queue = build_task_queue(n, n, k, beta_nonzero=False)
    print(f"DGEMM {n}x{n}x{k}: split into a {queue.grid[0]}x{queue.grid[1]} task grid")
    print(f"{'task':>5} {'block':>7} {'sends A':>8} {'sends B':>8}")
    for task in queue.tasks:
        label = f"T{task.row * queue.grid[1] + task.col}"
        print(f"{label:>5} ({task.row},{task.col})  {str(task.send_a):>7} {str(task.send_b):>8}")
    print(f"input traffic: {queue.input_bytes / 1e9:.2f} GB "
          f"({queue.bytes_saved_fraction:.0%} saved by bounce-corner-turn reuse)\n")

    print(table1_trace(n, k).render())

    print("\nsync vs pipelined on the same element:")
    for pipelined in (False, True):
        element = ComputeElement(Simulator(), tianhe1_element(), variability=NO_VARIABILITY)
        engine = HybridDgemm(element, StaticMapper(1.0, 3), pipelined=pipelined, jitter=False)
        result = engine.run_to_completion(n, n, k, beta_nonzero=False)
        mode = "pipelined" if pipelined else "synchronous"
        print(f"  {mode:>12}: {result.t_total:6.2f} s  ({result.gflops:.1f} GFLOPS)")

    print("\noverlap diagram (Fig. 7): each task's input hides behind the "
          "previous EO stage:")
    sim = Simulator()
    element = ComputeElement(sim, tianhe1_element(), variability=NO_VARIABILITY)
    tracer = Tracer(sim)
    executor = SoftwarePipeline(element, jitter=False, tracer=tracer)
    rate = element.gpu.kernel_rate(2.0 * n * n * k)
    sim.run(until=sim.process(executor.execute(queue, rate)))
    print(render_tracer(tracer, width=64))

    print("\n" + worked_example().render())


if __name__ == "__main__":
    main()
