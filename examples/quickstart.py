#!/usr/bin/env python
"""Quickstart: one hybrid DGEMM on a simulated TianHe-1 compute element.

Builds a compute element (quad-core Xeon E5540 + RV770 GPU + PCIe 2.0),
wraps it in the paper's adaptive two-level mapper and software pipeline, and
runs the same DGEMM a few times.  Watch the GPU split converge from the
peak-ratio initial value (0.889) to the measured-rate balance, and the
throughput climb with it.

Run:  python examples/quickstart.py
"""

from repro import (
    AdaptiveMapper,
    ComputeElement,
    HybridDgemm,
    Simulator,
    tianhe1_element,
)
from repro.util.units import dgemm_flops


def main() -> None:
    sim = Simulator()
    element = ComputeElement(sim, tianhe1_element())
    print(f"compute element: {element.peak_flops / 1e9:.1f} GFLOPS peak "
          f"({element.gpu.peak_flops / 1e9:.0f} GPU + "
          f"{element.spec.cpu.peak_flops / 1e9:.1f} CPU)")
    print(f"initial GSplit from peak ratio: {element.initial_gsplit:.3f}\n")

    n = 10240
    mapper = AdaptiveMapper(
        element.initial_gsplit,
        n_cores=len(element.compute_cores),
        max_workload=dgemm_flops(2 * n, 2 * n, 2 * n),
    )
    engine = HybridDgemm(element, mapper, pipelined=True)

    print(f"DGEMM {n} x {n} x {n} (workload {dgemm_flops(n, n, n) / 1e12:.2f} Tflop):")
    print(f"{'run':>4} {'GSplit':>8} {'CSplits':>22} {'GFLOPS':>8}")
    for run in range(1, 6):
        result = engine.run_to_completion(n, n, n)
        csplits = "/".join(f"{c:.3f}" for c in mapper.csplits())
        print(f"{run:>4} {result.gsplit:8.3f} {csplits:>22} {result.gflops:8.1f}")

    print(f"\nmapper updates: {mapper.updates}, modeled overhead "
          f"{mapper.total_overhead_seconds * 1e6:.1f} us total "
          f"(negligible, as Section IV.C claims)")


if __name__ == "__main__":
    main()
