"""Shim so editable installs work on offline hosts without the wheel package."""
from setuptools import setup

setup()
