"""The exact-DES single-element Linpack vs the paper's headline number.

This is the highest-fidelity path in the reproduction: real task queues,
bounce-corner-turn transfers, the CT/NT pipeline and the adaptive databases,
all on the virtual clock.  Second run (warmed databases), N = 46000 — the
paper's 196.7 GFLOPS setting.
"""

from repro.core.adaptive import AdaptiveMapper
from repro.hpl.element_linpack import ElementLinpack
from repro.machine.node import ComputeElement
from repro.machine.presets import tianhe1_element
from repro.machine.variability import NO_VARIABILITY
from repro.sim import Simulator
from repro.util.tables import TextTable
from repro.util.units import dgemm_flops


def des_linpack_46000():
    sim = Simulator()
    element = ComputeElement(sim, tianhe1_element(), variability=NO_VARIABILITY)
    mapper = AdaptiveMapper(
        element.initial_gsplit, 3, max_workload=dgemm_flops(46000, 46000, 1216) * 1.05
    )
    runner = ElementLinpack(element, mapper, jitter=False)
    first = runner.run_to_completion(46000)
    second = runner.run_to_completion(46000, collect_steps=True)
    return first, second


def test_des_element_linpack(benchmark, save_report):
    first, second = benchmark.pedantic(des_linpack_46000, rounds=1, iterations=1)
    table = TextTable(
        ["run", "GFLOPS", "fraction of 280.5 peak"],
        title="Exact-DES single-element Linpack, N=46000 (paper: 196.7 GFLOPS / 70.1%)",
    )
    table.add_row("first (cold databases)", first.gflops, f"{first.gflops / 280.48:.1%}")
    table.add_row("second (warmed)", second.gflops, f"{second.gflops / 280.48:.1%}")
    save_report("des_element_linpack", table.render())
    assert second.gflops == __import__("pytest").approx(196.7, rel=0.05)
    # At N=46000 the initial peak-ratio split is already near-optimal for the
    # large steps, so warming buys little (it matters at smaller N).
    assert second.gflops >= first.gflops * 0.98
