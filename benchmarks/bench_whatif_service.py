"""Throughput gate for the what-if query service — emits BENCH_whatif_service.json.

Stands up an in-process :class:`repro.campaign.service.WhatIfService`
(serial pool, no rate limit, fresh cache dir), answers one cold query to
warm the cache, then hammers the *warm* path two ways:

* ``direct``  — ``await service.answer(...)`` in a tight loop, no HTTP:
  the ceiling of the answer path itself (memo lookup + counters).
* ``http``    — 8 keep-alive asyncio client connections issuing
  sequential ``POST /query`` requests against the real server loop: the
  headline ``warm_queries_per_second`` plus per-request ``p99_latency_ms``.

The warm contract is asserted structurally, not just timed: every warm
response body must be byte-identical to the cold one, and the pool must
see **zero** submissions after the single cold query (checked via the
ambient ``session.submitted`` counter).

Every run appends one line to ``benchmarks/BENCH_history.jsonl`` (disable
with ``--no-history``) so ``python -m repro.obs regress`` tracks the
service's trajectory alongside the DES and sweep benches.

Usage::

    python benchmarks/bench_whatif_service.py --quick --check
    python benchmarks/bench_whatif_service.py --out benchmarks/out/BENCH_whatif_service.json

``--check`` enforces the warm-throughput floor (default 5,000 q/s over
HTTP, ``--floor`` to override) and the structural gates; the CI campaign
lane runs it with ``--quick``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs
from repro.campaign.service import WhatIfService
from repro.exec import ExecutionPolicy, code_version, use
from repro.obs import history as bench_history
from repro.util.io import atomic_write_text

DEFAULT_OUT = Path(__file__).parent / "out" / "BENCH_whatif_service.json"

#: The warm cell every query asks about: a quick element run (~ms to
#: compute cold, so the bench is dominated by serving, not simulating).
QUERY = {"n": 8000, "machine": "element", "scheduler": "adaptive"}

CONNECTIONS = 8
QUICK_REQUESTS_PER_CONNECTION = 250
FULL_REQUESTS_PER_CONNECTION = 1250
DIRECT_QUICK = 2_000
DIRECT_FULL = 10_000

#: --check floor: warm queries/second over HTTP, single process.  Local
#: runs measure ~15k; the floor leaves 3x for slow shared runners while
#: still catching an accidental re-normalization or pool round-trip on
#: the warm path (either costs an order of magnitude).
DEFAULT_FLOOR = 5_000.0


async def _client(
    host: str, port: int, requests: int, payload: bytes, latencies: list[float]
) -> set[bytes]:
    """One keep-alive connection issuing sequential warm queries."""
    reader, writer = await asyncio.open_connection(host, port)
    request = (
        b"POST /query HTTP/1.1\r\nHost: bench\r\n"
        b"Content-Type: application/json\r\nX-Tenant: bench\r\n"
        b"Content-Length: " + str(len(payload)).encode() + b"\r\n\r\n" + payload
    )
    bodies: set[bytes] = set()
    try:
        for _ in range(requests):
            start = time.perf_counter()
            writer.write(request)
            await writer.drain()
            status_line = await reader.readline()
            if b"200" not in status_line:
                raise RuntimeError(f"warm query failed: {status_line!r}")
            length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                if header.lower().startswith(b"content-length"):
                    length = int(header.partition(b":")[2])
            bodies.add(await reader.readexactly(length))
            latencies.append(time.perf_counter() - start)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return bodies


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


async def _bench(quick: bool, telemetry: obs.Telemetry) -> dict:
    per_connection = (
        QUICK_REQUESTS_PER_CONNECTION if quick else FULL_REQUESTS_PER_CONNECTION
    )
    direct_n = DIRECT_QUICK if quick else DIRECT_FULL
    payload = json.dumps(QUERY).encode()
    submitted = telemetry.metrics.counter("session.submitted")

    with tempfile.TemporaryDirectory(prefix="bench-whatif-") as tmp:
        service = WhatIfService(serial=True, cache_dir=Path(tmp), rate=None)
        await service.start()
        try:
            cold_start = time.perf_counter()
            cold_body, cold_status = await service.answer(QUERY, tenant="bench")
            cold_seconds = time.perf_counter() - cold_start
            pool_tasks_after_cold = submitted.value()

            direct_start = time.perf_counter()
            for _ in range(direct_n):
                await service.answer(QUERY, tenant="bench")
            direct_seconds = time.perf_counter() - direct_start

            latencies: list[float] = []
            http_start = time.perf_counter()
            body_sets = await asyncio.gather(
                *[
                    _client(service.host, service.port, per_connection, payload, latencies)
                    for _ in range(CONNECTIONS)
                ]
            )
            http_seconds = time.perf_counter() - http_start
        finally:
            await service.stop()

    bodies = set().union(*body_sets)
    latencies.sort()
    total = CONNECTIONS * per_connection
    return {
        "cold_status": cold_status,
        "cold_seconds": cold_seconds,
        "connections": CONNECTIONS,
        "warm_queries": total,
        "warm_seconds": http_seconds,
        "warm_queries_per_second": total / http_seconds if http_seconds > 0 else None,
        "p50_latency_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_latency_ms": _percentile(latencies, 0.99) * 1e3,
        "direct_queries": direct_n,
        "direct_seconds": direct_seconds,
        "direct_queries_per_second": (
            direct_n / direct_seconds if direct_seconds > 0 else None
        ),
        "warm_bodies_identical_to_cold": bodies == {cold_body},
        "pool_tasks_total": submitted.value(),
        "pool_tasks_during_warm": submitted.value() - pool_tasks_after_cold,
        "service_stats": dict(service.stats),
    }


def run_benchmark(quick: bool) -> dict:
    telemetry = obs.Telemetry()
    with obs.use(telemetry), use(ExecutionPolicy(jobs=1)):
        section = asyncio.run(_bench(quick, telemetry))
    return {
        "meta": {
            "quick": quick,
            "jobs": 1,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
            "code_version": code_version(),
        },
        "whatif_service": section,
    }


def check(report: dict, floor: float = DEFAULT_FLOOR) -> list[str]:
    """The warm-path gates: throughput floor + the structural contract."""
    failures = []
    section = report["whatif_service"]
    qps = section["warm_queries_per_second"] or 0.0
    if qps < floor:
        failures.append(
            f"whatif: warm throughput {qps:,.0f} q/s over HTTP fell below "
            f"the {floor:,.0f} q/s floor"
        )
    if section["cold_status"] != "cold":
        failures.append(
            "whatif: first query against a fresh cache was "
            f"{section['cold_status']!r}, not 'cold' (stale cache dir?)"
        )
    if section["pool_tasks_during_warm"] != 0:
        failures.append(
            f"whatif: warm queries scheduled {section['pool_tasks_during_warm']} "
            "pool task(s); warm answers must come from cache alone"
        )
    if not section["warm_bodies_identical_to_cold"]:
        failures.append(
            "whatif: warm response bodies are not byte-identical to the cold one"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller run (CI smoke)")
    parser.add_argument(
        "--check", action="store_true", help="assert the warm-path gates"
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR,
        help=f"warm queries/s floor for --check (default {DEFAULT_FLOOR:,.0f})",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help=f"output path (default {DEFAULT_OUT})"
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=bench_history.DEFAULT_HISTORY_PATH,
        help=f"bench trajectory file (default {bench_history.DEFAULT_HISTORY_PATH})",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the bench trajectory",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.quick)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")
    if not args.no_history:
        entry = bench_history.entry_from_report(report, wall_unix=time.time())
        bench_history.append_entry(entry, args.history)
        print(
            f"history: appended entry #{len(bench_history.load_history(args.history))} "
            f"to {args.history}"
        )

    section = report["whatif_service"]
    print(
        f"whatif   cold {section['cold_seconds'] * 1e3:.1f}ms  "
        f"warm {section['warm_queries']} queries over {section['connections']} "
        f"connections in {section['warm_seconds']:.2f}s "
        f"({section['warm_queries_per_second']:,.0f} q/s, "
        f"p50 {section['p50_latency_ms']:.2f}ms, p99 {section['p99_latency_ms']:.2f}ms)"
    )
    print(
        f"direct   {section['direct_queries']} answer() calls at "
        f"{section['direct_queries_per_second']:,.0f} q/s  "
        f"pool tasks during warm phase: {section['pool_tasks_during_warm']}  "
        f"bodies identical: {section['warm_bodies_identical_to_cold']}"
    )
    print(f"report written to {args.out}")

    if args.check:
        failures = check(report, floor=args.floor)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
