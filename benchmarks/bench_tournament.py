"""The scheduler tournament bench — emits benchmarks/out/TOURNAMENT.json.

Runs every DAG-capable scheduler in the :mod:`repro.sched` registry over
the workload catalogue (tiled Cholesky / tiled LU / mixed kernel stream) on
two machine variants, plus the HPL mid-run thermal-throttle experiment for
the adaptive and static mappers, and ranks everything into one leaderboard
(see :mod:`repro.sched.tournament`).

``--check`` asserts the two pinned results:

* the adaptive mapper beats the static peak split on throttle *recovery*
  (the paper's central claim, as a ranked cell), and
* HEFT wins at least one DAG workload cell (the PAPERS.md extension earns
  its keep on dependency-heavy graphs).

Every run appends one flattened line to ``benchmarks/BENCH_history.jsonl``
(disable with ``--no-history``); ``python -m repro.obs regress`` tracks
``tournament.adaptive_win_rate`` across runs.

Usage::

    python benchmarks/bench_tournament.py --quick --check
    python benchmarks/bench_tournament.py --out benchmarks/out/TOURNAMENT.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.exec import ExecutionPolicy, code_version, use
from repro.obs import history as bench_history
from repro.sched.tournament import render_leaderboard, run_tournament
from repro.util.io import atomic_write_text

DEFAULT_OUT = Path(__file__).parent / "out" / "TOURNAMENT.json"


def run_bench(quick: bool, jobs: int, cache: bool) -> dict:
    policy = ExecutionPolicy(jobs=jobs, cache=cache)
    with use(policy):
        tournament = run_tournament(quick=quick)
    return {
        "meta": {
            "quick": quick,
            "jobs": jobs,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
            "code_version": code_version(),
            "exec": policy.summary_line(),
        },
        "tournament": tournament,
    }


def check(report: dict) -> list[str]:
    """The pinned tournament results as hard failures."""
    pins = report["tournament"]["pins"]
    failures = []
    if pins["adaptive_beats_static_throttle"] is not True:
        failures.append(
            "tournament: adaptive did not beat static on throttle recovery "
            f"(pin={pins['adaptive_beats_static_throttle']!r})"
        )
    if not pins["heft_wins_dag_cell"]:
        failures.append("tournament: HEFT won no DAG workload cell")
    board = report["tournament"]["leaderboard"]
    if len(board) < 6:
        failures.append(
            f"tournament: only {len(board)} schedulers competed (expected >= 6)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small grids (CI smoke)")
    parser.add_argument(
        "--check", action="store_true", help="assert the pinned tournament results"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: all cores)"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help=f"output path (default {DEFAULT_OUT})"
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=bench_history.DEFAULT_HISTORY_PATH,
        help=f"bench trajectory file (default {bench_history.DEFAULT_HISTORY_PATH})",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the bench trajectory",
    )
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    report = run_bench(args.quick, jobs, cache=not args.no_cache)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")
    if not args.no_history:
        entry = bench_history.entry_from_report(report, wall_unix=time.time())
        bench_history.append_entry(entry, args.history)
        print(
            f"history: appended entry #{len(bench_history.load_history(args.history))} "
            f"to {args.history}"
        )

    print(render_leaderboard(report["tournament"]))
    print(f"adaptive win rate: {report['tournament']['adaptive_win_rate']:.2f}")
    print(f"report written to {args.out}")
    print(report["meta"]["exec"], file=sys.stderr)

    if args.check:
        failures = check(report)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
