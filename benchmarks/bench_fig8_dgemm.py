"""Fig. 8: DGEMM performance by matrix size, five configurations.

Regenerates the full series with the exact DES executor and checks the
paper's three average-gain claims (adaptive +14.64% over all sizes,
pipeline +7.61% above N=8192 and ~0 below, combined +22.19%).
"""

from repro.bench import fig8_dgemm_sweep


def test_fig8_dgemm_sweep(benchmark, save_report):
    data = benchmark.pedantic(fig8_dgemm_sweep, rounds=1, iterations=1)
    save_report("fig8_dgemm", data.render())

    adaptive_gain = data.summary["adaptive gain avg (paper +14.64%)"]
    pipe_above = data.summary["pipeline gain avg, N>8192 (paper +7.61%)"]
    pipe_below = data.summary["pipeline gain avg, N<=8192 (paper ~0%)"]
    both_gain = data.summary["combined gain avg, N>8192 (paper +22.19%)"]

    assert 0.08 < adaptive_gain < 0.30, "adaptive gain out of the paper's band"
    assert 0.03 < pipe_above < 0.25, "pipeline gain (N>8192) out of band"
    assert abs(pipe_below) < 0.01, "pipelining must not help below the task knee"
    assert both_gain > max(adaptive_gain, pipe_above), "combined must beat each alone"

    # Every hybrid configuration beats the CPU-only series at large N.
    cpu = dict(data.series["CPU"])
    both = dict(data.series["ACMLG+both"])
    assert both[16384] > 5 * cpu[16384]
