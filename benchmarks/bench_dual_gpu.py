"""Extension study: both RV770 chips per CPU socket vs the paper's pairing.

Section III: "The two GPU chips can be used together or alone."  TianHe-1
paired one chip per CPU socket; this bench quantifies why: a second chip
adds 240 GFLOPS of peak but shares the element's PCIe slot and transfer
thread, so the measured speedup is far below 2x — and the CPU socket count,
not the card, sets the process count anyway.
"""

import numpy as np

from repro.core.adaptive import AdaptiveMapper
from repro.core.hybrid_dgemm import HybridDgemm
from repro.core.multi_device import DualGpuDgemm, MultiDeviceMapper
from repro.machine.dual import DualGpuElement
from repro.machine.node import ComputeElement
from repro.machine.presets import tianhe1_element
from repro.machine.variability import NO_VARIABILITY
from repro.sim import Simulator
from repro.util.tables import TextTable
from repro.util.units import dgemm_flops


def sweep():
    rows = []
    for n in (8192, 12288, 16384):
        k = 1216
        single_el = ComputeElement(Simulator(), tianhe1_element(), variability=NO_VARIABILITY)
        mapper = AdaptiveMapper(
            single_el.initial_gsplit, 3, max_workload=dgemm_flops(2 * n, 2 * n, 2 * n)
        )
        single = HybridDgemm(single_el, mapper, pipelined=True, jitter=False)
        for _ in range(4):
            s = single.run_to_completion(n, n, k)

        dual_el = DualGpuElement(Simulator(), tianhe1_element(), variability=NO_VARIABILITY)
        dual_mapper = MultiDeviceMapper(
            dual_el.initial_device_splits(), 3,
            max_workload=dgemm_flops(2 * n, 2 * n, 2 * n),
        )
        dual = DualGpuDgemm(dual_el, dual_mapper, pipelined=True, jitter=False)
        for _ in range(4):
            d = dual.run_to_completion(n, n, k)
        rows.append((n, s.gflops, d.gflops, d.gflops / s.gflops))
    return rows


def test_dual_gpu_extension(benchmark, save_report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable(
        ["N (K=1216)", "1 chip GFLOPS", "2 chips GFLOPS", "speedup"],
        title="Extension: one CPU socket driving both HD4870x2 chips",
    )
    for row in rows:
        table.add_row(*row)
    save_report("extension_dual_gpu", table.render())
    speedups = [r[3] for r in rows]
    # The second chip helps, but never close to 2x: the shared PCIe slot and
    # single transfer thread serialise the doubled traffic.
    assert all(1.0 < s < 1.95 for s in speedups)
    assert np.mean(speedups) < 1.8
