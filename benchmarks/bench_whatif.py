"""What-if studies: the operating-point tradeoff and the paper's future work."""

from repro.bench.whatif import clock_sweep, endgame_fallback_study


def test_clock_sweep(benchmark, save_report):
    data = benchmark.pedantic(clock_sweep, rounds=1, iterations=1)
    save_report("whatif_clock_sweep", data.render())
    tflops = dict(data.series["TFLOPS"])
    temps = dict(data.series["die temp C"])
    # Raw performance rises with clock, but 750 MHz crosses the stability line.
    assert tflops[750.0] > tflops[575.0]
    assert temps[750.0] > 100.0 >= data.summary["stability limit (C)"] - 1e-9
    assert 575.0 <= data.summary["fastest thermally-stable clock"] <= 675.0


def test_endgame_fallback(benchmark, save_report):
    data = benchmark.pedantic(endgame_fallback_study, rounds=1, iterations=1)
    save_report("whatif_endgame_fallback", data.render())
    # The fallback can only help, and should recover a visible fraction of
    # the endgame drop the paper attributes to small-matrix GPU inefficiency.
    assert data.summary["improvement"] >= 0.0
    assert data.summary["optimized TFLOPS"] >= data.summary["baseline TFLOPS"]
