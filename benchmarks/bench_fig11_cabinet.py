"""Fig. 11: adaptive mapping vs Qilin within one cabinet (1-64 processes).

Paper: ours is 15.56% faster at 64 processes, and Qilin additionally burns
~2 h / 37 kWh of training per cabinet (2 960 kWh for the full system).
"""

import pytest

from repro.bench import fig11_adaptive_vs_qilin


def test_fig11_adaptive_vs_qilin(benchmark, save_report):
    data = benchmark.pedantic(
        fig11_adaptive_vs_qilin,
        kwargs=dict(proc_counts=(1, 2, 4, 8, 16, 32, 64), seeds=(1, 2, 3)),
        rounds=1,
        iterations=1,
    )
    save_report("fig11_adaptive_vs_qilin", data.render())

    gap = data.summary["adaptive vs Qilin at 64 procs (paper +15.56%)"]
    assert gap > 0.03, "adaptive must beat the trained mapping at scale"

    ours = dict(data.series["ours (adaptive)"])
    qilin = dict(data.series["Qilin (trained)"])
    # The advantage appears as the process count grows ("our method can adapt
    # to the variability in a system when the number of processes increases").
    assert ours[64] / qilin[64] > ours[1] / qilin[1] - 0.02

    # Training-cost accounting (Section VI.C).
    assert data.summary["Qilin training energy, 1 cabinet (paper 37 kWh)"] == pytest.approx(37.0, rel=1e-3)
    assert data.summary["Qilin training energy, 80 cabinets (paper 2960 kWh)"] == pytest.approx(2960.0, rel=1e-3)
    assert data.summary["adaptive training energy"] == 0.0
