"""Ablations of the design choices DESIGN.md calls out.

Each test isolates one mechanism and reports what it is worth:

* ``database_g`` bin count J (1 global split vs fine workload bins);
* bounce-corner-turn task ordering (PCIe bytes saved, end-to-end effect);
* the EO stage's block height H (CB0/CB1 footprint vs overlap quality);
* pinned staging vs pageable transfers under the full framework;
* look-ahead (panel hidden behind the update);
* level-2 (per-core) adaptation under the L2-sharing penalty.
"""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveMapper
from repro.core.hybrid_dgemm import HybridDgemm
from repro.core.static_map import StaticMapper
from repro.core.taskqueue import build_task_queue
from repro.hpl.driver import run_linpack_element
from repro.machine.node import ComputeElement
from repro.machine.presets import NB_GPU, tianhe1_element
from repro.machine.variability import NO_VARIABILITY
from repro.sim import Simulator
from repro.util.tables import TextTable
from repro.util.units import GB, dgemm_flops


def fresh_element():
    return ComputeElement(Simulator(), tianhe1_element(), variability=NO_VARIABILITY)


def linpack_sequence_gflops(mapper_bins: int, n: int = 24000, nb: int = NB_GPU) -> float:
    """Total rate of the Linpack DGEMM sequence under a given bin count."""
    element = fresh_element()
    mapper = AdaptiveMapper(
        element.initial_gsplit, 3, max_workload=dgemm_flops(n, n, nb) * 1.05,
        n_bins=mapper_bins,
    )
    engine = HybridDgemm(element, mapper, pipelined=True, jitter=False)
    flops = 0.0
    start = element.sim.now
    trailing = n - nb
    while trailing > 0:
        result = engine.run_to_completion(trailing, trailing, nb)
        flops += result.workload
        trailing -= nb
    return flops / (element.sim.now - start) / 1e9


def mixed_workload_gflops(mapper_bins: int, rounds: int = 4) -> float:
    """Alternating small/large DGEMMs — the case workload bins exist for.

    With J=1 the small and large problems overwrite each other's split every
    call; with per-workload bins each size converges to its own mapping
    ("the next initial mapping for a program, whose problem size is in the
    same range", Section IV.B).
    """
    element = fresh_element()
    sizes = [2048, 12288]
    mapper = AdaptiveMapper(
        element.initial_gsplit, 3,
        max_workload=dgemm_flops(12288, 12288, 12288) * 1.05, n_bins=mapper_bins,
    )
    engine = HybridDgemm(element, mapper, pipelined=True, jitter=False)
    flops = 0.0
    start = element.sim.now
    for _ in range(rounds):
        for n in sizes:
            result = engine.run_to_completion(n, n, n, beta_nonzero=False)
            flops += result.workload
    return flops / (element.sim.now - start) / 1e9


def test_ablation_database_bins(benchmark, save_report):
    """Workload bins matter for mixed sizes; a monotone single run is the
    degenerate case where one tracking split suffices."""

    def sweep():
        mixed = {j: mixed_workload_gflops(j) for j in (1, 8, 64)}
        sequence = {j: linpack_sequence_gflops(j) for j in (1, 64)}
        return mixed, sequence

    mixed, sequence = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable(
        ["J (bins)", "mixed sizes GFLOPS", "Linpack sequence GFLOPS"],
        title="Ablation: database_g bin count",
    )
    for j in (1, 8, 64):
        table.add_row(j, mixed[j], sequence.get(j, ""))
    save_report("ablation_bins", table.render())
    # Bins pay off when problem sizes interleave (the DB's reason to exist)...
    assert mixed[64] > mixed[1] * 1.02
    assert mixed[8] > mixed[1]
    # ...while a strictly decreasing single run loses nothing much either way.
    assert abs(sequence[64] / sequence[1] - 1.0) < 0.08


def test_ablation_bounce_corner_turn(benchmark, save_report):
    """Serpentine ordering + residency vs re-staging every operand."""
    n, k = 16384, 1216

    def measure():
        smart = build_task_queue(n, n, k, reuse=True, beta_nonzero=False, gpu_memory_bytes=GB)
        naive = build_task_queue(n, n, k, reuse=False, beta_nonzero=False, gpu_memory_bytes=GB)
        times = {}
        for label, reuse in (("bounce-corner-turn", True), ("naive re-staging", False)):
            element = fresh_element()
            engine = HybridDgemm(
                element, StaticMapper(1.0, 3), pipelined=False, reuse=reuse, jitter=False
            )
            times[label] = engine.run_to_completion(n, n, k, beta_nonzero=False).t_total
        return smart, naive, times

    smart, naive, times = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["ordering", "input GB", "sync time (s)"],
                      title="Ablation: bounce corner turn (16384x16384x1216)")
    table.add_row("bounce-corner-turn", smart.input_bytes / GB, times["bounce-corner-turn"])
    table.add_row("naive re-staging", naive.input_bytes / GB, times["naive re-staging"])
    save_report("ablation_bct", table.render())
    assert smart.input_bytes < naive.input_bytes
    assert smart.bytes_saved_fraction > 0.3  # the 2x2 example skips A and B1
    assert times["bounce-corner-turn"] < times["naive re-staging"]


def test_ablation_eo_block_height(benchmark, save_report):
    """CB0/CB1 block height H: footprint 2*H*N1 vs M1*N1, overlap quality."""
    n, k = 12288, 1216

    def sweep():
        out = {}
        for h in (128, 512, 4096):
            element = fresh_element()
            engine = HybridDgemm(
                element, StaticMapper(1.0, 3), pipelined=True, eo_block_rows=h, jitter=False
            )
            result = engine.run_to_completion(n, n, k, beta_nonzero=False)
            out[h] = (result.t_total, 2 * h * n * 8 / 1e6)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable(["H (rows)", "time (s)", "buffer MB (2*H*N)"],
                      title="Ablation: EO double-buffer height")
    for h, (t, mb) in results.items():
        table.add_row(h, t, mb)
    save_report("ablation_eo_height", table.render())
    full_c_mb = n * n * 8 / 1e6
    # The paper's point: H*N*2 buffers replace an M1*N1 resident C.
    assert all(mb < full_c_mb for _, (t, mb) in results.items())
    times = [t for t, _ in results.values()]
    assert max(times) / min(times) < 1.1  # overlap is robust to H


@pytest.mark.parametrize(
    "name,overrides,expect_slower",
    [
        ("pageable transfers", dict(pinned=False), True),
        ("no lookahead", dict(lookahead=False), True),
        ("no level-2 adaptation", dict(level2=False), True),
    ],
)
def test_ablation_linpack_features(benchmark, save_report, name, overrides, expect_slower):
    def measure():
        base = run_linpack_element("acmlg_both", 30000, seed=5).gflops
        ablated = run_linpack_element("acmlg_both", 30000, seed=5, overrides=overrides).gflops
        return base, ablated

    base, ablated = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["configuration", "GFLOPS"], title=f"Ablation: {name}")
    table.add_row("full framework", base)
    table.add_row(name, ablated)
    save_report(f"ablation_{name.replace(' ', '_')}", table.render())
    if expect_slower:
        assert ablated < base
