"""Section V.A's worked example: why pipelining is needed, and what it buys."""

import pytest

from repro.bench import worked_example


def test_worked_example(benchmark, save_report):
    example = benchmark.pedantic(worked_example, rounds=1, iterations=1)
    save_report("worked_example_vA", example.render())
    assert example.matrix_mb == pytest.approx(800.0)
    assert example.transfer_seconds == pytest.approx(5.28, rel=1e-3)
    assert example.compute_seconds == pytest.approx(8.33, rel=1e-2)
    # With pipelining the GPU path approaches kernel time: the 5.28 s of
    # unoptimized transfer shrinks to the prologue/epilogue slice.
    exposed = example.pipelined_gpu_path_seconds - example.workload_gflop / 194.0
    assert exposed < 1.0
