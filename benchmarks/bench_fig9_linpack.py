"""Fig. 9: Linpack performance by matrix size, five configurations.

Checks the Section VI.B headline anchors: 196.7 GFLOPS (70.1% of the
280.5 GFLOPS element peak), 3.3x over the vendor library, 5.49x over
host-only.
"""

from repro.bench import fig9_linpack_sweep


def test_fig9_linpack_sweep(benchmark, save_report):
    data = benchmark.pedantic(fig9_linpack_sweep, rounds=1, iterations=1)
    save_report("fig9_linpack", data.render())

    best = data.summary["ACMLG+both at N=46000 (paper 196.7 GFLOPS)"]
    fraction = data.summary["fraction of 280.5 GFLOPS element peak (paper 70.1%)"]
    over_acmlg = data.summary["speedup over ACMLG (paper 3.3x)"]
    over_cpu = data.summary["speedup over CPU-only (paper 5.49x)"]

    assert 165 < best < 230, f"single-element Linpack {best} outside the anchor band"
    assert 0.60 < fraction < 0.82
    assert 2.5 < over_acmlg < 6.5
    assert 4.0 < over_cpu < 7.5

    # Performance grows with N for every configuration (Fig. 9's shape).
    for label, points in data.series.items():
        ordered = [y for _, y in sorted(points)]
        assert ordered[-1] > ordered[0], f"{label} does not grow with N"
