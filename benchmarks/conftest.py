"""Shared plumbing for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, writes the
rendered text to ``benchmarks/out/<name>.txt`` (the files EXPERIMENTS.md is
compiled from) and registers a representative unit of work with
pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.util.io import atomic_write_text

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture()
def save_report(report_dir):
    def _save(name: str, text: str) -> Path:
        path = report_dir / f"{name}.txt"
        atomic_write_text(path, text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
