"""Fig. 12: Linpack performance scaling from 1 to 80 cabinets.

Paper anchors: 8.02 TFLOPS on one cabinet, 563.1 TFLOPS on the full 80
(87.76% scaling efficiency), with N growing from 280 000 to 2 400 000 and
the GPUs at the thermally-stable 575 MHz.
"""

from repro.bench import fig12_cabinet_scaling


def test_fig12_cabinet_scaling(benchmark, save_report):
    data = benchmark.pedantic(fig12_cabinet_scaling, rounds=1, iterations=1)
    save_report("fig12_cabinet_scaling", data.render())

    one = data.summary["1 cabinet(s) (paper 8.02 TFLOPS at 1)"]
    full = data.summary["80 cabinets (paper 563.1 TFLOPS at 80)"]
    efficiency = data.summary["scaling efficiency (paper 87.76% over 1->80)"]

    assert one == __import__("pytest").approx(8.02, rel=0.10)
    assert full == __import__("pytest").approx(563.1, rel=0.10)
    assert 0.80 < efficiency < 0.95

    # Monotone scaling across the whole sweep.
    points = sorted(data.series["Linpack (ours)"])
    tflops = [y for _, y in points]
    assert tflops == sorted(tflops)
