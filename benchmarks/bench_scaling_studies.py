"""Strong scaling, panel-broadcast algorithms, and the energy ledger."""

import pytest

from repro.bench.scaling_studies import run_energy_ledger, strong_scaling
from repro.hpl.driver import run_linpack
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.presets import tianhe1_cluster
from repro.util.tables import TextTable


def test_strong_scaling(benchmark, save_report):
    data = benchmark.pedantic(strong_scaling, rounds=1, iterations=1)
    save_report("strong_scaling", data.render())
    tflops = dict(data.series["TFLOPS"])
    cabs = sorted(tflops)
    # Throughput still grows, but efficiency decays (fixed work per step
    # shrinks per process while communication terms stay).
    assert tflops[cabs[-1]] > tflops[cabs[0]]
    eff = dict(data.series["parallel efficiency %"])
    assert eff[cabs[-1]] < eff[cabs[0]]
    assert data.summary["parallel efficiency at largest machine"] > 0.35


def test_panel_bcast_algorithms(benchmark, save_report):
    """Ring vs binomial panel broadcast on a wide grid."""

    def measure():
        cluster = Cluster(tianhe1_cluster(cabinets=4), seed=2009)
        out = {}
        for lookahead in (True, False):
            for algo in ("binomial", "ring"):
                result = run_linpack(
                    "acmlg_both", 560_000, cluster, ProcessGrid(16, 16),
                    overrides={"panel_bcast": algo, "lookahead": lookahead},
                )
                out[(lookahead, algo)] = result.tflops
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(
        ["lookahead", "algorithm", "TFLOPS"],
        title="Panel broadcast algorithm (16x16 grid)",
    )
    for (lookahead, algo), tflops in results.items():
        table.add_row(lookahead, algo, tflops)
    save_report("panel_bcast", table.render())
    # With look-ahead the panel broadcast hides entirely (algorithm moot);
    # without it, the pipelined ring beats the binomial tree for the long
    # panel messages — which is why HPL defaults to ring variants.
    assert results[(True, "ring")] == pytest.approx(results[(True, "binomial")], rel=0.02)
    assert results[(False, "ring")] >= results[(False, "binomial")]


def test_energy_ledger(benchmark, save_report):
    data = benchmark.pedantic(run_energy_ledger, rounds=1, iterations=1)
    save_report("energy_ledger", data.render())
    assert data.summary["run energy (kWh)"] > 1000
    # The paper's energy argument, quantified end to end: training Qilin
    # costs a substantial fraction of an entire full-system Linpack run.
    assert data.summary["training / run energy"] > 0.25
